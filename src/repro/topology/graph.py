"""Port-indexed network graph substrate.

KAR forwarding is *port-indexed*: a switch's forwarding decision is an
output-port number (``route_id mod switch_id``), so the graph model must
give every node an ordered list of ports and every link a (node, port)
attachment on each side.  Plain adjacency graphs (networkx et al.) do not
carry stable port numbering, so we implement our own small substrate.

The classes here are *static descriptions* of a network — nodes, links,
rates, delays.  The discrete-event runtime objects live in
:mod:`repro.sim` and are built from these descriptions by
:class:`repro.sim.network.Network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["NodeKind", "NodeInfo", "LinkInfo", "PortGraph", "TopologyError"]


class TopologyError(ValueError):
    """Raised on malformed topology construction or queries."""


class NodeKind:
    """Node roles in a KAR network (string constants, not an enum, so
    topology files read naturally)."""

    CORE = "core"  # KAR switch: modulo forwarding, no tables
    EDGE = "edge"  # edge node: attaches/strips route IDs
    HOST = "host"  # end host: runs transports


@dataclass
class NodeInfo:
    """Static description of one node.

    Attributes:
        name: unique node name (e.g. ``"SW13"``, ``"E-AS1"``, ``"H1"``).
        kind: one of :class:`NodeKind`.
        switch_id: the KAR modulo for core switches (None otherwise).
        ports: neighbor name per port index (grows as links are added).
    """

    name: str
    kind: str = NodeKind.CORE
    switch_id: Optional[int] = None
    ports: List[str] = field(default_factory=list)

    @property
    def degree(self) -> int:
        return len(self.ports)


@dataclass(frozen=True)
class LinkInfo:
    """Static description of one full-duplex link.

    Attributes:
        a, b: endpoint node names.
        a_port, b_port: port index on each endpoint.
        rate_mbps: capacity of each direction, in Mbit/s.
        delay_s: one-way propagation delay, in seconds.
        queue_packets: drop-tail queue capacity per direction.
    """

    a: str
    b: str
    a_port: int
    b_port: int
    rate_mbps: float = 100.0
    delay_s: float = 0.001
    queue_packets: int = 50

    @property
    def key(self) -> Tuple[str, str]:
        """Canonical unordered endpoint pair (sorted names)."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    def other(self, name: str) -> str:
        if name == self.a:
            return self.b
        if name == self.b:
            return self.a
        raise TopologyError(f"node {name!r} is not an endpoint of {self.a}-{self.b}")

    def port_of(self, name: str) -> int:
        if name == self.a:
            return self.a_port
        if name == self.b:
            return self.b_port
        raise TopologyError(f"node {name!r} is not an endpoint of {self.a}-{self.b}")


class PortGraph:
    """Mutable port-indexed graph of nodes and full-duplex links.

    Port indexes on each node are assigned in link-insertion order
    (0, 1, 2, ...), mirroring how an operator patches cables into a
    switch.  At most one link may exist between a pair of nodes (the KAR
    model: one residue per neighbor relationship is enough; parallel
    links would need distinct ports anyway and can be modeled as extra
    nodes if ever required).
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, NodeInfo] = {}
        self._links: Dict[Tuple[str, str], LinkInfo] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        kind: str = NodeKind.CORE,
        switch_id: Optional[int] = None,
    ) -> NodeInfo:
        """Add a node; core switches may carry their KAR switch ID."""
        if name in self._nodes:
            raise TopologyError(f"duplicate node name {name!r}")
        if kind not in (NodeKind.CORE, NodeKind.EDGE, NodeKind.HOST):
            raise TopologyError(f"unknown node kind {kind!r}")
        if kind != NodeKind.CORE and switch_id is not None:
            raise TopologyError(f"only core switches carry switch IDs ({name!r})")
        if switch_id is not None and switch_id <= 1:
            raise TopologyError(f"switch ID must be > 1, got {switch_id} for {name!r}")
        info = NodeInfo(name=name, kind=kind, switch_id=switch_id)
        self._nodes[name] = info
        return info

    def add_link(
        self,
        a: str,
        b: str,
        rate_mbps: float = 100.0,
        delay_s: float = 0.001,
        queue_packets: int = 50,
    ) -> LinkInfo:
        """Connect *a* and *b*, assigning the next free port on each side."""
        if a == b:
            raise TopologyError(f"self-links are not allowed ({a!r})")
        for name in (a, b):
            if name not in self._nodes:
                raise TopologyError(f"unknown node {name!r}; add_node first")
        key = (a, b) if a <= b else (b, a)
        if key in self._links:
            raise TopologyError(f"link {a}-{b} already exists")
        if rate_mbps <= 0:
            raise TopologyError(f"link rate must be positive, got {rate_mbps}")
        if delay_s < 0:
            raise TopologyError(f"link delay must be non-negative, got {delay_s}")
        if queue_packets < 1:
            raise TopologyError(f"queue must hold >= 1 packet, got {queue_packets}")
        node_a, node_b = self._nodes[a], self._nodes[b]
        link = LinkInfo(
            a=a,
            b=b,
            a_port=node_a.degree,
            b_port=node_b.degree,
            rate_mbps=rate_mbps,
            delay_s=delay_s,
            queue_packets=queue_packets,
        )
        node_a.ports.append(b)
        node_b.ports.append(a)
        self._links[key] = link
        return link

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node(self, name: str) -> NodeInfo:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self, kind: Optional[str] = None) -> List[NodeInfo]:
        """All nodes, optionally filtered by kind, in insertion order."""
        if kind is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if n.kind == kind]

    def node_names(self, kind: Optional[str] = None) -> List[str]:
        return [n.name for n in self.nodes(kind)]

    def links(self) -> List[LinkInfo]:
        return list(self._links.values())

    def link(self, a: str, b: str) -> LinkInfo:
        key = (a, b) if a <= b else (b, a)
        try:
            return self._links[key]
        except KeyError:
            raise TopologyError(f"no link {a}-{b}") from None

    def has_link(self, a: str, b: str) -> bool:
        key = (a, b) if a <= b else (b, a)
        return key in self._links

    def neighbors(self, name: str) -> List[str]:
        """Neighbor names of *name*, in port order."""
        return list(self.node(name).ports)

    def port_of(self, name: str, neighbor: str) -> int:
        """The port index on *name* that faces *neighbor*."""
        try:
            return self.node(name).ports.index(neighbor)
        except ValueError:
            raise TopologyError(f"{name!r} has no port facing {neighbor!r}") from None

    def neighbor_on_port(self, name: str, port: int) -> str:
        info = self.node(name)
        if not 0 <= port < info.degree:
            raise TopologyError(
                f"{name!r} has no port {port} (degree {info.degree})"
            )
        return info.ports[port]

    def degree(self, name: str) -> int:
        return self.node(name).degree

    def switch_id(self, name: str) -> int:
        sid = self.node(name).switch_id
        if sid is None:
            raise TopologyError(f"node {name!r} has no switch ID (kind: "
                                f"{self.node(name).kind})")
        return sid

    def switch_ids(self) -> Dict[str, int]:
        """Mapping core-switch name -> switch ID."""
        return {
            n.name: n.switch_id
            for n in self.nodes(NodeKind.CORE)
            if n.switch_id is not None
        }

    def edge_of_host(self, host: str) -> str:
        """The edge node a host hangs off (hosts attach to exactly one edge)."""
        info = self.node(host)
        if info.kind != NodeKind.HOST:
            raise TopologyError(f"{host!r} is not a host")
        edges = [n for n in info.ports if self.node(n).kind == NodeKind.EDGE]
        if len(edges) != 1:
            raise TopologyError(
                f"host {host!r} must attach to exactly one edge node, "
                f"found {edges}"
            )
        return edges[0]

    def hosts_of_edge(self, edge: str) -> List[str]:
        """Hosts directly attached to an edge node."""
        info = self.node(edge)
        if info.kind != NodeKind.EDGE:
            raise TopologyError(f"{edge!r} is not an edge node")
        return [n for n in info.ports if self.node(n).kind == NodeKind.HOST]

    # ------------------------------------------------------------------
    # validation / export
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check KAR invariants; raise TopologyError with the reason.

        * every core switch has a switch ID of at least its port count
          (residues 0..ID-1 must cover every port index),
        * the switch-ID set is pairwise coprime,
        * the graph is connected,
        * hosts attach only to edge nodes.
        """
        from repro.rns.coprime import validate_pool

        cores = [n for n in self.nodes(NodeKind.CORE)]
        for n in cores:
            if n.switch_id is None:
                raise TopologyError(f"core switch {n.name!r} has no switch ID")
            if n.switch_id < n.degree:
                raise TopologyError(
                    f"switch {n.name!r} has ID {n.switch_id} but {n.degree} "
                    f"ports; ID must exceed the largest port index"
                )
        try:
            validate_pool([n.switch_id for n in cores])
        except ValueError as exc:
            raise TopologyError(str(exc)) from exc
        if self._nodes and not self.is_connected():
            raise TopologyError("topology is not connected")
        for h in self.nodes(NodeKind.HOST):
            for nb in h.ports:
                if self.node(nb).kind != NodeKind.EDGE:
                    raise TopologyError(
                        f"host {h.name!r} attaches to non-edge node {nb!r}"
                    )

    def is_connected(self) -> bool:
        names = list(self._nodes)
        if not names:
            return True
        seen = {names[0]}
        stack = [names[0]]
        while stack:
            cur = stack.pop()
            for nb in self._nodes[cur].ports:
                if nb not in seen:
                    seen.add(nb)
                    stack.append(nb)
        return len(seen) == len(names)

    def core_subgraph_neighbors(self, name: str) -> List[str]:
        """Neighbors of *name* that are core switches (port order)."""
        return [n for n in self.neighbors(name) if self.node(n).kind == NodeKind.CORE]

    def to_dot(self) -> str:
        """Graphviz DOT rendering (labels carry switch IDs)."""
        lines = ["graph kar {"]
        for n in self.nodes():
            label = n.name if n.switch_id is None else f"{n.name}\\nid={n.switch_id}"
            shape = {"core": "circle", "edge": "box", "host": "plaintext"}[n.kind]
            lines.append(f'  "{n.name}" [label="{label}", shape={shape}];')
        for link in self.links():
            lines.append(
                f'  "{link.a}" -- "{link.b}" '
                f'[label="{link.rate_mbps:g}M"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[NodeInfo]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes
