"""Scenario (de)serialization to JSON.

Lets users version their topologies and experiment definitions as plain
files — the role the paper's (unpublished) Mininet topology scripts
played.  The format is stable and self-describing::

    {
      "format": "kar-scenario",
      "version": 1,
      "name": "...",
      "nodes": [{"name": "SW7", "kind": "core", "switch_id": 7}, ...],
      "links": [{"a": "SW7", "b": "SW13", "rate_mbps": 100.0, ...}, ...],
      "primary_route": ["SW7", ...],
      "src_host": "...", "dst_host": "...",
      "protection": {"partial": [["SW17", "SW71"], ...]},
      ...
    }

Ports are implied by link order (the graph's own rule), so round trips
preserve port numbering exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.topology.graph import PortGraph
from repro.topology.topologies import ProtectionSegment, Scenario

__all__ = ["scenario_to_dict", "scenario_from_dict", "save_scenario",
           "load_scenario", "FORMAT_NAME", "FORMAT_VERSION"]

FORMAT_NAME = "kar-scenario"
FORMAT_VERSION = 1


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """Serialize a scenario (topology + experiment inputs) to a dict."""
    graph = scenario.graph
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": scenario.name,
        "nodes": [
            {"name": n.name, "kind": n.kind, "switch_id": n.switch_id}
            for n in graph.nodes()
        ],
        "links": [
            {
                "a": link.a,
                "b": link.b,
                "rate_mbps": link.rate_mbps,
                "delay_s": link.delay_s,
                "queue_packets": link.queue_packets,
            }
            for link in graph.links()
        ],
        "primary_route": list(scenario.primary_route),
        "src_host": scenario.src_host,
        "dst_host": scenario.dst_host,
        "protection": {
            level: [[s.at, s.to] for s in segs]
            for level, segs in scenario.protection.items()
        },
        "reverse_protection": {
            level: [[s.at, s.to] for s in segs]
            for level, segs in scenario.reverse_protection.items()
        },
        "reverse_route": (
            list(scenario.reverse_route) if scenario.reverse_route else None
        ),
        "failure_links": [list(pair) for pair in scenario.failure_links],
        "notes": scenario.notes,
    }


def scenario_from_dict(data: Dict[str, Any]) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output.

    Raises:
        ValueError: on wrong format marker or unsupported version.
    """
    if data.get("format") != FORMAT_NAME:
        raise ValueError(
            f"not a {FORMAT_NAME} document (format={data.get('format')!r})"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")

    graph = PortGraph()
    for node in data["nodes"]:
        graph.add_node(node["name"], kind=node["kind"],
                       switch_id=node["switch_id"])
    for link in data["links"]:
        graph.add_link(
            link["a"], link["b"],
            rate_mbps=link["rate_mbps"],
            delay_s=link["delay_s"],
            queue_packets=link["queue_packets"],
        )
    graph.validate()

    def segments(raw) -> tuple:
        return tuple(ProtectionSegment(at, to) for at, to in raw)

    return Scenario(
        name=data["name"],
        graph=graph,
        primary_route=tuple(data["primary_route"]),
        src_host=data["src_host"],
        dst_host=data["dst_host"],
        protection={
            level: segments(raw)
            for level, raw in data.get("protection", {}).items()
        },
        reverse_protection={
            level: segments(raw)
            for level, raw in data.get("reverse_protection", {}).items()
        },
        reverse_route=(
            tuple(data["reverse_route"]) if data.get("reverse_route") else None
        ),
        failure_links=tuple(
            tuple(pair) for pair in data.get("failure_links", [])
        ),
        notes=data.get("notes", ""),
    )


def save_scenario(scenario: Scenario, path: str) -> None:
    """Write a scenario to a JSON file."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(scenario_to_dict(scenario), f, indent=2)


def load_scenario(path: str) -> Scenario:
    """Load a scenario from a JSON file."""
    with open(path, "r", encoding="utf-8") as f:
        return scenario_from_dict(json.load(f))
