"""Deterministic random-topology generators.

Used by property-based tests and ablation benchmarks to exercise KAR on
networks beyond the paper's two figures.  All generators are seeded and
pure — the same seed always yields the same topology.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.rns.coprime import greedy_coprime_pool, prime_pool
from repro.topology.graph import NodeKind, PortGraph, TopologyError

__all__ = ["random_connected", "ring_lattice", "clique", "torus",
           "attach_host_pair", "attach_edges"]


def _switch_ids(count: int, strategy: str, min_value: int) -> List[int]:
    if strategy == "prime":
        return prime_pool(count, min_value=min_value)
    if strategy == "greedy":
        return greedy_coprime_pool(count, min_value=min_value)
    raise ValueError(f"unknown ID strategy {strategy!r}; use 'prime' or 'greedy'")


def random_connected(
    num_switches: int,
    extra_links: int = 0,
    seed: int = 0,
    id_strategy: str = "prime",
    min_switch_id: int = 5,
    rate_mbps: float = 100.0,
    delay_s: float = 0.001,
) -> PortGraph:
    """A random connected core topology.

    Builds a uniform random spanning tree (guaranteeing connectivity),
    then adds *extra_links* random chords.  Switch IDs come from the
    chosen coprime strategy; IDs are assigned large-to-small by node
    degree after wiring, so the degree < ID invariant holds whenever the
    pool values allow it.

    Raises:
        ValueError: if a node's degree ends up >= its assigned ID (choose
            a larger *min_switch_id* or fewer *extra_links*).
    """
    if num_switches < 2:
        raise ValueError(f"need at least 2 switches, got {num_switches}")
    rng = random.Random(seed)
    names = [f"SW{i}" for i in range(num_switches)]

    # Random spanning tree: connect each new node to a random earlier one.
    tree_links: List[Tuple[str, str]] = []
    for i in range(1, num_switches):
        j = rng.randrange(i)
        tree_links.append((names[j], names[i]))

    # Random chords.
    existing = {tuple(sorted(l)) for l in tree_links}
    chords: List[Tuple[str, str]] = []
    attempts = 0
    while len(chords) < extra_links and attempts < 50 * (extra_links + 1):
        attempts += 1
        a, b = rng.sample(names, 2)
        key = tuple(sorted((a, b)))
        if key not in existing:
            existing.add(key)
            chords.append((a, b))

    # Degree-aware ID assignment: highest-degree node gets largest ID.
    degree = {n: 0 for n in names}
    for a, b in tree_links + chords:
        degree[a] += 1
        degree[b] += 1
    ids = sorted(_switch_ids(num_switches, id_strategy, min_switch_id))
    by_degree = sorted(names, key=lambda n: degree[n])
    assignment = dict(zip(by_degree, ids))

    g = PortGraph()
    for n in names:
        g.add_node(n, kind=NodeKind.CORE, switch_id=assignment[n])
    for a, b in tree_links + chords:
        g.add_link(a, b, rate_mbps=rate_mbps, delay_s=delay_s)
    for n in names:
        if g.degree(n) >= assignment[n]:
            raise ValueError(
                f"node {n} has degree {g.degree(n)} >= switch ID "
                f"{assignment[n]}; raise min_switch_id"
            )
    return g


def ring_lattice(
    num_switches: int,
    chord_step: int = 0,
    id_strategy: str = "prime",
    min_switch_id: int = 5,
    rate_mbps: float = 100.0,
    delay_s: float = 0.001,
) -> PortGraph:
    """A ring of switches, optionally with chords every *chord_step* nodes.

    Rings are the classic worst case for hot-potato walks (long cycles),
    used by the random-walk analysis benches.
    """
    if num_switches < 3:
        raise ValueError(f"a ring needs at least 3 switches, got {num_switches}")
    ids = _switch_ids(num_switches, id_strategy, min_switch_id)
    g = PortGraph()
    names = [f"SW{i}" for i in range(num_switches)]
    for n, sid in zip(names, ids):
        g.add_node(n, kind=NodeKind.CORE, switch_id=sid)
    for i in range(num_switches):
        g.add_link(names[i], names[(i + 1) % num_switches],
                   rate_mbps=rate_mbps, delay_s=delay_s)
    if chord_step > 1:
        for i in range(0, num_switches, chord_step):
            j = (i + num_switches // 2) % num_switches
            if i != j and not g.has_link(names[i], names[j]):
                g.add_link(names[i], names[j], rate_mbps=rate_mbps,
                           delay_s=delay_s)
    return g


def clique(
    num_switches: int,
    id_strategy: str = "prime",
    min_switch_id: int = 5,
    rate_mbps: float = 100.0,
    delay_s: float = 0.001,
) -> PortGraph:
    """A complete graph on *num_switches* switches.

    The maximally-connected case of the resilience frontier: edge
    connectivity n-1, so n-1 edge-disjoint spanning arborescences exist
    per destination and failover schemes are separated only by how many
    of those trees they can actually exploit.

    Every switch has degree n-1 (n after a host/edge stack is attached
    via :func:`attach_host_pair`), so IDs are drawn from
    ``max(min_switch_id, num_switches + 1)`` upward to keep the
    degree < ID invariant with room for one attachment.
    """
    if num_switches < 3:
        raise ValueError(
            f"a clique needs at least 3 switches, got {num_switches}"
        )
    ids = _switch_ids(num_switches, id_strategy,
                      max(min_switch_id, num_switches + 1))
    g = PortGraph()
    names = [f"SW{i}" for i in range(num_switches)]
    for n, sid in zip(names, sorted(ids)):
        g.add_node(n, kind=NodeKind.CORE, switch_id=sid)
    for i in range(num_switches):
        for j in range(i + 1, num_switches):
            g.add_link(names[i], names[j], rate_mbps=rate_mbps,
                       delay_s=delay_s)
    return g


def torus(
    rows: int,
    cols: int,
    id_strategy: str = "prime",
    min_switch_id: int = 7,
    rate_mbps: float = 100.0,
    delay_s: float = 0.001,
) -> PortGraph:
    """A rows x cols 2-D torus (wrap-around grid), degree 4 everywhere.

    The classic datacenter/HPC regular topology: edge connectivity 4,
    so exactly 4 edge-disjoint arborescences exist per destination —
    the resilience frontier's structured middle ground between the
    clique and the sparse zoo graphs.

    Both dimensions must be >= 3: a ring of 2 would collapse its
    forward and wrap links onto the same switch pair, and
    :class:`~repro.topology.graph.PortGraph` allows one link per pair.
    """
    if rows < 3 or cols < 3:
        raise ValueError(
            f"torus dimensions must be >= 3, got {rows}x{cols}"
        )
    count = rows * cols
    ids = _switch_ids(count, id_strategy, max(min_switch_id, 7))
    g = PortGraph()
    names = [[f"SW{r}-{c}" for c in range(cols)] for r in range(rows)]
    flat = [names[r][c] for r in range(rows) for c in range(cols)]
    for n, sid in zip(flat, ids):
        g.add_node(n, kind=NodeKind.CORE, switch_id=sid)
    for r in range(rows):
        for c in range(cols):
            g.add_link(names[r][c], names[r][(c + 1) % cols],
                       rate_mbps=rate_mbps, delay_s=delay_s)
            g.add_link(names[r][c], names[(r + 1) % rows][c],
                       rate_mbps=rate_mbps, delay_s=delay_s)
    return g


def attach_edges(
    graph: PortGraph,
    switches: Optional[Sequence[str]] = None,
    rate_mbps: float = 100.0,
    delay_s: float = 0.001,
) -> List[str]:
    """Attach one edge node to each given core switch; returns their names.

    Turns a generated core graph into a multi-tenant provisioning
    domain: every switch gets an ingress/egress attachment point
    ``E-<switch>``, which is what the controller service hands out
    flows between.  Switches are taken in name-sorted order (all core
    switches by default) so edge naming — and therefore every digest
    downstream — is deterministic.

    Raises:
        TopologyError: if an attachment would violate the degree < ID
            invariant (the switch has no spare residue for a new port).
    """
    if switches is None:
        switches = sorted(n.name for n in graph.nodes(NodeKind.CORE))
    edges: List[str] = []
    for sw in switches:
        info = graph.node(sw)
        if info.kind != NodeKind.CORE:
            raise TopologyError(f"{sw!r} is not a core switch")
        if info.switch_id is not None and info.degree + 1 > info.switch_id:
            raise TopologyError(
                f"attaching an edge to {sw!r} would give it degree "
                f"{info.degree + 1} > switch ID {info.switch_id}"
            )
        edge = f"E-{sw}"
        graph.add_node(edge, kind=NodeKind.EDGE)
        graph.add_link(sw, edge, rate_mbps=rate_mbps, delay_s=delay_s)
        edges.append(edge)
    return edges


def attach_host_pair(
    graph: PortGraph,
    src_switch: str,
    dst_switch: str,
    rate_mbps: float = 100.0,
    delay_s: float = 0.001,
) -> Tuple[str, str]:
    """Attach (host, edge) stacks at two switches; returns the host names.

    Convenience for turning a generated core graph into a measurable
    scenario: ``H-SRC — E-SRC — src_switch`` and the DST equivalents.
    """
    for label, sw in (("SRC", src_switch), ("DST", dst_switch)):
        edge, host = f"E-{label}", f"H-{label}"
        graph.add_node(edge, kind=NodeKind.EDGE)
        graph.add_node(host, kind=NodeKind.HOST)
        graph.add_link(sw, edge, rate_mbps=rate_mbps, delay_s=delay_s)
        graph.add_link(edge, host, rate_mbps=rate_mbps, delay_s=delay_s)
    return "H-SRC", "H-DST"
