"""Named topologies the controller service can serve.

Each builder returns a :class:`~repro.topology.graph.PortGraph` whose
every core switch carries an edge attachment point (``E-<switch>``) —
the multi-tenant provisioning domain shape: any edge can request a flow
to any other edge.  Built on the repo's existing generators and zoo
graphs via :func:`~repro.topology.generators.attach_edges`, so switch
IDs, port numbering, and therefore every route ID are deterministic.

The registry keys are what ``repro serve --topology``, the load
generator, and the farm job kind ``service`` accept.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.topology.generators import attach_edges, clique, torus
from repro.topology.graph import NodeKind, PortGraph
from repro.topology.topologies import fifteen_node, six_node
from repro.topology.zoo import abilene

__all__ = ["SERVICE_TOPOLOGIES", "service_topology", "edge_names"]


def _six_node() -> PortGraph:
    # The paper's Fig. 1 domain already has E-S/E-D; reuse it as the
    # smallest service target (route 44 stays the canonical check).
    return six_node().graph


def _fifteen_node() -> PortGraph:
    return fifteen_node().graph


def _clique6() -> PortGraph:
    graph = clique(6)
    attach_edges(graph)
    return graph


def _torus33() -> PortGraph:
    graph = torus(3, 3)
    attach_edges(graph)
    return graph


def _abilene() -> PortGraph:
    graph = abilene()
    attach_edges(graph)
    return graph


#: name -> builder; sorted names are the CLI's accepted values.
SERVICE_TOPOLOGIES: Dict[str, Callable[[], PortGraph]] = {
    "six_node": _six_node,
    "fifteen_node": _fifteen_node,
    "clique6": _clique6,
    "torus33": _torus33,
    "abilene": _abilene,
}


def service_topology(name: str) -> PortGraph:
    """Build a named service topology.

    Raises:
        ValueError: unknown name (lists the valid ones).
    """
    try:
        builder = SERVICE_TOPOLOGIES[name]
    except KeyError:
        valid = ", ".join(sorted(SERVICE_TOPOLOGIES))
        raise ValueError(
            f"unknown service topology {name!r}; choose one of: {valid}"
        ) from None
    return builder()


def edge_names(graph: PortGraph) -> List[str]:
    """All edge-node names, sorted (the flow endpoint universe)."""
    return sorted(n.name for n in graph.nodes(NodeKind.EDGE))
