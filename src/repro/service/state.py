"""The controller service's state machine (synchronous, deterministic).

Everything the service can do — provision, release, reroute, absorb a
topology event — lives here as plain synchronous methods over one
:class:`~repro.controller.provision.ProvisioningEngine` and one
:class:`~repro.service.admission.ReservationLedger`.  The asyncio HTTP
layer (:mod:`repro.service.server`) is a thin framing shell around this
class, and the load generator can drive it directly in-process; both
produce identical results for identical operation sequences, which is
what makes the farm digests transport-independent.

Two flow classes:

* **Best-effort** (no bandwidth, no latency budget): the engine's
  destination-tree path, no reservation.  On a link failure the flow is
  repaired against the residual tree — through the incremental
  re-encode path whenever the repair keeps the same switch set (one
  port residue changes → one CRT addend), the pooled encoder otherwise.
* **QoS** (bandwidth and/or latency budget): a CSPF path over the
  residual-capacity graph, admitted only if every link can carry the
  bandwidth and the end-to-end delay fits the budget; admitted flows
  hold ledger reservations.  On a link failure the reservation moves
  with the flow or, if no compliant path survives, the flow is evicted
  (counted, with the admission reason).

The safety argument is :meth:`ControllerState.audit`: ledger totals
conserved and oversubscription-free, every reservation owned by a live
flow, and no QoS flow reserved across a failed link.  The concurrency
tests and the farm load generator assert it stays empty under churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.controller.provision import (
    ProvisionError,
    ProvisioningEngine,
)
from repro.controller.routing import hops_for_path
from repro.rns.encoder import EncodedRoute
from repro.service.admission import (
    AdmissionError,
    ReservationLedger,
    cspf_path,
    path_link_keys,
)
from repro.sim.packet import DEFAULT_TTL
from repro.topology.graph import PortGraph

__all__ = ["ControllerState", "FlowRecord", "UnknownFlowError"]

LinkKey = Tuple[str, str]


class UnknownFlowError(KeyError):
    """Lookup of a flow ID the service is not holding (service 404)."""

    def __init__(self, flow_id: str):
        super().__init__(flow_id)
        self.flow_id = flow_id

    def __str__(self) -> str:
        return f"unknown flow {self.flow_id!r}"


@dataclass
class FlowRecord:
    """One live flow: identity, constraints, and its current route."""

    flow_id: str
    tenant: str
    src_edge: str
    dst_edge: str
    bandwidth_mbps: float
    max_latency_s: Optional[float]
    qos: bool
    node_path: Tuple[str, ...]
    links: Tuple[LinkKey, ...]
    route: EncodedRoute
    out_port: int
    ttl: int
    repairs: int = 0
    detoured: bool = False

    def describe(self) -> Dict[str, Any]:
        """JSON-able flow view (the service's flow resource body)."""
        body: Dict[str, Any] = {
            "flow_id": self.flow_id,
            "tenant": self.tenant,
            "src": self.src_edge,
            "dst": self.dst_edge,
            "qos": self.qos,
            "node_path": list(self.node_path),
            "route_id": self.route.route_id,
            "modulus": self.route.modulus,
            "bits": self.route.bit_length,
            "out_port": self.out_port,
            "ttl": self.ttl,
            "residues": {
                str(s): p for s, p in sorted(self.route.residue_map().items())
            },
            "repairs": self.repairs,
            "detoured": self.detoured,
        }
        if self.qos:
            body["bandwidth_mbps"] = self.bandwidth_mbps
            body["max_latency_s"] = self.max_latency_s
        return body


class ControllerState:
    """All service state behind the API, with deterministic behavior.

    Determinism contract: for a fixed topology and the same sequence of
    operations, every assigned flow ID, chosen path, and route ID is
    identical — regardless of transport (HTTP vs. direct calls) or
    wall-clock.  Flow IDs are sequence numbers, path choices tie-break
    on names, and repairs process flows in flow-ID order.
    """

    def __init__(self, graph: PortGraph, default_ttl: int = DEFAULT_TTL,
                 validated_pool: bool = False):
        self.graph = graph
        self.engine = ProvisioningEngine(
            graph, default_ttl=default_ttl, validated_pool=validated_pool
        )
        self.ledger = ReservationLedger(graph)
        self.flows: Dict[str, FlowRecord] = {}
        self._seq = 0
        self.released = 0
        self.rerouted = 0
        self.repaired = 0
        self.evicted: Dict[str, int] = {}
        self.events: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # flow lifecycle
    # ------------------------------------------------------------------
    def _next_flow_id(self) -> str:
        self._seq += 1
        return f"f{self._seq:08d}"

    def provision(
        self,
        tenant: str,
        src_edge: str,
        dst_edge: str,
        bandwidth_mbps: float = 0.0,
        max_latency_s: Optional[float] = None,
        ttl: Optional[int] = None,
    ) -> FlowRecord:
        """Admit and provision one flow; returns its record.

        A request with a bandwidth or latency constraint takes the QoS
        path (CSPF + reservation); an unconstrained request takes the
        engine's destination-tree path.  Both encode through the same
        pooled encoder, so either way the route ID is bit-identical to
        the offline engine's encoding of the same node path.

        Raises:
            AdmissionError: QoS constraints unsatisfiable (service 409).
            ProvisionError: malformed request (service 4xx).
        """
        qos = bandwidth_mbps > 0 or max_latency_s is not None
        if bandwidth_mbps < 0:
            raise ProvisionError(
                "bad-request",
                f"bandwidth must be non-negative, got {bandwidth_mbps}",
            )
        if qos:
            try:
                node_path = cspf_path(
                    self.graph,
                    src_edge,
                    dst_edge,
                    bandwidth_mbps=bandwidth_mbps,
                    max_latency_s=max_latency_s,
                    residual=self.ledger.residual,
                    down=self.engine.down_links,
                )
            except AdmissionError as exc:
                # CSPF rejections never reach the ledger's reserve();
                # count them here so accepted + rejected covers every
                # admission decision in /stats.
                self.ledger.count_reject(exc.reason)
                raise
            provisioned = self.engine.encode_path(node_path)
        else:
            provisioned = self.engine.provision(src_edge, dst_edge)
            node_path = list(provisioned.node_path)
        flow_id = self._next_flow_id()
        links = path_link_keys(node_path)
        if bandwidth_mbps > 0:
            # May raise insufficient-bandwidth on a latency-tied race;
            # nothing to roll back — the flow ID burn is harmless and
            # keeps numbering append-only.
            self.ledger.reserve(flow_id, bandwidth_mbps, links)
        record = FlowRecord(
            flow_id=flow_id,
            tenant=tenant,
            src_edge=src_edge,
            dst_edge=dst_edge,
            bandwidth_mbps=bandwidth_mbps,
            max_latency_s=max_latency_s,
            qos=qos,
            node_path=tuple(node_path),
            links=links,
            route=provisioned.route,
            out_port=provisioned.out_port,
            ttl=ttl if ttl is not None else self.engine.default_ttl,
        )
        self.flows[flow_id] = record
        return record

    def release(self, flow_id: str) -> FlowRecord:
        """Tear a flow down, returning its bandwidth; returns the record.

        Raises:
            UnknownFlowError: no such flow (service 404).
        """
        record = self.flows.pop(flow_id, None)
        if record is None:
            raise UnknownFlowError(flow_id)
        self.ledger.release(flow_id)
        self.released += 1
        return record

    def flow(self, flow_id: str) -> FlowRecord:
        try:
            return self.flows[flow_id]
        except KeyError:
            raise UnknownFlowError(flow_id) from None

    def list_flows(self, tenant: Optional[str] = None) -> List[FlowRecord]:
        records = (
            f for f in self.flows.values()
            if tenant is None or f.tenant == tenant
        )
        return sorted(records, key=lambda f: f.flow_id)

    # ------------------------------------------------------------------
    # reroute (KAR driven deflection, as an API call)
    # ------------------------------------------------------------------
    def reroute(
        self, flow_id: str, switch_name: str, new_next: str
    ) -> FlowRecord:
        """Point one on-route switch at a different neighbor.

        The incremental re-encode path (one CRT addend).  Refused for
        flows holding bandwidth reservations: a detour would move
        traffic onto links the ledger never admitted it to, so the
        admission invariants would be fiction — QoS flows only move via
        topology-event repair, which re-runs admission.

        Raises:
            UnknownFlowError: no such flow.
            ProvisionError: invalid detour (see
                :meth:`~repro.controller.provision.ProvisioningEngine
                .reroute_hop`), or a reserved flow
                (``qos-reroute-unsupported``).
        """
        record = self.flow(flow_id)
        if record.bandwidth_mbps > 0:
            raise ProvisionError(
                "qos-reroute-unsupported",
                f"flow {flow_id!r} holds a bandwidth reservation; "
                f"detours must go through admission (topology events)",
            )
        record.route = self.engine.reroute_hop(
            record.route, switch_name, new_next
        )
        record.detoured = True
        self.rerouted += 1
        return record

    # ------------------------------------------------------------------
    # topology events
    # ------------------------------------------------------------------
    def topology_event(self, kind: str, a: str, b: str) -> Dict[str, Any]:
        """Apply one link event and repair every affected flow.

        Kinds: ``link_down``, ``link_up``, ``port_flap`` (down, repair,
        immediately back up — transient failure).  Each state change
        bumps the engine's epoch through the link-granular invalidation
        (:meth:`~repro.controller.provision.ProvisioningEngine
        .note_link_change`), so the CRT pool survives and repairs stay
        on the incremental/pooled path.

        Returns a summary: ``{"kind", "link", "changed", "repaired":
        [...], "evicted": {flow_id: reason}}``.

        Raises:
            ProvisionError: unknown nodes or a nonexistent link
                (``unknown-node`` / ``not-a-link``), or an unknown event
                kind (``bad-request``).
        """
        if kind not in ("link_down", "link_up", "port_flap"):
            raise ProvisionError(
                "bad-request", f"unknown topology event kind {kind!r}"
            )
        self.events[kind] = self.events.get(kind, 0) + 1
        summary: Dict[str, Any] = {
            "kind": kind,
            "link": sorted((a, b)),
            "changed": False,
            "repaired": [],
            "evicted": {},
        }
        if kind == "link_up":
            summary["changed"] = self.engine.set_link_up(a, b)
            return summary
        changed = self.engine.set_link_down(a, b)
        summary["changed"] = changed
        if changed:
            repaired, evicted = self._repair_after_failure()
            summary["repaired"] = repaired
            summary["evicted"] = evicted
        if kind == "port_flap":
            self.engine.set_link_up(a, b)
        return summary

    def _repair_after_failure(self) -> Tuple[List[str], Dict[str, str]]:
        """Move every flow off failed links; evict what cannot move."""
        down = self.engine.down_links
        affected = sorted(
            record.flow_id
            for record in self.flows.values()
            if any(key in down for key in record.links)
        )
        repaired: List[str] = []
        evicted: Dict[str, str] = {}
        for flow_id in affected:
            record = self.flows[flow_id]
            try:
                if record.qos:
                    self._repair_qos(record)
                else:
                    self._repair_best_effort(record)
            except (AdmissionError, ProvisionError) as exc:
                reason = exc.reason
                self._evict(record, reason)
                evicted[flow_id] = reason
            else:
                record.repairs += 1
                self.repaired += 1
                repaired.append(flow_id)
        return repaired, evicted

    def _repair_qos(self, record: FlowRecord) -> None:
        """Re-admit a QoS flow over the residual graph, moving its
        reservation; raises AdmissionError when no compliant path is
        left (the caller evicts)."""
        self.ledger.release(record.flow_id)
        try:
            node_path = cspf_path(
                self.graph,
                record.src_edge,
                record.dst_edge,
                bandwidth_mbps=record.bandwidth_mbps,
                max_latency_s=record.max_latency_s,
                residual=self.ledger.residual,
                down=self.engine.down_links,
            )
            links = path_link_keys(node_path)
            if record.bandwidth_mbps > 0:
                self.ledger.reserve(
                    record.flow_id, record.bandwidth_mbps, links
                )
        except AdmissionError:
            raise  # reservation already released; _evict just drops the flow
        provisioned = self.engine.encode_path(node_path)
        record.node_path = tuple(node_path)
        record.links = links
        record.route = provisioned.route
        record.out_port = provisioned.out_port

    def _repair_best_effort(self, record: FlowRecord) -> None:
        """Re-path a best-effort flow along the residual tree.

        When the new path visits the same switches (only an exit port
        changed — the common single-link-failure case on well-connected
        cores), the repair is folded through
        :class:`~repro.rns.pool.ReencodeDelta` as per-hop addend
        updates rather than a fresh encode; otherwise the pooled
        encoder takes it.  Raises ProvisionError(``no-core-path``) when
        the residual graph disconnects the pair.
        """
        node_path = self.engine.select_path(
            record.src_edge, record.dst_edge
        )
        new_hops = hops_for_path(self.graph, node_path)
        old_map = record.route.residue_map()
        new_ids = [h.switch_id for h in new_hops]
        if not record.detoured and sorted(new_ids) == sorted(old_map):
            changes = [
                (h.switch_id, h.port)
                for h in new_hops
                if old_map[h.switch_id] != h.port
            ]
            record.route = self.engine.delta.apply_many(
                record.route, changes
            )
            self.engine.provisions += 1
        else:
            record.route = self.engine.encode_path(node_path).route
        record.node_path = tuple(node_path)
        record.links = path_link_keys(node_path)
        record.out_port = self.graph.port_of(node_path[0], node_path[1])
        record.detoured = False

    def _evict(self, record: FlowRecord, reason: str) -> None:
        self.flows.pop(record.flow_id, None)
        self.ledger.release(record.flow_id)
        self.evicted[reason] = self.evicted.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # invariants / observability
    # ------------------------------------------------------------------
    def audit(self) -> List[str]:
        """All admission invariant violations (empty list = healthy).

        Ledger conservation and oversubscription checks, orphaned-
        reservation detection against the live flow table, plus: no
        QoS flow may hold a reservation across a link currently down.
        """
        violations = self.ledger.audit(live_flow_ids=self.flows)
        down = self.engine.down_links
        for flow_id in sorted(self.flows):
            record = self.flows[flow_id]
            if record.bandwidth_mbps <= 0:
                continue
            for key in record.links:
                if key in down:
                    violations.append(
                        f"QoS flow {flow_id!r} reserved across down link "
                        f"{key[0]}-{key[1]}"
                    )
        return violations

    def stats(self) -> Dict[str, Any]:
        """Service + engine + ledger counters, one JSON-able mapping."""
        return {
            "service": {
                "flows_live": len(self.flows),
                "flows_total": self._seq,
                "released": self.released,
                "rerouted": self.rerouted,
                "repaired": self.repaired,
                "evicted": dict(sorted(self.evicted.items())),
                "events": dict(sorted(self.events.items())),
            },
            "admission": self.ledger.stats(),
            "engine": self.engine.stats(),
        }

    def topology_view(self) -> Dict[str, Any]:
        """The topology as the service sees it (``/topology``)."""
        down = self.engine.down_links
        links = []
        for link in sorted(self.graph.links(), key=lambda l: l.key):
            links.append({
                "a": link.key[0],
                "b": link.key[1],
                "rate_mbps": link.rate_mbps,
                "delay_s": link.delay_s,
                "up": link.key not in down,
            })
        switches = {
            name: sid for name, sid in sorted(
                self.graph.switch_ids().items()
            )
        }
        return {
            "epoch": self.engine.epoch,
            "switches": switches,
            "links": links,
            "links_down": sorted(
                [k[0], k[1]] for k in down
            ),
        }
