"""Admission control: per-link bandwidth reservations + CSPF.

KAR's controller hands out route IDs; a *service* in front of it must
also decide whether the network can actually carry the flow it is
being asked for.  This module implements the classic two-step CSPF
discipline (the link-state/QoS daemon shape — see SNIPPETS.md
Snippet 1):

1. **Feasibility** — prune every link whose *residual* capacity
   (capacity minus existing reservations) cannot carry the requested
   bandwidth, and every link currently overlaid as down.
2. **Quality** — run Dijkstra over what remains with propagation delay
   as the metric, deterministic tie-breaks, and reject the winner if
   its end-to-end latency exceeds the request's budget.

Accepted flows reserve bandwidth on every link of their path in the
:class:`ReservationLedger`; released flows return it.  The ledger is
the service's safety argument, so it is self-auditing: :meth:`
ReservationLedger.audit` re-derives every per-link total from the
per-flow book and reports any oversubscription or drift, and the
load-generator/CI assert the audit stays empty under churn.

Rejections raise :class:`AdmissionError` with a machine-readable
``reason`` (``insufficient-bandwidth``, ``latency-exceeded``,
``no-route``) — the service's structured 4xx payloads.
"""

from __future__ import annotations

import heapq
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.topology.graph import NodeKind, PortGraph

__all__ = [
    "AdmissionError",
    "ReservationLedger",
    "cspf_path",
    "path_link_keys",
]

LinkKey = Tuple[str, str]

#: Reservation arithmetic tolerance.  Reservations are added and
#: subtracted as the same float values, so totals cancel exactly; the
#: epsilon only guards audit comparisons against representation noise.
_EPS = 1e-9


class AdmissionError(Exception):
    """A flow request the admission controller must refuse.

    Attributes:
        reason: machine-readable slug (``insufficient-bandwidth``,
            ``latency-exceeded``, ``no-route``) — returned verbatim in
            the service's 4xx response body.
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


def _link_key(a: str, b: str) -> LinkKey:
    return (a, b) if a <= b else (b, a)


def path_link_keys(node_path: Sequence[str]) -> Tuple[LinkKey, ...]:
    """Canonical link keys along a node path, in path order."""
    return tuple(
        _link_key(a, b) for a, b in zip(node_path, node_path[1:])
    )


class ReservationLedger:
    """Per-link bandwidth book for one topology.

    Link capacities are read from the graph at construction.  Every
    accepted flow records ``(bandwidth, link keys)`` under its flow ID;
    totals per link are maintained incrementally and re-derivable from
    the per-flow book (:meth:`audit` checks both properties).
    """

    def __init__(self, graph: PortGraph):
        self.capacity: Dict[LinkKey, float] = {
            link.key: float(link.rate_mbps) for link in graph.links()
        }
        self.reserved: Dict[LinkKey, float] = {
            key: 0.0 for key in self.capacity
        }
        self._flows: Dict[str, Tuple[float, Tuple[LinkKey, ...]]] = {}
        self.accepted = 0
        self.rejected: Dict[str, int] = {}
        self.released = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def residual(self, key: LinkKey) -> float:
        """Unreserved capacity on one link (canonical key)."""
        return self.capacity[key] - self.reserved[key]

    def flow_reservation(
        self, flow_id: str
    ) -> Optional[Tuple[float, Tuple[LinkKey, ...]]]:
        """The ``(bandwidth, links)`` a flow holds, if any."""
        return self._flows.get(flow_id)

    def reserved_flow_ids(self) -> List[str]:
        return sorted(self._flows)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def reserve(
        self,
        flow_id: str,
        bandwidth_mbps: float,
        links: Iterable[LinkKey],
    ) -> None:
        """Atomically reserve bandwidth on every link of a path.

        Checks every residual before committing anything, so a failed
        reserve leaves the ledger untouched.

        Raises:
            AdmissionError: ``insufficient-bandwidth`` naming the first
                link (in path order) that cannot carry the flow.
            ValueError: non-positive bandwidth, duplicate flow ID, or
                an unknown link key (caller bugs, not client errors).
        """
        keys = tuple(links)
        if bandwidth_mbps <= 0:
            raise ValueError(
                f"reservation bandwidth must be positive, got "
                f"{bandwidth_mbps}"
            )
        if flow_id in self._flows:
            raise ValueError(f"flow {flow_id!r} already holds a reservation")
        for key in keys:
            if key not in self.capacity:
                raise ValueError(f"unknown link {key!r}")
            if self.reserved[key] + bandwidth_mbps > self.capacity[key] + _EPS:
                self.count_reject("insufficient-bandwidth")
                raise AdmissionError(
                    "insufficient-bandwidth",
                    f"link {key[0]}-{key[1]} has "
                    f"{self.residual(key):g} Mbit/s residual, "
                    f"flow needs {bandwidth_mbps:g}",
                )
        for key in keys:
            self.reserved[key] += bandwidth_mbps
        self._flows[flow_id] = (float(bandwidth_mbps), keys)
        self.accepted += 1

    def release(self, flow_id: str) -> bool:
        """Return a flow's bandwidth; True if it held a reservation."""
        entry = self._flows.pop(flow_id, None)
        if entry is None:
            return False
        bandwidth, keys = entry
        for key in keys:
            self.reserved[key] -= bandwidth
        self.released += 1
        return True

    def count_reject(self, reason: str) -> None:
        """Tally one rejection under a reason slug."""
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # invariants / observability
    # ------------------------------------------------------------------
    def audit(
        self, live_flow_ids: Optional[Iterable[str]] = None
    ) -> List[str]:
        """Invariant violations, as human-readable strings (empty = ok).

        Checks, in order: no link oversubscribed; every per-link total
        equals the sum over the per-flow book (no drift); and — when
        the caller passes the service's live flow IDs — no orphaned
        reservations (ledger entries without a live flow).
        """
        violations: List[str] = []
        for key in sorted(self.capacity):
            if self.reserved[key] > self.capacity[key] + _EPS:
                violations.append(
                    f"link {key[0]}-{key[1]} oversubscribed: "
                    f"{self.reserved[key]:g} > {self.capacity[key]:g}"
                )
        totals: Dict[LinkKey, float] = {key: 0.0 for key in self.capacity}
        for flow_id, (bandwidth, keys) in self._flows.items():
            for key in keys:
                totals[key] += bandwidth
        for key in sorted(self.capacity):
            if abs(totals[key] - self.reserved[key]) > _EPS:
                violations.append(
                    f"link {key[0]}-{key[1]} reservation drift: "
                    f"book says {totals[key]:g}, "
                    f"ledger says {self.reserved[key]:g}"
                )
        if live_flow_ids is not None:
            live = set(live_flow_ids)
            for flow_id in sorted(self._flows):
                if flow_id not in live:
                    violations.append(
                        f"orphaned reservation for flow {flow_id!r}"
                    )
        return violations

    def stats(self) -> Dict[str, object]:
        """JSON-able ledger summary for the ``/stats`` endpoint."""
        utilized = {
            f"{key[0]}-{key[1]}": round(self.reserved[key], 6)
            for key in sorted(self.capacity)
            if self.reserved[key] > _EPS
        }
        return {
            "accepted": self.accepted,
            "rejected": dict(sorted(self.rejected.items())),
            "released": self.released,
            "reserved_flows": len(self._flows),
            "links_with_reservations": len(utilized),
            "reserved_mbps": utilized,
        }


def cspf_path(
    graph: PortGraph,
    src_edge: str,
    dst_edge: str,
    bandwidth_mbps: float = 0.0,
    max_latency_s: Optional[float] = None,
    residual: Optional[Callable[[LinkKey], float]] = None,
    down: FrozenSet[LinkKey] = frozenset(),
) -> List[str]:
    """Constrained shortest path: feasibility prune, then min latency.

    Returns the full node path ``[src_edge, SW..., dst_edge]`` with
    intermediates restricted to core switches, minimizing summed link
    ``delay_s``.  Ties break deterministically on (latency, hop count,
    node name order), independent of dict/heap insertion order.

    Args:
        bandwidth_mbps: links whose ``residual`` is below this are
            pruned (0 disables the prune).
        max_latency_s: reject the winner if its end-to-end propagation
            delay exceeds this budget.
        residual: residual-capacity lookup (canonical link key →
            Mbit/s); defaults to raw link capacity.
        down: canonical keys of links overlaid as failed.

    Raises:
        AdmissionError: ``insufficient-bandwidth`` when pruning is what
            disconnected the pair, ``no-route`` when even the
            unconstrained residual topology has no path,
            ``latency-exceeded`` when the best feasible path is too
            slow.
    """
    for name in (src_edge, dst_edge):
        if graph.node(name).kind != NodeKind.EDGE:
            raise AdmissionError(
                "no-route", f"{name!r} is not an edge node"
            )
    if src_edge == dst_edge:
        raise AdmissionError(
            "no-route",
            f"flow endpoints share the edge {src_edge!r}",
        )

    def usable(a: str, b: str, prune_bandwidth: bool) -> bool:
        key = _link_key(a, b)
        if key in down:
            return False
        if prune_bandwidth and bandwidth_mbps > 0:
            cap = (
                residual(key) if residual is not None
                else graph.link(a, b).rate_mbps
            )
            if cap + _EPS < bandwidth_mbps:
                return False
        return True

    def search(prune_bandwidth: bool) -> Optional[Tuple[List[str], float]]:
        # Dijkstra keyed on (latency, hops, name): the tuple order is
        # the documented tie-break, so the chosen path is unique for a
        # given topology + reservation state.
        best: Dict[str, Tuple[float, int]] = {src_edge: (0.0, 0)}
        parent: Dict[str, str] = {}
        heap: List[Tuple[float, int, str]] = [(0.0, 0, src_edge)]
        visited = set()
        while heap:
            cost, hops, cur = heapq.heappop(heap)
            if cur in visited:
                continue
            visited.add(cur)
            if cur == dst_edge:
                path = [cur]
                while path[-1] != src_edge:
                    path.append(parent[path[-1]])
                return list(reversed(path)), cost
            for nb in sorted(graph.neighbors(cur)):
                kind = graph.node(nb).kind
                if nb == dst_edge:
                    pass  # the egress edge is always allowed
                elif kind != NodeKind.CORE:
                    continue  # no hairpinning through other edges/hosts
                if nb in visited or not usable(cur, nb, prune_bandwidth):
                    continue
                link = graph.link(cur, nb)
                cand = (cost + link.delay_s, hops + 1)
                if nb not in best or cand < best[nb]:
                    best[nb] = cand
                    parent[nb] = cur
                    heapq.heappush(heap, (cand[0], cand[1], nb))
        return None

    found = search(prune_bandwidth=True)
    if found is None:
        if bandwidth_mbps > 0 and search(prune_bandwidth=False) is not None:
            raise AdmissionError(
                "insufficient-bandwidth",
                f"no path from {src_edge!r} to {dst_edge!r} with "
                f"{bandwidth_mbps:g} Mbit/s residual on every link",
            )
        raise AdmissionError(
            "no-route",
            f"no residual path from {src_edge!r} to {dst_edge!r}",
        )
    path, latency = found
    if max_latency_s is not None and latency > max_latency_s + _EPS:
        raise AdmissionError(
            "latency-exceeded",
            f"best feasible path takes {latency:g}s one-way, "
            f"budget is {max_latency_s:g}s",
        )
    return path
