"""Farm-driven churn load generator for the controller service.

Simulates a population of users arriving (provision), departing
(release), detouring (reroute), and suffering transient link failures
(port-flap) against a controller service, then audits what the service
promised:

* **Admission invariants** — the service's ``/audit`` endpoint is
  polled throughout the run and after a full drain: no link
  oversubscribed, ledger totals conserved, no orphaned reservations,
  no QoS flow reserved across a down link.
* **Route-ID bit-identity** — every served flow is re-derived offline:
  the flow's node path is re-walked on a locally built copy of the
  same topology and its hop residues re-solved with the *reference*
  :func:`~repro.rns.crt.crt` solver; the served ``(route_id,
  modulus)`` must match exactly.  Detoured flows (whose node path no
  longer describes their residues) are checked residue-by-residue
  against ``route_id mod switch_id`` plus a reference re-solve of the
  residue system.
* **QoS compliance** — accepted constrained flows are spot-checked
  client-side (path latency within budget).

The op sequence is a pure function of ``(topology, seed, users,
operations, qos_fraction)`` and every service response is deterministic
(see :class:`~repro.service.state.ControllerState`), so the report's
``digest`` — a sha256 over the full operation/outcome log — is
*transport-independent*: a run through real HTTP sockets and a run
calling :func:`~repro.service.server.dispatch` directly must produce
the same digest.  The farm job kind ``service`` (see
:mod:`repro.farm.jobs`) runs one churn shard; identical shards are
content-addressed cache hits, and CI replays a sweep twice to pin the
digests down.

No wall-clock anything appears in the report — timing lives in
:mod:`repro.bench.servicebench`, which is where honest measurement
(interleaved repeats, min-of) happens.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.controller.routing import hops_for_path
from repro.rns.crt import crt
from repro.service.server import ServiceThread, dispatch
from repro.service.state import ControllerState
from repro.service.topology import edge_names, service_topology
from repro.topology.graph import NodeKind, PortGraph

__all__ = ["ChurnReport", "run_churn", "render_churn", "churn_rows"]

#: Operation mix (must sum to 1.0): mostly arrivals/departures with a
#: steady trickle of detours and transient link failures.
_OP_WEIGHTS = (
    ("arrive", 0.50),
    ("depart", 0.25),
    ("reroute", 0.15),
    ("flap", 0.10),
)

#: QoS request palette: bandwidths in Mbit/s and one-way latency
#: budgets in seconds (None = bandwidth-only).  Budgets are chosen to
#: straddle realistic path delays so churn runs exercise *both*
#: admission outcomes.
_QOS_BANDWIDTHS = (1.0, 2.0, 5.0, 10.0)
_QOS_LATENCIES = (None, 0.002, 0.003, 0.005, 0.010)


@dataclass
class ChurnReport:
    """Everything one churn run proved.  Deliberately wall-clock-free:
    equal inputs must mean an equal ``digest``, across processes and
    transports."""

    topology: str
    seed: int
    users: int
    operations: int
    qos_fraction: float
    transport: str
    ops: Dict[str, int] = field(default_factory=dict)
    statuses: Dict[str, int] = field(default_factory=dict)
    admission_rejected: Dict[str, int] = field(default_factory=dict)
    flows_provisioned: int = 0
    flows_evicted: int = 0
    flows_repaired: int = 0
    audits: int = 0
    violations: List[str] = field(default_factory=list)
    bit_identity_checked: int = 0
    bit_identity_mismatches: int = 0
    qos_checked: int = 0
    qos_violations: int = 0
    encoder_fallbacks: int = -1
    delta_full_solves: int = -1
    incremental_only: bool = False
    drained: bool = False
    digest: str = ""

    @property
    def ok(self) -> bool:
        """The run's single verdict: every promise held."""
        return (
            not self.violations
            and self.bit_identity_mismatches == 0
            and self.qos_violations == 0
            and self.incremental_only
            and self.drained
        )


class _Transport:
    """Uniform ``op(method, path, query, body)`` over both transports."""

    def __init__(self, kind: str, topology: str, host: Optional[str],
                 port: Optional[int]):
        self.kind = kind
        self._thread: Optional[ServiceThread] = None
        self._client = None
        self._state: Optional[ControllerState] = None
        if kind == "direct":
            self._state = ControllerState(
                service_topology(topology), validated_pool=True
            )
        elif kind == "http":
            from repro.service.client import ServiceClient

            if host is None or port is None:
                self._thread = ServiceThread(
                    service_topology(topology), validated_pool=True
                )
                self._thread.start()
                host, port = self._thread.host, self._thread.port
            self._client = ServiceClient(host, port)
        else:
            raise ValueError(
                f"unknown transport {kind!r}; use 'direct' or 'http'"
            )

    def op(
        self,
        method: str,
        path: str,
        query: Optional[Dict[str, str]] = None,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        if self._state is not None:
            return dispatch(self._state, method, path, query or {}, body)
        target = path
        if query:
            target = path + "?" + "&".join(
                f"{k}={v}" for k, v in sorted(query.items())
            )
        return self._client.request(method, target, body)

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
        if self._thread is not None:
            self._thread.stop()


def _core_links(graph: PortGraph) -> List[Tuple[str, str]]:
    """Canonical keys of core-core links — the flappable set.  Edge
    attachment links are excluded: flapping a single-homed edge's only
    uplink just evicts everything behind it, which tests nothing."""
    keys = []
    for link in graph.links():
        a, b = link.key
        if (graph.node(a).kind == NodeKind.CORE
                and graph.node(b).kind == NodeKind.CORE):
            keys.append(link.key)
    return sorted(keys)


def _pick_op(rng, active: int, users: int) -> str:
    roll = rng.random()
    acc = 0.0
    choice = _OP_WEIGHTS[-1][0]
    for name, weight in _OP_WEIGHTS:
        acc += weight
        if roll < acc:
            choice = name
            break
    # Degenerate states fall back to the op that makes progress.
    if choice == "arrive" and active >= users:
        return "depart"
    if choice in ("depart", "reroute") and active == 0:
        return "arrive"
    return choice


def run_churn(
    topology: str = "torus33",
    seed: int = 0,
    users: int = 2000,
    operations: int = 4000,
    qos_fraction: float = 0.3,
    transport: str = "direct",
    host: Optional[str] = None,
    port: Optional[int] = None,
    audit_every: int = 250,
) -> ChurnReport:
    """Run one seeded churn shard and audit every service promise.

    ``users`` bounds the concurrent flow population; ``operations``
    is the number of API operations issued (plus the final drain).
    ``transport`` is ``direct`` (in-process dispatch) or ``http`` (a
    live in-process asyncio server unless ``host``/``port`` point at
    an external one).
    """
    import random

    rng = random.Random(f"service-churn:{topology}:{seed}")
    report = ChurnReport(
        topology=topology, seed=seed, users=users, operations=operations,
        qos_fraction=qos_fraction, transport=transport,
    )
    # The offline reference copy: same builder, same names, same switch
    # IDs and port numbering — what "bit-identity to the offline
    # engine" is measured against.
    ref_graph = service_topology(topology)
    edges = edge_names(ref_graph)
    flappable = _core_links(ref_graph)
    log = hashlib.sha256()

    def note(index: int, op: str, status: int, extra: Any) -> None:
        log.update(json.dumps(
            [index, op, status, extra], sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8"))
        report.statuses[str(status)] = (
            report.statuses.get(str(status), 0) + 1
        )
        report.ops[op] = report.ops.get(op, 0) + 1

    def check_flow_body(body: Dict[str, Any]) -> None:
        """Offline re-derivation of one served flow."""
        report.bit_identity_checked += 1
        route_id, modulus = body["route_id"], body["modulus"]
        residues = {int(s): p for s, p in body["residues"].items()}
        ok = all(route_id % s == p for s, p in residues.items())
        ref = crt(list(residues.values()), list(residues.keys()))
        ok = ok and ref == (route_id, modulus)
        if ok and not body["detoured"]:
            hops = hops_for_path(ref_graph, body["node_path"])
            ref = crt([h.port for h in hops], [h.switch_id for h in hops])
            ok = (
                ref == (route_id, modulus)
                and body["out_port"] == ref_graph.port_of(
                    body["node_path"][0], body["node_path"][1]
                )
            )
        if not ok:
            report.bit_identity_mismatches += 1
        if body["qos"] and body.get("max_latency_s") is not None:
            report.qos_checked += 1
            latency = sum(
                ref_graph.link(a, b).delay_s
                for a, b in zip(body["node_path"], body["node_path"][1:])
            )
            if latency > body["max_latency_s"] + 1e-9:
                report.qos_violations += 1

    def audit(index: int) -> None:
        status, body = transport_.op("GET", "/audit")
        note(index, "audit", status, body.get("violations"))
        report.audits += 1
        report.violations.extend(body.get("violations") or [])

    transport_ = _Transport(transport, topology, host, port)
    try:
        # flow_id -> last known body; plus an O(1)-removal pick list.
        flows: Dict[str, Dict[str, Any]] = {}
        order: List[str] = []
        position: Dict[str, int] = {}

        def add_flow(body: Dict[str, Any]) -> None:
            fid = body["flow_id"]
            flows[fid] = body
            position[fid] = len(order)
            order.append(fid)

        def drop_flow(fid: str) -> None:
            if fid not in position:
                return
            idx = position.pop(fid)
            last = order.pop()
            if last != fid:
                order[idx] = last
                position[last] = idx
            flows.pop(fid, None)

        for i in range(operations):
            op = _pick_op(rng, len(order), users)
            if op == "arrive":
                src, dst = rng.sample(edges, 2)
                request: Dict[str, Any] = {
                    "tenant": f"u{rng.randrange(users):05d}",
                    "src": src,
                    "dst": dst,
                }
                if rng.random() < qos_fraction:
                    request["bandwidth_mbps"] = rng.choice(_QOS_BANDWIDTHS)
                    latency = rng.choice(_QOS_LATENCIES)
                    if latency is not None:
                        request["max_latency_s"] = latency
                status, body = transport_.op("POST", "/flows", body=request)
                if status == 201:
                    add_flow(body["flow"])
                    report.flows_provisioned += 1
                    check_flow_body(body["flow"])
                    note(i, op, status, body["flow"]["route_id"])
                else:
                    reason = body.get("error", "?")
                    if status == 409:
                        report.admission_rejected[reason] = (
                            report.admission_rejected.get(reason, 0) + 1
                        )
                    note(i, op, status, reason)
            elif op == "depart":
                fid = order[rng.randrange(len(order))]
                status, body = transport_.op("DELETE", f"/flows/{fid}")
                drop_flow(fid)
                note(i, op, status, fid)
            elif op == "reroute":
                fid = order[rng.randrange(len(order))]
                cached = flows[fid]
                cores = [
                    n for n in cached["node_path"][1:-1]
                    if ref_graph.node(n).kind == NodeKind.CORE
                ]
                if not cores:
                    note(i, op, -1, "no-core")
                    continue
                switch = rng.choice(cores)
                new_next = rng.choice(sorted(
                    nb for nb in ref_graph.neighbors(switch)
                    if ref_graph.node(nb).kind == NodeKind.CORE
                ))
                status, body = transport_.op(
                    "POST", f"/flows/{fid}/reroute",
                    body={"switch": switch, "next": new_next},
                )
                if status == 200:
                    flows[fid] = body["flow"]
                    check_flow_body(body["flow"])
                    note(i, op, status, body["flow"]["route_id"])
                else:
                    note(i, op, status, body.get("error", "?"))
            else:  # flap
                a, b = flappable[rng.randrange(len(flappable))]
                status, body = transport_.op(
                    "POST", "/topology/events",
                    body={"kind": "port_flap", "a": a, "b": b},
                )
                evicted = sorted((body.get("evicted") or {}).items())
                repaired = body.get("repaired") or []
                for fid, _reason in evicted:
                    drop_flow(fid)
                report.flows_evicted += len(evicted)
                report.flows_repaired += len(repaired)
                note(i, op, status, [evicted, repaired])
            if audit_every and (i + 1) % audit_every == 0:
                audit(i)

        # Final survey: every live flow re-derived offline against the
        # *server's* current view (repairs included), then a full
        # drain, then the orphan audit on the empty service.
        status, body = transport_.op("GET", "/flows")
        note(operations, "survey", status, len(body.get("flows", [])))
        for flow_body in body.get("flows", []):
            check_flow_body(flow_body)
        for flow_body in body.get("flows", []):
            fid = flow_body["flow_id"]
            status, _ = transport_.op("DELETE", f"/flows/{fid}")
            note(operations, "drain", status, fid)
        audit(operations)
        status, stats = transport_.op("GET", "/stats")
        report.drained = (
            status == 200
            and stats["service"]["flows_live"] == 0
            and stats["admission"]["reserved_flows"] == 0
        )
        report.encoder_fallbacks = stats["engine"]["encoder"]["fallback"]
        report.delta_full_solves = stats["engine"]["delta"]["full_solves"]
        report.incremental_only = (
            report.encoder_fallbacks == 0 and report.delta_full_solves == 0
        )
        note(operations, "stats", status, [
            report.encoder_fallbacks, report.delta_full_solves,
        ])
    finally:
        transport_.close()

    report.ops = dict(sorted(report.ops.items()))
    report.statuses = dict(sorted(report.statuses.items()))
    report.admission_rejected = dict(
        sorted(report.admission_rejected.items())
    )
    report.digest = log.hexdigest()[:16]
    return report


def render_churn(reports: List[ChurnReport]) -> str:
    """Human summary of one or more churn shards."""
    lines = []
    for r in reports:
        verdict = "OK" if r.ok else "VIOLATIONS"
        rejected = sum(r.admission_rejected.values())
        lines.append(
            f"[{verdict}] {r.topology} seed={r.seed} "
            f"transport={r.transport} ops={r.operations} "
            f"provisioned={r.flows_provisioned} rejected={rejected} "
            f"repaired={r.flows_repaired} evicted={r.flows_evicted} "
            f"digest={r.digest}"
        )
        lines.append(
            f"    bit-identity {r.bit_identity_checked} checked, "
            f"{r.bit_identity_mismatches} mismatches; "
            f"qos {r.qos_checked} checked, {r.qos_violations} violations; "
            f"audits={r.audits} violations={len(r.violations)}; "
            f"incremental-only={r.incremental_only} drained={r.drained}"
        )
        for violation in r.violations[:5]:
            lines.append(f"    ! {violation}")
    total_viol = sum(
        len(r.violations) + r.bit_identity_mismatches + r.qos_violations
        for r in reports
    )
    lines.append(
        f"{len(reports)} shard(s), "
        f"{sum(r.flows_provisioned for r in reports)} flows provisioned, "
        f"{total_viol} total violations"
    )
    return "\n".join(lines)


def churn_rows(reports: List[ChurnReport]) -> List[Dict[str, Any]]:
    """Flat per-shard rows for ``--export`` (CSV/JSON friendly)."""
    return [
        {
            "topology": r.topology,
            "seed": r.seed,
            "transport": r.transport,
            "users": r.users,
            "operations": r.operations,
            "qos_fraction": r.qos_fraction,
            "flows_provisioned": r.flows_provisioned,
            "admission_rejected": sum(r.admission_rejected.values()),
            "flows_repaired": r.flows_repaired,
            "flows_evicted": r.flows_evicted,
            "violations": len(r.violations),
            "bit_identity_checked": r.bit_identity_checked,
            "bit_identity_mismatches": r.bit_identity_mismatches,
            "qos_checked": r.qos_checked,
            "qos_violations": r.qos_violations,
            "incremental_only": r.incremental_only,
            "drained": r.drained,
            "ok": r.ok,
            "digest": r.digest,
        }
        for r in reports
    ]


def churn_report_from_record(record: Dict[str, Any]) -> ChurnReport:
    """Rebuild a :class:`ChurnReport` from a farm result record."""
    return ChurnReport(**dict(record["service"]))


def churn_record(report: ChurnReport) -> Dict[str, Any]:
    """The farm result-record shape (nested under ``service``)."""
    return {"service": asdict(report)}
