"""The controller service: HTTP/JSON framing over ControllerState.

Two layers, deliberately separated:

* :func:`dispatch` — the entire API surface as one pure-synchronous
  function ``(state, method, path, query, body) -> (status, payload)``.
  The asyncio server below calls it per request; the load generator's
  ``direct`` transport calls it without any socket at all.  One code
  path for both is what guarantees the farm digests are transport-
  independent (an HTTP churn run and a direct churn run of the same
  seed produce byte-identical operation logs).
* :class:`ControllerService` — a stdlib-``asyncio`` HTTP/1.1 server
  (manual request framing: request line, headers, ``Content-Length``
  bodies, keep-alive) around one :class:`~repro.service.state
  .ControllerState`.  State methods are plain synchronous calls on the
  event-loop thread, so requests serialize naturally — the asyncio
  layer buys concurrent connection handling, not data races.

API (all bodies JSON):

====== ============================ ===========================================
Method Path                         Meaning
====== ============================ ===========================================
GET    ``/healthz``                 liveness probe
GET    ``/stats``                   service + admission + engine counters
GET    ``/topology``                switches, links, link state, epoch
GET    ``/audit``                   admission invariant violations (none = ok)
GET    ``/flows``                   list flows (``?tenant=`` filter)
GET    ``/flows/{id}``              one flow (route ID, residues, ingress view)
POST   ``/flows``                   provision: ``{tenant, src, dst[,
                                    bandwidth_mbps, max_latency_s, ttl]}``
POST   ``/flows/{id}/reroute``      detour: ``{switch, next}``
POST   ``/topology/events``         ``{kind: link_down|link_up|port_flap,
                                    a, b}``
DELETE ``/flows/{id}``              release the flow and its reservation
====== ============================ ===========================================

Errors are structured: ``{"error": <machine-readable reason>,
"message": <human text>}`` with 400 for malformed requests
(:class:`~repro.controller.provision.ProvisionError` reasons), 404 for
unknown flows/paths, 405 for bad methods, and 409 for admission
rejections (:class:`~repro.service.admission.AdmissionError` reasons).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.controller.provision import ProvisionError
from repro.service.admission import AdmissionError
from repro.service.state import ControllerState, UnknownFlowError
from repro.topology.graph import PortGraph

__all__ = ["dispatch", "ControllerService", "ServiceThread"]

#: Largest accepted request body; the API's bodies are tiny, so
#: anything bigger is a client bug, not a use case.
MAX_BODY_BYTES = 1 << 20

Response = Tuple[int, Dict[str, Any]]


def _error(status: int, reason: str, message: str) -> Response:
    return status, {"error": reason, "message": message}


def _provision_body(state: ControllerState, body: Dict[str, Any]) -> Response:
    for field in ("tenant", "src", "dst"):
        if not isinstance(body.get(field), str) or not body[field]:
            return _error(
                400, "bad-request", f"missing or non-string field {field!r}"
            )
    bandwidth = body.get("bandwidth_mbps", 0.0)
    latency = body.get("max_latency_s")
    ttl = body.get("ttl")
    if not isinstance(bandwidth, (int, float)) or isinstance(bandwidth, bool):
        return _error(400, "bad-request", "bandwidth_mbps must be a number")
    if latency is not None and (
        not isinstance(latency, (int, float)) or isinstance(latency, bool)
    ):
        return _error(400, "bad-request", "max_latency_s must be a number")
    if ttl is not None and (not isinstance(ttl, int) or ttl <= 0):
        return _error(400, "bad-request", "ttl must be a positive integer")
    record = state.provision(
        tenant=body["tenant"],
        src_edge=body["src"],
        dst_edge=body["dst"],
        bandwidth_mbps=float(bandwidth),
        max_latency_s=float(latency) if latency is not None else None,
        ttl=ttl,
    )
    return 201, {"flow": record.describe()}


def dispatch(
    state: ControllerState,
    method: str,
    path: str,
    query: Dict[str, str],
    body: Optional[Dict[str, Any]],
) -> Response:
    """Route one API operation; returns ``(status, JSON payload)``.

    Pure function of the call (modulo the state it mutates): no I/O,
    no clock, no randomness.  Both the HTTP layer and the direct
    transport call exactly this.
    """
    try:
        parts = [p for p in path.split("/") if p]
        if method == "GET":
            if parts == ["healthz"]:
                return 200, {"ok": True}
            if parts == ["stats"]:
                return 200, state.stats()
            if parts == ["topology"]:
                return 200, state.topology_view()
            if parts == ["audit"]:
                violations = state.audit()
                return 200, {"ok": not violations, "violations": violations}
            if parts == ["flows"]:
                records = state.list_flows(tenant=query.get("tenant"))
                return 200, {"flows": [r.describe() for r in records]}
            if len(parts) == 2 and parts[0] == "flows":
                return 200, {"flow": state.flow(parts[1]).describe()}
        elif method == "POST":
            if body is None:
                return _error(400, "bad-json", "request body is not JSON")
            if parts == ["flows"]:
                return _provision_body(state, body)
            if (
                len(parts) == 3
                and parts[0] == "flows"
                and parts[2] == "reroute"
            ):
                for field in ("switch", "next"):
                    if not isinstance(body.get(field), str):
                        return _error(
                            400, "bad-request",
                            f"missing or non-string field {field!r}",
                        )
                record = state.reroute(parts[1], body["switch"], body["next"])
                return 200, {"flow": record.describe()}
            if parts == ["topology", "events"]:
                for field in ("kind", "a", "b"):
                    if not isinstance(body.get(field), str):
                        return _error(
                            400, "bad-request",
                            f"missing or non-string field {field!r}",
                        )
                summary = state.topology_event(
                    body["kind"], body["a"], body["b"]
                )
                return 200, summary
        elif method == "DELETE":
            if len(parts) == 2 and parts[0] == "flows":
                record = state.release(parts[1])
                return 200, {"released": record.flow_id}
        else:
            return _error(405, "method-not-allowed", f"method {method}")
        return _error(404, "not-found", f"no route for {method} {path}")
    except AdmissionError as exc:
        return _error(409, exc.reason, str(exc))
    except UnknownFlowError as exc:
        return _error(404, "unknown-flow", str(exc))
    except ProvisionError as exc:
        return _error(400, exc.reason, str(exc))


class ControllerService:
    """Asyncio HTTP/1.1 server around one :class:`ControllerState`."""

    def __init__(self, state: ControllerState):
        self.state = state
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting; ``port=0`` picks an ephemeral port."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP framing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_request(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,  # shutdown cancels idle keep-alives
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # peer went away (or we are); nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
            ):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await reader.readline()
        if not request_line or request_line.strip() == b"":
            return False
        try:
            method, target, version = (
                request_line.decode("ascii").strip().split(" ", 2)
            )
        except (UnicodeDecodeError, ValueError):
            await self._respond(
                writer, 400,
                {"error": "bad-request", "message": "malformed request line"},
                close=True,
            )
            return False
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if b":" in line:
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            await self._respond(
                writer, 400,
                {"error": "bad-request", "message": "bad content length"},
                close=True,
            )
            return False
        raw = await reader.readexactly(length) if length else b""
        body: Optional[Dict[str, Any]] = None
        if raw:
            try:
                parsed = json.loads(raw.decode("utf-8"))
                body = parsed if isinstance(parsed, dict) else None
            except (UnicodeDecodeError, ValueError):
                body = None
        elif method == "POST":
            body = {}
        split = urlsplit(target)
        query = {
            key: values[0]
            for key, values in parse_qs(split.query).items()
        }
        status, payload = dispatch(
            self.state, method.upper(), split.path, query, body
        )
        self.requests_served += 1
        wants_close = (
            headers.get("connection", "").lower() == "close"
            or version == "HTTP/1.0"
        )
        await self._respond(writer, status, payload, close=wants_close)
        return not wants_close

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        close: bool,
    ) -> None:
        reasons = {
            200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
        }
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Response')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()


class ServiceThread:
    """A live service on a background thread, for tests and benches.

    Boots an event loop + :class:`ControllerService` on its own thread
    and blocks until the socket is bound; ``host``/``port`` are then
    ready for any client.  The state object stays accessible (all its
    mutations happen on the service thread; call :meth:`run_sync` to
    inspect it without racing the event loop).

    Usage::

        with ServiceThread(graph) as svc:
            client = ServiceClient(svc.host, svc.port)
            ...
    """

    def __init__(self, graph: PortGraph, host: str = "127.0.0.1",
                 validated_pool: bool = False):
        self.state = ControllerState(graph, validated_pool=validated_pool)
        self.service = ControllerService(self.state)
        self.host = host
        self.port: int = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="controller-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("controller service failed to start")

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.service.start(host=self.host))
            self.port = self.service.port
            self._started.set()
            loop.run_forever()
        finally:
            loop.run_until_complete(self.service.close())
            # Cancel connection handlers still parked on idle
            # keep-alive sockets so the loop closes quietly.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def run_sync(self, fn, *args: Any, **kwargs: Any) -> Any:
        """Run ``fn(state, ...)`` on the service thread and return it.

        The safe way to audit or read stats while HTTP traffic is in
        flight: the call serializes with request handling on the event
        loop instead of racing it from the test thread.
        """
        assert self._loop is not None

        async def call() -> Any:
            return fn(self.state, *args, **kwargs)

        future = asyncio.run_coroutine_threadsafe(call(), self._loop)
        return future.result(timeout=30)

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._loop = None
        self._thread = None

    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"
