"""The controller as a product: a long-running provisioning service.

Wraps :class:`~repro.controller.provision.ProvisioningEngine` behind an
HTTP/JSON API with multi-tenant flow lifecycle, QoS admission control
(per-link bandwidth reservations + CSPF), online topology events, and
observability — plus a farm-driven churn load generator that audits
every promise the service makes.  See ``docs/service.md``.
"""

from repro.service.admission import (
    AdmissionError,
    ReservationLedger,
    cspf_path,
    path_link_keys,
)
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.loadgen import ChurnReport, render_churn, run_churn
from repro.service.server import ControllerService, ServiceThread, dispatch
from repro.service.state import ControllerState, FlowRecord, UnknownFlowError
from repro.service.topology import (
    SERVICE_TOPOLOGIES,
    edge_names,
    service_topology,
)

__all__ = [
    "AdmissionError",
    "ReservationLedger",
    "cspf_path",
    "path_link_keys",
    "ServiceClient",
    "ServiceUnavailable",
    "ChurnReport",
    "render_churn",
    "run_churn",
    "ControllerService",
    "ServiceThread",
    "dispatch",
    "ControllerState",
    "FlowRecord",
    "UnknownFlowError",
    "SERVICE_TOPOLOGIES",
    "edge_names",
    "service_topology",
]
