"""Minimal keep-alive HTTP/JSON client for the controller service.

Stdlib sockets only, one persistent connection, blocking semantics —
exactly what the load generator's ``http`` transport and the CLI need.
Not a general HTTP client: it speaks the subset the service emits
(HTTP/1.1, ``Content-Length``-framed JSON bodies, keep-alive).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional, Tuple

__all__ = ["ServiceClient", "ServiceUnavailable"]


class ServiceUnavailable(ConnectionError):
    """The service socket could not be reached or died mid-request."""


class ServiceClient:
    """One persistent connection to a controller service."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                self._sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            except OSError as exc:
                raise ServiceUnavailable(
                    f"cannot connect to {self.host}:{self.port}: {exc}"
                ) from exc
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # request/response
    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round trip; returns ``(status, payload)``.

        Retries exactly once on a dead keep-alive socket (the server
        may have closed an idle connection between requests); any
        failure on a fresh connection raises :class:`ServiceUnavailable`.
        """
        try:
            return self._roundtrip(method, path, body)
        except (ServiceUnavailable, OSError):
            self.close()
        return self._roundtrip(method, path, body)

    def _roundtrip(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]],
    ) -> Tuple[int, Dict[str, Any]]:
        sock = self._connect()
        payload = (
            json.dumps(body, sort_keys=True).encode("utf-8")
            if body is not None
            else b""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"\r\n"
        ).encode("ascii")
        try:
            sock.sendall(head + payload)
            return self._read_response(sock)
        except OSError as exc:
            self.close()
            raise ServiceUnavailable(str(exc)) from exc

    def _read_response(
        self, sock: socket.socket
    ) -> Tuple[int, Dict[str, Any]]:
        reader = sock.makefile("rb")
        try:
            status_line = reader.readline()
            if not status_line:
                raise ServiceUnavailable("connection closed by service")
            parts = status_line.decode("ascii", "replace").split(" ", 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ServiceUnavailable(
                    f"malformed status line: {status_line!r}"
                )
            status = int(parts[1])
            length = 0
            close_after = False
            while True:
                line = reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                name = name.strip().lower()
                if name == "content-length":
                    length = int(value.strip())
                elif name == "connection" and value.strip().lower() == "close":
                    close_after = True
            raw = reader.read(length) if length else b""
            if close_after:
                self.close()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError as exc:
                raise ServiceUnavailable(
                    f"non-JSON response body: {raw[:200]!r}"
                ) from exc
            return status, decoded if isinstance(decoded, dict) else {}
        finally:
            reader.close()

    # ------------------------------------------------------------------
    # convenience verbs
    # ------------------------------------------------------------------
    def get(self, path: str) -> Tuple[int, Dict[str, Any]]:
        return self.request("GET", path)

    def post(
        self, path: str, body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        return self.request("POST", path, body)

    def delete(self, path: str) -> Tuple[int, Dict[str, Any]]:
        return self.request("DELETE", path)
