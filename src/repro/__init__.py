"""KAR (Key-for-Any-Route) — a resilient source-routing system.

Reproduction of Gomes et al., *"KAR: Key-for-Any-Route, a Resilient
Routing System"* (DSN Workshops 2016).

The top-level namespace re-exports the pieces most users need:

* the RNS route encoder (:class:`RouteEncoder`, :class:`Hop`),
* the paper's scenarios (:func:`six_node`, :func:`fifteen_node`,
  :func:`rnp28`, :func:`redundant_path`),
* the simulation facade (:class:`KarSimulation`),
* deflection technique names (``"none"``, ``"hp"``, ``"avp"``,
  ``"nip"``) and protection levels (:data:`UNPROTECTED`,
  :data:`PARTIAL`, :data:`FULL`).
"""

from repro.controller import KarController, ProtectionPlanner, assign_switch_ids
from repro.rns import (
    EncodedRoute,
    Hop,
    RouteEncoder,
    bit_length_for_switches,
    crt,
    route_id_bit_length,
)
from repro.runner import KarSimulation
from repro.switches import STRATEGY_NAMES, strategy_by_name
from repro.topology import (
    FULL,
    PARTIAL,
    UNPROTECTED,
    PortGraph,
    ProtectionSegment,
    Scenario,
    fifteen_node,
    redundant_path,
    rnp28,
    six_node,
)
from repro.transport import IperfFlow, IperfResult

__version__ = "1.0.0"

__all__ = [
    "KarSimulation",
    "KarController",
    "ProtectionPlanner",
    "assign_switch_ids",
    "RouteEncoder",
    "EncodedRoute",
    "Hop",
    "crt",
    "route_id_bit_length",
    "bit_length_for_switches",
    "Scenario",
    "ProtectionSegment",
    "PortGraph",
    "six_node",
    "fifteen_node",
    "rnp28",
    "redundant_path",
    "UNPROTECTED",
    "PARTIAL",
    "FULL",
    "STRATEGY_NAMES",
    "strategy_by_name",
    "IperfFlow",
    "IperfResult",
    "__version__",
]
