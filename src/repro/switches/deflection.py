"""The paper's three deflection techniques, plus the no-deflection baseline.

A deflection strategy answers one question per packet: *given the
modulo-computed output port, which port does the switch actually use?*
(Section 2.1 of the paper).

* :class:`NoDeflection` — drop when the computed port is unusable (what
  a plain KeyFlow switch would do; the paper's "no deflection" curve).
* :class:`HotPotato` (HP) — once a packet has been deflected anywhere,
  it random-walks: every subsequent switch picks a uniformly random
  healthy port.  The paper's lower-bound reference.
* :class:`AnyValidPort` (AVP) — always trust the modulo result when it
  is a valid, healthy port (even the input port); otherwise pick a
  uniformly random healthy port, input port included.
* :class:`NotInputPort` (NIP, Algorithm 1) — like AVP but the input
  port is never used, neither as computed nor as random choice; this
  kills two-node ping-pong loops.

Strategies are stateless; randomness comes from the switch's named RNG
stream so runs are reproducible and techniques are comparable on
matched seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.sim.packet import Packet

__all__ = [
    "PortView",
    "Decision",
    "DeflectionStrategy",
    "NoDeflection",
    "HotPotato",
    "AnyValidPort",
    "NotInputPort",
    "strategy_by_name",
    "STRATEGY_NAMES",
]


class PortView(Protocol):
    """The slice of a switch a strategy may look at."""

    @property
    def num_ports(self) -> int: ...

    def port_up(self, port: int) -> bool: ...

    def healthy_ports(self) -> List[int]: ...


@dataclass(frozen=True)
class Decision:
    """A strategy's verdict for one packet.

    Attributes:
        port: the output port, or None to drop.
        deflected: True when the choice departed from the computed port
            (the switch then sets the packet's deflected flag).
    """

    port: Optional[int]
    deflected: bool = False

    @classmethod
    def drop(cls) -> "Decision":
        return cls(port=None)


class DeflectionStrategy:
    """Base class; subclasses implement :meth:`select_port`."""

    #: short name used in configs, reports and benchmark tables.
    name = "abstract"

    def select_port(
        self,
        switch: PortView,
        packet: Packet,
        in_port: int,
        computed_port: int,
        rng: random.Random,
    ) -> Decision:
        raise NotImplementedError

    @staticmethod
    def _computed_usable(switch: PortView, computed_port: int) -> bool:
        return computed_port < switch.num_ports and switch.port_up(computed_port)

    @staticmethod
    def _random_from(candidates: Sequence[int], rng: random.Random) -> Decision:
        if not candidates:
            return Decision.drop()
        return Decision(port=rng.choice(list(candidates)), deflected=True)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} ({self.name})>"


class NoDeflection(DeflectionStrategy):
    """Forward on the computed port or drop — no failure reaction."""

    name = "none"

    def select_port(self, switch, packet, in_port, computed_port, rng):
        if self._computed_usable(switch, computed_port):
            return Decision(port=computed_port)
        return Decision.drop()


class HotPotato(DeflectionStrategy):
    """HP: after the first deflection the packet random-walks forever."""

    name = "hp"

    def select_port(self, switch, packet, in_port, computed_port, rng):
        if packet.kar is not None and packet.kar.deflected:
            # "it follows a complete random path in network"
            return self._random_from(switch.healthy_ports(), rng)
        if self._computed_usable(switch, computed_port):
            return Decision(port=computed_port)
        return self._random_from(switch.healthy_ports(), rng)


class AnyValidPort(DeflectionStrategy):
    """AVP: modulo result when usable, else a random healthy port."""

    name = "avp"

    def select_port(self, switch, packet, in_port, computed_port, rng):
        if self._computed_usable(switch, computed_port):
            return Decision(port=computed_port)
        return self._random_from(switch.healthy_ports(), rng)


class NotInputPort(DeflectionStrategy):
    """NIP (Algorithm 1): AVP, but never send a packet back where it came.

    The computed port is rejected when it equals the input port, and the
    input port is excluded from the random fallback set.
    """

    name = "nip"

    def select_port(self, switch, packet, in_port, computed_port, rng):
        if (
            self._computed_usable(switch, computed_port)
            and computed_port != in_port
        ):
            return Decision(port=computed_port)
        candidates = [p for p in switch.healthy_ports() if p != in_port]
        return self._random_from(candidates, rng)


_REGISTRY = {
    cls.name: cls
    for cls in (NoDeflection, HotPotato, AnyValidPort, NotInputPort)
}

#: Names accepted by :func:`strategy_by_name`, in paper order.
STRATEGY_NAMES: Tuple[str, ...] = ("none", "hp", "avp", "nip")


def strategy_by_name(name: str) -> DeflectionStrategy:
    """Instantiate a strategy from its short name ('none'/'hp'/'avp'/'nip')."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown deflection strategy {name!r}; "
            f"choose from {sorted(_REGISTRY)}"
        ) from None
