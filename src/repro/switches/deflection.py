"""The paper's three deflection techniques, plus the no-deflection baseline.

A deflection strategy answers one question per packet: *given the
modulo-computed output port, which port does the switch actually use?*
(Section 2.1 of the paper).

* :class:`NoDeflection` — drop when the computed port is unusable (what
  a plain KeyFlow switch would do; the paper's "no deflection" curve).
* :class:`HotPotato` (HP) — once a packet has been deflected anywhere,
  it random-walks: every subsequent switch picks a uniformly random
  healthy port.  The paper's lower-bound reference.
* :class:`AnyValidPort` (AVP) — always trust the modulo result when it
  is a valid, healthy port (even the input port); otherwise pick a
  uniformly random healthy port, input port included.
* :class:`NotInputPort` (NIP, Algorithm 1) — like AVP but the input
  port is never used, neither as computed nor as random choice; this
  kills two-node ping-pong loops.

Strategies are stateless; randomness comes from the switch's named RNG
stream so runs are reproducible and techniques are comparable on
matched seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, Tuple

from repro.sim.packet import Packet

__all__ = [
    "PortView",
    "Decision",
    "DeflectionStrategy",
    "NoDeflection",
    "HotPotato",
    "AnyValidPort",
    "NotInputPort",
    "strategy_by_name",
    "STRATEGY_NAMES",
]


def _randbelow_matches_choice() -> bool:
    """Import-time probe: is ``seq[rng._randbelow(len(seq))]`` the exact
    draw ``rng.choice(seq)`` would make?

    ``_randbelow`` is a private CPython detail — alternative
    ``random.Random`` implementations may not have it, and nothing
    guarantees ``choice()`` keeps delegating to it.  The fast path may
    only index through it when this probe confirms both the values and
    the stream positions agree; otherwise every caller falls back to
    the reference ``choice(list(...))`` form.
    """
    try:
        a = random.Random(0x5EED)
        b = random.Random(0x5EED)
        seq = tuple(range(1, 8))
        for _ in range(16):
            if seq[a._randbelow(len(seq))] != b.choice(list(seq)):
                return False
        return a.getstate() == b.getstate()
    except Exception:
        return False


#: True when indexing via ``rng._randbelow`` is provably equivalent to
#: ``rng.choice`` on this interpreter (always the case on CPython).
_RANDBELOW_IS_CHOICE = _randbelow_matches_choice()


class PortView(Protocol):
    """The slice of a switch a strategy may look at."""

    @property
    def num_ports(self) -> int: ...

    def port_up(self, port: int) -> bool: ...

    def healthy_ports(self) -> Sequence[int]: ...


@dataclass(frozen=True, slots=True)
class Decision:
    """A strategy's verdict for one packet.

    Attributes:
        port: the output port, or None to drop.
        deflected: True when the choice departed from the computed port
            (the switch then sets the packet's deflected flag).
    """

    port: Optional[int]
    deflected: bool = False

    @classmethod
    def drop(cls) -> "Decision":
        return cls(port=None)


class DeflectionStrategy:
    """Base class; subclasses implement :meth:`select_port`.

    :meth:`select_port` is the **reference path**: one call, one
    :class:`Decision`.  The fast datapath splits the same semantics in
    two so the steady state allocates nothing:

    * :meth:`fast_port` — the happy path: return the output port when
      the packet forwards on the computed port *without* deflection
      (no ``Decision``, no RNG), or None to fall back;
    * :meth:`fast_fallback` — the slow path, returning a plain
      ``(port, deflected)`` pair (``port`` None to drop) with
      **exactly** the RNG draws :meth:`select_port` would make.  A
      tuple, not a ``Decision``: HP random-walks take this path on
      almost every hop, so even the slotted dataclass (whose frozen
      ``__init__`` costs two ``object.__setattr__`` calls) showed up
      in profiles.

    The defaults make any custom strategy correct automatically (always
    fall back to ``select_port``); the built-ins override both.  The
    equivalence contract — same ports, same deflected flags, same RNG
    stream consumption — is enforced by the fast-path equivalence test
    suite.
    """

    #: short name used in configs, reports and benchmark tables.
    name = "abstract"

    def select_port(
        self,
        switch: PortView,
        packet: Packet,
        in_port: int,
        computed_port: int,
        rng: random.Random,
    ) -> Decision:
        raise NotImplementedError

    def fast_port(
        self,
        switch: PortView,
        packet: Packet,
        in_port: int,
        computed_port: int,
    ) -> Optional[int]:
        """Happy path: the non-deflected output port, or None to fall back."""
        return None

    def fast_fallback(
        self,
        switch: PortView,
        packet: Packet,
        in_port: int,
        computed_port: int,
        rng: random.Random,
    ) -> Tuple[Optional[int], bool]:
        """Slow path after a :meth:`fast_port` miss; RNG-identical to
        :meth:`select_port`.  Returns ``(port, deflected)``."""
        decision = self.select_port(switch, packet, in_port, computed_port, rng)
        return decision.port, decision.deflected

    @staticmethod
    def _computed_usable(switch: PortView, computed_port: int) -> bool:
        return computed_port < switch.num_ports and switch.port_up(computed_port)

    @staticmethod
    def _random_from(candidates: Sequence[int], rng: random.Random) -> Decision:
        if not candidates:
            return Decision.drop()
        return Decision(port=rng.choice(list(candidates)), deflected=True)

    @staticmethod
    def _random_from_seq(
        candidates: Sequence[int], rng: random.Random
    ) -> Tuple[Optional[int], bool]:
        # Copy-free twin of _random_from: on CPython random.choice(seq)
        # is exactly seq[rng._randbelow(len(seq))], so indexing directly
        # makes the same draw (same RNG stream position) for a cached
        # tuple as choice() makes for a fresh list copy of the same
        # ports.  The indexing shortcut is gated on the import-time
        # equivalence probe AND on the rng actually exposing the private
        # API, so alternative Random implementations/subclasses get the
        # reference choice(list(...)) semantics instead of an
        # AttributeError.
        if not candidates:
            return None, False
        if _RANDBELOW_IS_CHOICE:
            randbelow = getattr(rng, "_randbelow", None)
            if randbelow is not None:
                return candidates[randbelow(len(candidates))], True
        return rng.choice(list(candidates)), True

    def __repr__(self) -> str:
        return f"<{type(self).__name__} ({self.name})>"


class NoDeflection(DeflectionStrategy):
    """Forward on the computed port or drop — no failure reaction."""

    name = "none"

    def select_port(self, switch, packet, in_port, computed_port, rng):
        if self._computed_usable(switch, computed_port):
            return Decision(port=computed_port)
        return Decision.drop()

    def fast_port(self, switch, packet, in_port, computed_port):
        # Membership in the cached healthy tuple is exactly the
        # "exists, cabled, up" predicate — no port_up property chain.
        if computed_port in switch.healthy_ports():
            return computed_port
        return None


class HotPotato(DeflectionStrategy):
    """HP: after the first deflection the packet random-walks forever."""

    name = "hp"

    def select_port(self, switch, packet, in_port, computed_port, rng):
        if packet.kar is not None and packet.kar.deflected:
            # "it follows a complete random path in network"
            return self._random_from(switch.healthy_ports(), rng)
        if self._computed_usable(switch, computed_port):
            return Decision(port=computed_port)
        return self._random_from(switch.healthy_ports(), rng)

    def fast_port(self, switch, packet, in_port, computed_port):
        kar = packet.kar
        if kar is not None and kar.deflected:
            return None  # random walk: needs the RNG
        if computed_port in switch.healthy_ports():
            return computed_port
        return None

    def fast_fallback(self, switch, packet, in_port, computed_port, rng):
        return self._random_from_seq(switch.healthy_ports(), rng)


class AnyValidPort(DeflectionStrategy):
    """AVP: modulo result when usable, else a random healthy port."""

    name = "avp"

    def select_port(self, switch, packet, in_port, computed_port, rng):
        if self._computed_usable(switch, computed_port):
            return Decision(port=computed_port)
        return self._random_from(switch.healthy_ports(), rng)

    def fast_port(self, switch, packet, in_port, computed_port):
        if computed_port in switch.healthy_ports():
            return computed_port
        return None

    def fast_fallback(self, switch, packet, in_port, computed_port, rng):
        return self._random_from_seq(switch.healthy_ports(), rng)


class NotInputPort(DeflectionStrategy):
    """NIP (Algorithm 1): AVP, but never send a packet back where it came.

    The computed port is rejected when it equals the input port, and the
    input port is excluded from the random fallback set.
    """

    name = "nip"

    def select_port(self, switch, packet, in_port, computed_port, rng):
        if (
            self._computed_usable(switch, computed_port)
            and computed_port != in_port
        ):
            return Decision(port=computed_port)
        candidates = [p for p in switch.healthy_ports() if p != in_port]
        return self._random_from(candidates, rng)

    def fast_port(self, switch, packet, in_port, computed_port):
        if (
            computed_port != in_port
            and computed_port in switch.healthy_ports()
        ):
            return computed_port
        return None

    def fast_fallback(self, switch, packet, in_port, computed_port, rng):
        candidates = [p for p in switch.healthy_ports() if p != in_port]
        return self._random_from_seq(candidates, rng)


_REGISTRY = {
    cls.name: cls
    for cls in (NoDeflection, HotPotato, AnyValidPort, NotInputPort)
}

#: Names accepted by :func:`strategy_by_name`, in paper order.
STRATEGY_NAMES: Tuple[str, ...] = ("none", "hp", "avp", "nip")


def strategy_by_name(name: str) -> DeflectionStrategy:
    """Instantiate a strategy from its short name ('none'/'hp'/'avp'/'nip')."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown deflection strategy {name!r}; "
            f"choose from {sorted(_REGISTRY)}"
        ) from None
