"""The KAR core switch.

A core switch is deliberately tiny (the paper's whole point): it has no
forwarding table and no per-flow state.  Per packet it

1. checks/decrements the KAR TTL,
2. computes ``route_id mod switch_id`` (Eq. 3),
3. lets the configured deflection strategy turn that into an actual
   output port (or a drop),
4. flags the packet as deflected when the strategy departed from the
   computed port, and transmits.

Failure awareness is local only: the switch sees port carrier state
(``port_up``), never the topology.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.fastpath import fastpath_enabled
from repro.sim.invariants import InvariantChecker
from repro.sim.node import Node
from repro.sim.packet import Packet
from repro.sim.trace import PacketTracer
from repro.switches.deflection import DeflectionStrategy

__all__ = ["KarSwitch", "RESIDUE_CACHE_SIZE"]

#: Bound on the per-switch residue cache (distinct route IDs seen).  A
#: switch on a steady path sees a handful of route IDs; the bound only
#: matters under heavy re-encode churn, where a full cache is simply
#: cleared (the next packet repopulates it).
RESIDUE_CACHE_SIZE = 256


class KarSwitch(Node):
    """A stateless KAR core switch.

    Args:
        name: node name (e.g. ``"SW13"``).
        sim: event engine.
        num_ports: number of ports (topology degree).
        switch_id: the KAR modulo; must exceed ``num_ports - 1``.
        strategy: deflection technique (HP/AVP/NIP/none).
        rng: this switch's private random stream (deflection choices).
        tracer: optional packet tracer.
        decode: optional encoding-backend decode ``(route_id, switch_id)
            -> port`` (e.g. the XSR carry-less remainder).  ``None``
            keeps the default integer ``route_id % switch_id`` datapath
            byte-identical to PR 3's — the hook costs one ``is None``
            test on the residue-cache miss path only.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        num_ports: int,
        switch_id: int,
        strategy: DeflectionStrategy,
        rng: random.Random,
        tracer: Optional[PacketTracer] = None,
        invariants: Optional[InvariantChecker] = None,
        decode: Optional[Callable[[int, int], int]] = None,
    ):
        super().__init__(name, sim, num_ports)
        if switch_id <= num_ports - 1:
            raise ValueError(
                f"{name}: switch ID {switch_id} cannot address "
                f"{num_ports} ports"
            )
        self.switch_id = switch_id
        self.strategy = strategy
        self._decode = decode
        self._rng = rng
        self.tracer = tracer
        self.invariants = invariants
        # Local counters (cheap; kept even without a tracer).
        self.forwarded = 0
        self.deflections = 0
        self.drops = 0
        # Fast path (snapshotted at build time, see repro.sim.fastpath):
        # residues of recently seen route IDs, keyed by id() of the
        # route-ID int.  Packets of a flow share the one int object
        # installed in the edge's ingress entry, so the key is stable —
        # and the cached entry holds a strong reference to that object,
        # so a key can never be silently reused while it is in the
        # cache.  Values are (route_id, residue) pairs; a hit requires
        # the stored object to be identical (`is`) to the packet's.
        self._fastpath = fastpath_enabled()
        self._residue_cache: dict = {}
        self.residue_hits = 0
        self.residue_misses = 0
        # Bound once: the strategy dispatch is per-hop.
        self._fast_port = strategy.fast_port
        self._fast_fallback = strategy.fast_fallback

    def receive(self, packet: Packet, in_port: int) -> None:
        kar = packet.kar
        if kar is None:
            self._drop(packet, "no-kar-header")
            return
        if kar.ttl <= 0:
            self._drop(packet, "ttl-expired")
            return
        kar.ttl -= 1
        packet.hops += 1

        sid = self.switch_id
        if self._fastpath:
            # Residue lookup: encode-time hint, then per-switch cache,
            # then the big-int modulo (each step exact, so the result
            # is bit-identical to the reference path's `R mod s`).
            computed = None
            residues = kar.residues
            if residues is not None:
                computed = residues.get(sid)
            if computed is None:
                rid = kar.route_id
                cached = self._residue_cache.get(id(rid))
                if cached is not None and cached[0] is rid:
                    computed = cached[1]
                    self.residue_hits += 1
                else:
                    if self._decode is None:
                        computed = rid % sid
                    else:
                        computed = self._decode(rid, sid)
                    cache = self._residue_cache
                    if len(cache) >= RESIDUE_CACHE_SIZE:
                        cache.clear()
                    cache[id(rid)] = (rid, computed)
                    self.residue_misses += 1
            port = self._fast_port(self, packet, in_port, computed)
            if port is not None:
                # Allocation-free happy path: forward on the computed
                # port, not deflected.
                self.forwarded += 1
                if self.invariants is not None:
                    self.invariants.on_switch_forward(
                        self.sim.now, self, packet, in_port, port
                    )
                if self.tracer is not None:
                    self.tracer.on_forward(
                        self.sim.now, self.name, packet, in_port, port, False
                    )
                self.send(port, packet)
                return
            out_port, deflected = self._fast_fallback(
                self, packet, in_port, computed, self._rng
            )
        else:
            if self._decode is None:
                computed = kar.route_id % sid
            else:
                computed = self._decode(kar.route_id, sid)
            decision = self.strategy.select_port(
                self, packet, in_port, computed, self._rng
            )
            out_port, deflected = decision.port, decision.deflected
        if out_port is None:
            self._drop(packet, f"no-usable-port({self.strategy.name})")
            return
        if deflected:
            kar.deflected = True
            self.deflections += 1
        self.forwarded += 1
        if self.invariants is not None:
            # Decision and transmission are one atomic event, so the
            # checker sees exactly the port state the strategy saw.
            self.invariants.on_switch_forward(
                self.sim.now, self, packet, in_port, out_port
            )
        if self.tracer is not None:
            self.tracer.on_forward(
                self.sim.now, self.name, packet, in_port,
                out_port, deflected,
            )
        self.send(out_port, packet)

    def _drop(self, packet: Packet, reason: str) -> None:
        self.drops += 1
        if self.tracer is not None:
            self.tracer.on_drop(self.sim.now, self.name, packet, reason)
        if self.invariants is not None:
            self.invariants.on_drop(self.sim.now, self.name, packet, reason)
