"""The KAR core switch.

A core switch is deliberately tiny (the paper's whole point): it has no
forwarding table and no per-flow state.  Per packet it

1. checks/decrements the KAR TTL,
2. computes ``route_id mod switch_id`` (Eq. 3),
3. lets the configured deflection strategy turn that into an actual
   output port (or a drop),
4. flags the packet as deflected when the strategy departed from the
   computed port, and transmits.

Failure awareness is local only: the switch sees port carrier state
(``port_up``), never the topology.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.invariants import InvariantChecker
from repro.sim.node import Node
from repro.sim.packet import Packet
from repro.sim.trace import PacketTracer
from repro.switches.deflection import DeflectionStrategy

__all__ = ["KarSwitch"]


class KarSwitch(Node):
    """A stateless KAR core switch.

    Args:
        name: node name (e.g. ``"SW13"``).
        sim: event engine.
        num_ports: number of ports (topology degree).
        switch_id: the KAR modulo; must exceed ``num_ports - 1``.
        strategy: deflection technique (HP/AVP/NIP/none).
        rng: this switch's private random stream (deflection choices).
        tracer: optional packet tracer.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        num_ports: int,
        switch_id: int,
        strategy: DeflectionStrategy,
        rng: random.Random,
        tracer: Optional[PacketTracer] = None,
        invariants: Optional[InvariantChecker] = None,
    ):
        super().__init__(name, sim, num_ports)
        if switch_id <= num_ports - 1:
            raise ValueError(
                f"{name}: switch ID {switch_id} cannot address "
                f"{num_ports} ports"
            )
        self.switch_id = switch_id
        self.strategy = strategy
        self._rng = rng
        self.tracer = tracer
        self.invariants = invariants
        # Local counters (cheap; kept even without a tracer).
        self.forwarded = 0
        self.deflections = 0
        self.drops = 0

    def receive(self, packet: Packet, in_port: int) -> None:
        if packet.kar is None:
            self._drop(packet, "no-kar-header")
            return
        if packet.kar.ttl <= 0:
            self._drop(packet, "ttl-expired")
            return
        packet.kar.ttl -= 1
        packet.hops += 1

        computed = packet.kar.route_id % self.switch_id
        decision = self.strategy.select_port(
            self, packet, in_port, computed, self._rng
        )
        if decision.port is None:
            self._drop(packet, f"no-usable-port({self.strategy.name})")
            return
        if decision.deflected:
            packet.kar.deflected = True
            self.deflections += 1
        self.forwarded += 1
        if self.invariants is not None:
            # Decision and transmission are one atomic event, so the
            # checker sees exactly the port state the strategy saw.
            self.invariants.on_switch_forward(
                self.sim.now, self, packet, in_port, decision.port
            )
        if self.tracer is not None:
            self.tracer.on_forward(
                self.sim.now, self.name, packet, in_port,
                decision.port, decision.deflected,
            )
        self.send(decision.port, packet)

    def _drop(self, packet: Packet, reason: str) -> None:
        self.drops += 1
        if self.tracer is not None:
            self.tracer.on_drop(self.sim.now, self.name, packet, reason)
        if self.invariants is not None:
            self.invariants.on_drop(self.sim.now, self.name, packet, reason)
