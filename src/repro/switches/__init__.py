"""KAR dataplane: core switches, edge nodes, deflection techniques."""

from repro.switches.core import KarSwitch
from repro.switches.deflection import (
    STRATEGY_NAMES,
    AnyValidPort,
    Decision,
    DeflectionStrategy,
    HotPotato,
    NoDeflection,
    NotInputPort,
    strategy_by_name,
)
from repro.switches.edge import EdgeNode, IngressEntry, ReencodeService

__all__ = [
    "KarSwitch",
    "EdgeNode",
    "IngressEntry",
    "ReencodeService",
    "DeflectionStrategy",
    "Decision",
    "NoDeflection",
    "HotPotato",
    "AnyValidPort",
    "NotInputPort",
    "strategy_by_name",
    "STRATEGY_NAMES",
]
