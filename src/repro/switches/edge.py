"""KAR edge nodes.

Edge nodes are where all the per-flow intelligence lives (the paper's
edge/core split):

* **ingress** — packets arriving from an attached host get the KAR
  header (route ID computed by the controller) and enter the core;
* **egress** — packets arriving from the core for a served host get the
  header stripped and are delivered;
* **misdelivery** — a deflected packet can surface at an edge that does
  not serve its destination.  The paper evaluates the second of its two
  options: the edge asks the controller for a fresh route ID from here
  to the destination and re-injects the packet (after a control-plane
  round-trip worth of delay).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Protocol

from repro.sim.engine import Simulator
from repro.sim.invariants import InvariantChecker
from repro.sim.node import Node
from repro.sim.packet import KarHeader, Packet
from repro.sim.trace import PacketTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: repro.controller.controller imports
    # this module, so a module-level import here would be circular.
    from repro.controller.retry import RetryPolicy

__all__ = ["EdgeNode", "IngressEntry", "ReencodeService"]


@dataclass(frozen=True)
class IngressEntry:
    """Forwarding state for one destination host at one edge.

    Attributes:
        route_id / modulus: the encoded route (modulus kept for header-
            size accounting only).
        out_port: this edge's port toward the route's first core switch.
        ttl: initial hop budget for packets on this route.
        residues: optional encode-time residue hint
            (``switch_id -> route_id % switch_id`` for every encoded
            switch), stamped into each packet's KAR header so core
            switches on the primary path skip the big-int modulo.
            Emulator-local; not part of the on-wire header.
    """

    route_id: int
    modulus: int
    out_port: int
    ttl: int = 64
    residues: Optional[Mapping[int, int]] = None


class ReencodeService(Protocol):
    """What an edge needs from the controller: route IDs on demand."""

    def reencode(self, edge_name: str, dst_host: str) -> Optional[IngressEntry]:
        """Route from *edge_name* to *dst_host*, or None if unknown."""
        ...

    @property
    def control_rtt_s(self) -> float:
        """One control-plane round-trip, in seconds."""
        ...

    @property
    def reachable(self) -> bool:
        """Whether the service currently answers (chaos may say no)."""
        ...


#: Misdelivery policies (Section 2.1 of the paper describes both): the
#: edge either bounces the stray packet back unchanged, or asks the
#: controller for a fresh route ID ("In all our tests, we considered
#: this second approach" — our default too).
BOUNCE = "bounce"
REENCODE = "reencode"
MISDELIVERY_POLICIES = (BOUNCE, REENCODE)


class EdgeNode(Node):
    """An edge node serving a set of directly attached hosts."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        num_ports: int,
        tracer: Optional[PacketTracer] = None,
        misdelivery_policy: str = REENCODE,
        retry_policy: Optional["RetryPolicy"] = None,
        rng: Optional[random.Random] = None,
        invariants: Optional[InvariantChecker] = None,
    ):
        super().__init__(name, sim, num_ports)
        if misdelivery_policy not in MISDELIVERY_POLICIES:
            raise ValueError(
                f"unknown misdelivery policy {misdelivery_policy!r}; "
                f"choose from {MISDELIVERY_POLICIES}"
            )
        if retry_policy is None:
            from repro.controller.retry import DEFAULT_RETRY_POLICY

            retry_policy = DEFAULT_RETRY_POLICY
        self.tracer = tracer
        self.misdelivery_policy = misdelivery_policy
        self.retry_policy = retry_policy
        self.invariants = invariants
        self._rng = rng if rng is not None else random.Random(0)
        self._host_ports: Dict[str, int] = {}
        self._ingress: Dict[str, IngressEntry] = {}
        self._controller: Optional[ReencodeService] = None
        # Counters.
        self.encapsulated = 0
        self.delivered = 0
        self.reencode_requests = 0
        self.reencode_timeouts = 0
        self.reencode_retries = 0
        self.reencode_giveups = 0
        self.bounces = 0
        self.drops = 0

    # -- provisioning (done by the network builder / controller) --------
    def serve_host(self, host_name: str, port: int) -> None:
        """Declare that *host_name* hangs off local *port*."""
        self._host_ports[host_name] = port

    def install_ingress(self, dst_host: str, entry: IngressEntry) -> None:
        """Install (or replace) the route-ID entry for *dst_host*."""
        self._ingress[dst_host] = entry

    def ingress_entry(self, dst_host: str) -> Optional[IngressEntry]:
        return self._ingress.get(dst_host)

    def set_controller(self, controller: ReencodeService) -> None:
        self._controller = controller

    def serves(self, host_name: str) -> bool:
        return host_name in self._host_ports

    # -- datapath --------------------------------------------------------
    def receive(self, packet: Packet, in_port: int) -> None:
        if in_port == self._host_ports.get(packet.src_host) and packet.kar is None:
            self._ingress_packet(packet)
        else:
            self._core_packet(packet)

    def _ingress_packet(self, packet: Packet) -> None:
        entry = self._ingress.get(packet.dst_host)
        if entry is None:
            self._drop(packet, "no-ingress-route")
            return
        packet.kar = KarHeader(
            route_id=entry.route_id, modulus=entry.modulus, ttl=entry.ttl,
            residues=entry.residues,
        )
        self.encapsulated += 1
        if self.invariants is not None:
            self.invariants.on_encapsulate(self.sim.now, self.name, packet)
        self.send(entry.out_port, packet)

    def _core_packet(self, packet: Packet) -> None:
        host_port = self._host_ports.get(packet.dst_host)
        if host_port is not None:
            # Egress: strip the KAR header, deliver to the host.
            packet.kar = None
            self.delivered += 1
            if self.tracer is not None:
                self.tracer.on_deliver(self.sim.now, packet.dst_host, packet)
            if self.invariants is not None:
                self.invariants.on_deliver(self.sim.now, self.name, packet)
            self.send(host_port, packet)
            return
        self._misdelivered(packet)

    def _misdelivered(self, packet: Packet) -> None:
        """A deflected packet surfaced at the wrong edge.

        Under the default REENCODE policy (the paper's evaluated
        approach) the controller recomputes the route ID "based on the
        best path from the edge node to the destination" and the packet
        re-enters the core after one control RTT.  Under BOUNCE (the
        paper's first option) the edge "directly returns the packet to
        the network without any change" — zero latency, but the stale
        route ID means the packet resumes wandering.

        The re-encode RPC can fail: an unreachable controller never
        answers, so the request times out and the edge retries with
        exponential backoff + jitter per its :class:`RetryPolicy`,
        finally dropping with reason ``reencode-unreachable``.
        """
        if self.misdelivery_policy == BOUNCE:
            self._bounce(packet)
            return
        if self._controller is None:
            self._drop(packet, "misdelivered-no-controller")
            return
        self._reencode_attempt(packet, attempt=1)

    def _reencode_attempt(self, packet: Packet, attempt: int) -> None:
        """Issue re-encode request number *attempt* for *packet*."""
        ctrl = self._controller
        assert ctrl is not None
        self.reencode_requests += 1
        if getattr(ctrl, "reachable", True):
            # The request will be answered one control RTT from now.
            entry = ctrl.reencode(self.name, packet.dst_host)
            if entry is None:
                self._drop(packet, "misdelivered-no-route")
                return
            self.sim.schedule(ctrl.control_rtt_s, self._reinject, packet, entry)
            return
        # No answer is coming; the timeout fires, then we back off.
        self.sim.schedule(
            self.retry_policy.timeout_s, self._reencode_timed_out,
            packet, attempt,
        )

    def _reencode_timed_out(self, packet: Packet, attempt: int) -> None:
        self.reencode_timeouts += 1
        if attempt >= self.retry_policy.max_attempts:
            self.reencode_giveups += 1
            self._drop(packet, "reencode-unreachable")
            return
        self.reencode_retries += 1
        self.sim.schedule(
            self.retry_policy.backoff_s(attempt, self._rng),
            self._reencode_attempt, packet, attempt + 1,
        )

    def _bounce(self, packet: Packet) -> None:
        """Return a stray packet to the core unchanged (BOUNCE policy).

        The packet leaves on this edge's first healthy core-facing port;
        its TTL (still decremented by every switch) bounds the total
        excursion as usual.
        """
        if packet.kar is None or packet.kar.ttl <= 0:
            self._drop(packet, "ttl-expired")
            return
        for port in self.healthy_ports():
            if self._host_ports and port in self._host_ports.values():
                continue
            self.bounces += 1
            if self.invariants is not None:
                self.invariants.on_reencode(self.sim.now, self.name, packet)
            self.send(port, packet)
            return
        self._drop(packet, "bounce-no-port")

    def _reinject(self, packet: Packet, entry: IngressEntry) -> None:
        if packet.kar is None or packet.kar.ttl <= 0:
            self._drop(packet, "ttl-expired")
            return
        # Fresh route, fresh deflected flag; TTL carries over so a packet
        # cannot bounce between edges forever.
        packet.kar = KarHeader(
            route_id=entry.route_id,
            modulus=entry.modulus,
            ttl=packet.kar.ttl,
            residues=entry.residues,
        )
        if self.invariants is not None:
            self.invariants.on_reencode(self.sim.now, self.name, packet)
        self.send(entry.out_port, packet)

    def _drop(self, packet: Packet, reason: str) -> None:
        self.drops += 1
        if self.tracer is not None:
            self.tracer.on_drop(self.sim.now, self.name, packet, reason)
        if self.invariants is not None:
            self.invariants.on_drop(self.sim.now, self.name, packet, reason)
