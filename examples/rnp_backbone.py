#!/usr/bin/env python
"""Section 3.2's national-backbone scenario plus static coverage analysis.

Walks the RNP reconstruction (28 PoPs / 40 links), prints the route and
protection encoding for Boa Vista -> São Paulo, statically classifies
every failure's deflection candidates (driven / forced / wandering), and
then verifies the classification with a live UDP probe per failure.

Run:  python examples/rnp_backbone.py
"""

from repro import PARTIAL, KarSimulation, rnp28
from repro.analysis.coverage import analyze_failure
from repro.topology import RNP_CITY_LABELS


def main() -> None:
    scenario = rnp28(rate_mbps=20.0, delay_s=0.0005)
    graph = scenario.graph

    print("=== RNP backbone (reconstruction): "
          f"{len(graph.nodes('core'))} PoPs ===\n")
    route = scenario.primary_route
    print("primary route: " + " -> ".join(
        f"{sw} [{RNP_CITY_LABELS.get(sw, '?')}]" for sw in route))
    print("partial protection segments: " + ", ".join(
        f"{s.at}->{s.to}" for s in scenario.segments(PARTIAL)))

    ks = KarSimulation(scenario, deflection="nip", protection=PARTIAL, seed=3)
    fwd = ks.primary_forward
    print(f"\nroute ID R = {fwd.route_id} "
          f"({fwd.bit_length} header bits, M = {fwd.modulus})")
    for hop in fwd.hops:
        print(f"  residue: R mod {hop.switch_id:3d} = {hop.port}")

    print("\n--- static coverage analysis per failure (NIP) ---")
    dst_edge = graph.edge_of_host(scenario.dst_host)
    for failure in scenario.failure_links:
        report = analyze_failure(
            graph, route, dst_edge, scenario.segments(PARTIAL), failure
        )
        print(f"\n{failure[0]}-{failure[1]} fails: deflection at "
              f"{report.deflection_switch}")
        for outcome in report.outcomes:
            path = " -> ".join(outcome.path)
            print(f"  p={outcome.probability:.2f} via {outcome.candidate}: "
                  f"{outcome.fate:9s} ({path})")
        print(f"  deterministic delivery: "
              f"{100 * report.delivered_fraction:.0f}%  "
              f"wandering: {100 * report.wandering_fraction:.0f}%")

    print("\n--- live verification (UDP probe during each failure) ---")
    for failure in scenario.failure_links:
        ks = KarSimulation(scenario := rnp28(rate_mbps=20.0, delay_s=0.0005),
                           deflection="nip", protection=PARTIAL, seed=3)
        ks.schedule_failure(*failure, at=0.5)
        source, sink = ks.add_udp_probe(rate_pps=400, duration_s=3.0)
        source.start(at=1.0)
        ks.run(until=6.0)
        print(f"  {failure[0]}-{failure[1]}: delivered "
              f"{sink.received}/{source.sent} "
              f"({100 * sink.delivery_ratio(source.sent):.1f}%), "
              f"mean hops {sink.mean_hops():.2f} "
              f"(no-failure route: 4)")


if __name__ == "__main__":
    main()
