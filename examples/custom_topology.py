#!/usr/bin/env python
"""Bring KAR to your own topology: generate, assign IDs, plan protection.

Demonstrates the full controller workflow on a random network none of
the paper's figures cover:

1. generate a random connected core topology,
2. assign pairwise-coprime switch IDs automatically,
3. let the protection planner build driven-deflection trees for a route
   under a header-bit budget,
4. run traffic through a failure and verify hitless delivery.

Run:  python examples/custom_topology.py
"""

import math
import random

from repro import KarSimulation, assign_switch_ids
from repro.controller.protection import ProtectionPlanner
from repro.rns import route_id_bit_length
from repro.topology import (
    NodeKind,
    PortGraph,
    Scenario,
    attach_host_pair,
    random_connected,
    shortest_path,
)

SEED = 2024


def build_custom_network() -> PortGraph:
    """A random 18-switch core; IDs assigned by the controller."""
    # Generate the wiring first, then assign IDs from the degrees —
    # the workflow a real deployment would follow.
    skeleton = random_connected(18, extra_links=9, seed=SEED,
                                min_switch_id=101)
    degrees = {n.name: n.degree + 1 for n in skeleton.nodes()}
    # +1 port slack so edge nodes can attach anywhere.
    ids = assign_switch_ids(degrees, strategy="greedy")

    graph = PortGraph()
    for name in skeleton.node_names():
        graph.add_node(name, kind=NodeKind.CORE, switch_id=ids[name])
    for link in skeleton.links():
        graph.add_link(link.a, link.b, rate_mbps=20.0, delay_s=0.0003)
    return graph


def main() -> None:
    graph = build_custom_network()

    # Pick far-apart endpoints (double-BFS diameter heuristic) so the
    # route crosses real core distance.
    def farthest_from(start):
        best, best_len = start, 0
        for name in graph.node_names():
            path = shortest_path(graph, start, name)
            if len(path) > best_len:
                best, best_len = name, len(path)
        return best

    src_switch = farthest_from(graph.node_names()[0])
    dst_switch = farthest_from(src_switch)
    names = sorted(graph.node_names(), key=lambda n: graph.switch_id(n))
    src_host, dst_host = attach_host_pair(
        graph, src_switch, dst_switch, rate_mbps=20.0, delay_s=0.0003
    )
    graph.validate()

    route = shortest_path(graph, src_switch, dst_switch)
    print(f"=== custom 18-switch network ===")
    print("switch IDs:", {n: graph.switch_id(n) for n in names})
    print("route:", " -> ".join(route))

    planner = ProtectionPlanner(graph)
    print("\nprotection plans by header budget:")
    chosen = None
    for budget in (16, 24, 32, 48, 64):
        plan = planner.partial(route, budget_bits=budget)
        print(f"  {budget:2d} bits -> {len(plan.covered):2d} candidates "
              f"covered, {len(plan.uncovered):2d} wandering "
              f"({plan.bit_length} bits used)")
        if plan.uncovered == () and chosen is None:
            chosen = plan
    if chosen is None:
        chosen = planner.full(route)
    print(f"\nusing full protection: {len(chosen.segments)} segments, "
          f"{chosen.bit_length} header bits")

    scenario = Scenario(
        name="custom",
        graph=graph,
        primary_route=tuple(route),
        src_host=src_host,
        dst_host=dst_host,
        protection={"planned": tuple(chosen.segments), "none": ()},
    )

    # Fail the first route link whose upstream switch actually has
    # deflection candidates (a stub switch with one uplink leaves KAR —
    # or anything else — no alternative).
    fail_link = None
    for i, (up, down) in enumerate(zip(route, route[1:])):
        banned = {down} | ({route[i - 1]} if i > 0 else set())
        candidates = set(graph.core_subgraph_neighbors(up)) - banned
        if candidates:
            fail_link = (up, down)
            break
    if fail_link is None:
        raise SystemExit("route has no deflectable link; pick another seed")
    for level in ("none", "planned"):
        ks = KarSimulation(scenario, deflection="nip", protection=level,
                           seed=1)
        ks.schedule_failure(*fail_link, at=0.5)
        src, sink = ks.add_udp_probe(rate_pps=400, duration_s=3.0)
        src.start(at=1.0)
        ks.run(until=6.0)
        hops = sink.mean_hops()
        print(f"\nprotection={level!r}, link {fail_link[0]}-{fail_link[1]} "
              f"down: delivered {sink.received}/{src.sent} "
              f"({100 * sink.delivery_ratio(src.sent):.1f}%), "
              f"mean hops {hops:.2f}, " if hops is not None else
              f"\nprotection={level!r}: nothing delivered, ",
              end="")
        print(f"drops {dict(ks.tracer.drop_reasons) or 'none'}")

    print("\nRoute IDs stay compact: the route needs "
          f"{route_id_bit_length(math.prod(graph.switch_id(s) for s in route))} "
          f"bits unprotected, {chosen.bit_length} bits fully protected.")


if __name__ == "__main__":
    main()
