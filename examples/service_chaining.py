#!/usr/bin/env python
"""Service chaining over KAR — the paper's §5 future work, running.

Parks two virtual network functions (a "firewall" and a "DPI" box) on
edges of the 15-node network and steers traffic AS1 -> FW -> DPI -> AS3
as three KAR segments, each with its own compact route ID.  Then fails
a core link under the chain and shows deflection keeping the chain
alive.

Run:  python examples/service_chaining.py
"""

from repro import KarSimulation, fifteen_node
from repro.chaining import ServiceChain, add_chain_probe, deploy_chain
from repro.topology import NodeKind


def build_scenario():
    scn = fifteen_node(rate_mbps=50.0, delay_s=0.0002)
    g = scn.graph
    for vnf, core in (("H-FW", "SW23"), ("H-DPI", "SW41")):
        edge = f"E-{vnf[2:]}"
        g.add_node(edge, kind=NodeKind.EDGE)
        g.add_node(vnf, kind=NodeKind.HOST)
        g.add_link(core, edge, rate_mbps=50.0, delay_s=0.0002)
        g.add_link(edge, vnf, rate_mbps=50.0, delay_s=0.0002)
    g.validate()
    return scn


def main() -> None:
    print("=== KAR service chaining: AS1 -> firewall -> DPI -> AS3 ===\n")
    scn = build_scenario()
    ks = KarSimulation(scn, deflection="nip", protection="unprotected",
                       seed=21, install_primary_flow=False)

    inspected = []
    chain = ServiceChain(
        name="sfc-demo",
        src_host="H-AS1",
        vnf_hosts=("H-FW", "H-DPI"),
        dst_host="H-AS3",
    )
    deployment = deploy_chain(
        ks, chain,
        processing_delay_s=0.0003,
        transforms=[
            lambda p: (inspected.append(("fw", p.seq)), p)[1],
            lambda p: (inspected.append(("dpi", p.seq)), p)[1],
        ],
    )

    print("chain segments and their route IDs:")
    for (a, b), (fwd, _) in zip(chain.segments(), deployment.segment_routes):
        print(f"  {a:7s} -> {b:7s}: R = {fwd.route_id:>12d} "
              f"({fwd.bit_length} bits)")
    print(f"total header budget across segments: "
          f"{deployment.total_header_bits} bits\n")

    source, sink = add_chain_probe(ks, deployment, rate_pps=300,
                                   duration_s=2.0)
    # Fail a link on the middle of the chain while traffic flows.
    ks.schedule_failure("SW23", "SW13", at=1.0, repair_at=2.0)
    source.start(at=0.5)
    ks.run(until=5.0)

    fw_count = sum(1 for tag, _ in inspected if tag == "fw")
    dpi_count = sum(1 for tag, _ in inspected if tag == "dpi")
    print(f"sent {source.sent}, delivered {sink.received} "
          f"({100 * sink.received / source.sent:.1f}%)")
    print(f"firewall processed {fw_count}, DPI processed {dpi_count}")
    print(f"mean end-to-end delay {1e3 * sink.mean_delay():.2f} ms "
          f"(includes 2 x 0.3 ms VNF processing)")
    print(f"deflections during the failure: {ks.tracer.deflection_count}")
    print("\nEach segment is an ordinary KAR route: the chain inherits "
          "deflection\nresilience for free, and the core stayed "
          "completely stateless.")


if __name__ == "__main__":
    main()
