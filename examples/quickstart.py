#!/usr/bin/env python
"""Quickstart: the paper's Fig. 1 example, end to end.

Builds the 6-node network, encodes the paper's route IDs (R = 44
unprotected, R = 660 with the SW5 driven-deflection hop), fails the
SW7-SW11 link, and shows deflection delivering every packet anyway.

Run:  python examples/quickstart.py
"""

from repro import FULL, UNPROTECTED, KarSimulation, RouteEncoder, six_node


def show_route_encoding() -> None:
    """Reproduce Section 2.2's arithmetic with the RNS encoder."""
    encoder = RouteEncoder()

    plain = encoder.encode_path([4, 7, 11], [0, 2, 0])
    print(f"unprotected route id R = {plain.route_id} (paper: 44), "
          f"M = {plain.modulus}, {plain.bit_length} header bits")

    protected = encoder.encode_path([4, 7, 11, 5], [0, 2, 0, 0])
    print(f"protected route id   R = {protected.route_id} (paper: 660), "
          f"M = {protected.modulus}, {protected.bit_length} header bits")

    # Every switch decodes with one modulo — including SW5, the
    # driven-deflection hop that never appears on the primary path.
    for switch_id in (4, 7, 11, 5):
        print(f"  switch {switch_id:2d} forwards on port "
              f"{protected.port_at(switch_id)}")


def run_failure_experiment() -> None:
    """Fail SW7-SW11 and watch driven deflection keep packets flowing."""
    for protection in (UNPROTECTED, FULL):
        scenario = six_node(rate_mbps=50.0, delay_s=0.0002)
        ks = KarSimulation(
            scenario, deflection="nip", protection=protection, seed=7
        )
        ks.schedule_failure("SW7", "SW11", at=1.0, repair_at=3.0)
        source, sink = ks.add_udp_probe(rate_pps=500, duration_s=2.0)
        source.start(at=1.0)  # probe entirely inside the failure window
        ks.run(until=5.0)

        print(f"\nprotection={protection}: sent {source.sent}, "
              f"delivered {sink.received} "
              f"({100 * sink.delivery_ratio(source.sent):.1f}%), "
              f"mean hops {sink.mean_hops():.2f}")
        print(f"  deflections: {ks.tracer.deflection_count}, "
              f"drops: {dict(ks.tracer.drop_reasons) or 'none'}")


def main() -> None:
    print("=== KAR quickstart: Fig. 1 worked example ===\n")
    show_route_encoding()
    run_failure_experiment()
    print("\nWith FULL protection every deflected packet is driven through "
          "SW5 to SW11:\nliveness holds with exactly one extra hop.")


if __name__ == "__main__":
    main()
