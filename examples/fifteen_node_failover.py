#!/usr/bin/env python
"""The paper's Section 3.1 experiment, condensed: TCP across a failure.

Runs an iperf-style TCP flow over the 15-node network, fails SW7-SW13
mid-flow, and prints a throughput-vs-time table comparing the three
deflection techniques (plus no deflection) under partial protection —
the essence of the paper's Fig. 4.

Run:  python examples/fifteen_node_failover.py
"""

from repro import PARTIAL, KarSimulation, fifteen_node

FAIL_AT, REPAIR_AT, END = 3.0, 7.0, 10.0


def run_one(technique: str):
    scenario = fifteen_node(rate_mbps=20.0, delay_s=0.0002)
    ks = KarSimulation(
        scenario, deflection=technique, protection=PARTIAL, seed=11
    )
    ks.schedule_failure("SW7", "SW13", at=FAIL_AT, repair_at=REPAIR_AT)
    flow = ks.add_iperf(sample_interval_s=0.5)
    flow.start(at=0.2, duration_s=END - 0.2)
    ks.run(until=END)
    return flow.result()


def main() -> None:
    print("=== 15-node network: SW7-SW13 fails at "
          f"{FAIL_AT:g}s, repairs at {REPAIR_AT:g}s ===\n")
    results = {t: run_one(t) for t in ("nip", "avp", "hp", "none")}

    times = [t for t, _ in results["nip"].intervals]
    print("throughput (Mbit/s) per 0.5 s interval:")
    print("  time " + "".join(f"{name:>8s}" for name in results))
    for i, t in enumerate(times):
        marker = " <- failure" if FAIL_AT <= t < FAIL_AT + 0.5 else (
            " <- repair" if REPAIR_AT <= t < REPAIR_AT + 0.5 else "")
        row = "".join(f"{r.intervals[i][1]:8.2f}" for r in results.values())
        print(f"{t:6.1f} {row}{marker}")

    print("\nsummary:")
    for name, res in results.items():
        baseline = res.mean_mbps_between(1.5, FAIL_AT)
        during = res.mean_mbps_between(FAIL_AT + 0.5, REPAIR_AT)
        pct = 100 * during / baseline if baseline else 0.0
        print(f"  {name:5s}: {during:5.2f} of {baseline:5.2f} Mbit/s "
              f"({pct:5.1f}%) during failure | "
              f"{res.retransmits} retransmits | "
              f"reordering {res.reordering.describe()}")

    print("\nPaper's Fig. 4 shape: NIP keeps most of the throughput, AVP "
          "less, HP nearly\nnothing, and no-deflection stops entirely — "
          "yet with deflection not a single\nin-flight packet was lost to "
          "the failure.")


if __name__ == "__main__":
    main()
