"""Figure 8 benchmark: the redundant-path worst case.

Asserted paper shape:
* the SW73–SW107 failure degrades throughput substantially but not to
  zero (paper: 54.8 % of nominal survives — the geometric retry),
* the closed-form retry model matches the simulated hop inflation.
"""

import pytest

from repro.analysis.walk import geometric_retry
from repro.experiments.common import run_failure_experiment, scenario_factory
from repro.runner import KarSimulation
from repro.topology.topologies import PARTIAL

FAILURE = ("SW73", "SW107")


def _run(timeline, seed=1):
    scenario = scenario_factory("redundant_path")()
    return run_failure_experiment(
        scenario, "nip", PARTIAL, FAILURE, seed, timeline
    )


def test_figure8_redundant(benchmark, quick_timeline):
    outcome = benchmark.pedantic(
        _run, args=(quick_timeline,), rounds=1, iterations=1
    )
    # Paper: 54.8 % of nominal.  Same mechanism, looser bounds.
    assert 0.15 < outcome.ratio < 0.85
    # The retry loop shows up as retransmissions/reordering, not loss
    # of connectivity.
    assert outcome.failure_mbps > 0


def test_figure8_geometric_model_matches_simulated_hops(benchmark, quick_timeline):
    benchmark(lambda: None)  # assertions below; runs under --benchmark-only
    # Simulate a UDP probe during the failure and compare mean hops
    # after SW73 with the closed-form geometric expectation.
    scenario = scenario_factory("redundant_path")()
    ks = KarSimulation(scenario, deflection="nip", protection=PARTIAL, seed=3)
    ks.schedule_failure(*FAILURE, at=0.5)
    src, sink = ks.add_udp_probe(rate_pps=400, duration_s=4.0)
    src.start(at=1.0)
    ks.run(until=6.0)

    assert sink.received == src.sent  # liveness: nothing lost
    model = geometric_retry(p_success=0.5, direct_hops=2, loop_hops=4)
    # Route prefix before SW73 is 2 hops (SW41, SW73... SW41 counts, the
    # decision happens at SW73).  Mean total = prefix + E[total after].
    simulated = sink.mean_hops()
    expected = 2 + model.expected_total_hops
    assert simulated == pytest.approx(expected, rel=0.15)


def test_figure8_attempt_distribution_normalizes(benchmark):
    benchmark(lambda: None)  # assertions below; runs under --benchmark-only
    model = geometric_retry(p_success=0.5, direct_hops=2, loop_hops=4)
    dist = model.attempt_distribution(30)
    assert sum(dist) == pytest.approx(1.0, abs=1e-6)
    assert model.expected_attempts == pytest.approx(2.0)
    assert model.expected_extra_hops == pytest.approx(4.0)
