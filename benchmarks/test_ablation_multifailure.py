"""Ablation: multiple simultaneous link failures (Table 2's claim).

Table 2 credits KAR with "support multiple link failures" — unlike
Slick Packets / KeyFlow / SlickFlow, whose single pre-encoded
alternative is exhausted by the first failure.  This benchmark fails
TWO primary-route links at once on the 15-node network and verifies
that driven deflection still delivers (each failure point deflects
independently; the route ID needs no per-failure state).
"""

import pytest

from repro.runner import KarSimulation
from repro.topology.topologies import FULL, UNPROTECTED, fifteen_node

DOUBLE_FAILURE = (("SW10", "SW7"), ("SW13", "SW29"))


def _run(deflection, protection, seed=6):
    ks = KarSimulation(
        fifteen_node(rate_mbps=20.0, delay_s=0.0002),
        deflection=deflection, protection=protection, seed=seed, ttl=96,
    )
    for a, b in DOUBLE_FAILURE:
        ks.schedule_failure(a, b, at=0.5)
    src, sink = ks.add_udp_probe(rate_pps=300, duration_s=2.0)
    src.start(at=1.0)
    ks.run(until=8.0)
    return src, sink, ks


def test_ablation_double_failure_nip_full(benchmark):
    src, sink, ks = benchmark.pedantic(
        _run, args=("nip", FULL), rounds=1, iterations=1
    )
    # Both failure points deflect; nothing is lost and paths stay
    # bounded (first deflection lands on the protection tree, the
    # second forces the SW19 rejoin around SW13-SW29).
    assert sink.received == src.sent
    assert sink.mean_hops() < 10.0


def test_ablation_double_failure_connectivity_only(benchmark):
    # Even unprotected, deflection keeps a usable fraction flowing
    # through a double failure — the property single-alternative
    # schemes (Slick Packets et al.) structurally lack.
    src, sink, ks = benchmark.pedantic(
        _run, args=("nip", UNPROTECTED), rounds=1, iterations=1
    )
    assert sink.received >= 0.8 * src.sent
    accounted = sink.received + sum(ks.tracer.drop_reasons.values())
    assert accounted == src.sent


def test_ablation_double_failure_no_deflection_dies(benchmark):
    src, sink, ks = benchmark.pedantic(
        _run, args=("none", FULL), rounds=1, iterations=1
    )
    assert sink.received == 0
