"""Ablation: random-walk analysis vs simulation.

Validates the absorbing-Markov-chain model (``repro.analysis.walk``)
against the simulated Hot-Potato dataplane on a ring topology — the
worst case for random walks — and quantifies how much driven
deflection (encoded targets) shortens the walk.
"""

import random

import pytest

from repro.analysis.walk import absorption_probability, hot_potato_hitting_time
from repro.topology.generators import ring_lattice


@pytest.fixture(scope="module")
def ring():
    return ring_lattice(10, min_switch_id=11)


def _simulated_hitting_time(graph, start, targets, trials=4000, seed=1):
    """Monte-Carlo uniform random walk on the core graph."""
    rng = random.Random(seed)
    target_set = set(targets)
    total = 0
    for _ in range(trials):
        node, steps = start, 0
        while node not in target_set:
            node = rng.choice(graph.core_subgraph_neighbors(node))
            steps += 1
            if steps > 10000:  # pragma: no cover - safety valve
                break
        total += steps
    return total / trials


def test_ablation_walk(benchmark, ring):
    names = ring.node_names()
    start, target = names[0], names[5]  # antipodal on the 10-ring
    analytic = benchmark(hot_potato_hitting_time, ring, start, [target])
    simulated = _simulated_hitting_time(ring, start, [target])
    # Symmetric random walk on a 10-cycle: E[hit antipode] = 5*(10-5) = 25.
    assert analytic == pytest.approx(25.0, rel=1e-9)
    assert simulated == pytest.approx(analytic, rel=0.1)


def test_ablation_walk_protection_shortens(benchmark, ring):
    benchmark(lambda: None)  # assertions below; runs under --benchmark-only
    # Adding encoded (absorbing) switches near the walk cuts expected
    # hops: the quantitative value of each driven-deflection residue.
    names = ring.node_names()
    start = names[0]
    only_dst = hot_potato_hitting_time(ring, start, [names[5]])
    with_protection = hot_potato_hitting_time(
        ring, start, [names[5], names[3], names[7]]
    )
    assert with_protection < only_dst / 2


def test_ablation_absorption_probability(benchmark, ring):
    benchmark(lambda: None)  # assertions below; runs under --benchmark-only
    names = ring.node_names()
    # Walk from names[1]: good = names[2], bad = names[0] (neighbors on
    # either side): gambler's ruin on the cycle arc.
    p = absorption_probability(ring, names[1], [names[2]], [names[0]])
    assert 0.0 < p < 1.0
    # Symmetry: swapping good and bad complements the probability.
    q = absorption_probability(ring, names[1], [names[0]], [names[2]])
    assert p + q == pytest.approx(1.0, abs=1e-9)
