"""Figure 5 benchmark: protection × technique × failure-location grid.

Asserted paper shape (Section 3.1):
* full protection gives the highest throughput for every technique and
  failure location;
* partial ≈ full for SW7–SW13 and SW13–SW29 failures;
* partial is much worse than full for SW10–SW7 (only 1 of 3 deflection
  candidates covered);
* everything beats unprotected (or ties within noise).
"""

import pytest

from repro.experiments.common import run_failure_experiment, scenario_factory
from repro.topology.topologies import FULL, PARTIAL, UNPROTECTED

FAILURES = (("SW10", "SW7"), ("SW7", "SW13"), ("SW13", "SW29"))


def _run_grid(timeline, seeds=(1, 2, 3)):
    build = scenario_factory("fifteen_node")
    grid = {}
    for technique in ("avp", "nip"):
        for protection in (UNPROTECTED, PARTIAL, FULL):
            for failure in FAILURES:
                ratios = [
                    run_failure_experiment(
                        build(), technique, protection, failure, seed, timeline
                    ).ratio
                    for seed in seeds
                ]
                grid[(technique, protection, failure)] = sum(ratios) / len(ratios)
    return grid


@pytest.fixture(scope="module")
def grid(quick_timeline):
    return _run_grid(quick_timeline)


def test_figure5_grid(benchmark, quick_timeline, grid):
    # Benchmark one representative cell; assertions use the cached grid.
    benchmark.pedantic(
        run_failure_experiment,
        args=(scenario_factory("fifteen_node")(), "nip", FULL,
              ("SW10", "SW7"), 1, quick_timeline),
        rounds=1, iterations=1,
    )
    for technique in ("avp", "nip"):
        for failure in FAILURES:
            full = grid[(technique, FULL, failure)]
            partial = grid[(technique, PARTIAL, failure)]
            unprot = grid[(technique, UNPROTECTED, failure)]
            # Full is the best.  Tolerance covers seed noise: cells where
            # deflected packets wander have a per-run spread of ~0.15.
            assert full >= partial - 0.2, (technique, failure)
            assert full >= unprot - 0.2, (technique, failure)


def test_figure5_partial_equals_full_where_paper_says(benchmark, grid):
    benchmark(lambda: None)  # assertions below; runs under --benchmark-only
    for failure in (("SW7", "SW13"), ("SW13", "SW29")):
        full = grid[("nip", FULL, failure)]
        partial = grid[("nip", PARTIAL, failure)]
        assert abs(full - partial) < 0.2, failure


def test_figure5_partial_gap_at_sw10(benchmark, grid):
    benchmark(lambda: None)  # assertions below; runs under --benchmark-only
    # Paper: 80 vs 140 Mbit/s — partial roughly half of full.
    full = grid[("nip", FULL, ("SW10", "SW7"))]
    partial = grid[("nip", PARTIAL, ("SW10", "SW7"))]
    assert partial < 0.75 * full


def test_figure5_nip_beats_avp(benchmark, grid):
    benchmark(lambda: None)  # assertions below; runs under --benchmark-only
    wins = sum(
        grid[("nip", prot, fail)] >= grid[("avp", prot, fail)]
        for prot in (UNPROTECTED, PARTIAL, FULL)
        for fail in FAILURES
    )
    assert wins >= 8  # NIP wins (essentially) everywhere
