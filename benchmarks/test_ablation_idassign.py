"""Ablation: switch-ID assignment strategy vs route-ID bit growth.

Section 2.3 warns that header cost grows with the product of switch IDs
on the route.  This ablation quantifies the design choice the paper
leaves implicit: coprime-greedy ID pools (admitting 4, 9, 25, ...) grow
route IDs measurably slower than prime pools.
"""

import math

import pytest

from repro.analysis.bitgrowth import bit_growth_by_strategy, protection_budget_table
from repro.controller.idassign import assign_switch_ids
from repro.topology.generators import random_connected


def test_ablation_idassign(benchmark):
    growth = benchmark(bit_growth_by_strategy, 24)
    greedy, prime = growth["greedy"], growth["prime"]
    # Same hop counts, never more bits for greedy, strictly fewer by the
    # time routes get long.
    assert [g.hops for g in greedy] == [p.hops for p in prime]
    assert all(g.bits <= p.bits for g, p in zip(greedy, prime))
    assert greedy[-1].bits < prime[-1].bits
    # Growth is monotone for both.
    assert [g.bits for g in greedy] == sorted(g.bits for g in greedy)


def test_ablation_idassign_on_random_topologies(benchmark):
    def products():
        out = []
        for seed in range(5):
            g = random_connected(20, extra_links=10, seed=seed,
                                 min_switch_id=23)
            degrees = {n.name: n.degree for n in g.nodes()}
            greedy = math.prod(assign_switch_ids(degrees, "greedy").values())
            prime = math.prod(assign_switch_ids(degrees, "prime").values())
            out.append((greedy, prime))
        return out

    for greedy, prime in benchmark.pedantic(products, rounds=1, iterations=1):
        assert greedy <= prime


def test_ablation_budget_table(benchmark):
    rows = benchmark(
        protection_budget_table,
        [10, 7, 13, 29],                 # the 15-node primary route
        [11, 23, 31, 17, 37, 41],        # its protection switches
        [15, 20, 28, 35, 43, 64],
    )
    budgets = [b for b, _ in rows]
    fits = [f for _, f in rows]
    # Table 1's anchor points: 15 bits fit nothing extra, 28 bits fit
    # the partial set (3), 43 bits fit the full set (6).
    assert fits[budgets.index(15)] == 0
    assert fits[budgets.index(28)] == 3
    assert fits[budgets.index(43)] == 6
    assert fits == sorted(fits)  # more budget never fits fewer hops
