"""Table 2 benchmark: the related-work feature matrix."""

from repro.baselines.feature_matrix import TABLE2_ROWS, render_table2


def test_table2_rows_match_paper(benchmark):
    text = benchmark(render_table2)
    # KAR's unique position: the only Yes/Yes/Stateless row.
    full_rows = [
        r for r in TABLE2_ROWS
        if r.multiple_link_failures and r.source_routing and r.stateless_core
    ]
    assert [r.system for r in full_rows] == ["MPLS Fast Reroute", "KAR"]
    # And unlike MPLS-FRR, KAR needs no signaling protocol — it is the
    # paper's claimed advance; the matrix keeps the paper's 8 rows plus
    # our Arborescence Failover addition.
    assert len(TABLE2_ROWS) == 9
    assert "KAR" in text and "Stateless" in text
    # KAR is also the only row surviving the dynamic-failures column
    # while staying stateless — the frontier's headline distinction.
    dynamic_stateless = [
        r for r in TABLE2_ROWS if r.dynamic_failures and r.stateless_core
    ]
    assert [r.system for r in dynamic_stateless] == ["KAR"]


def test_table2_keyflow_row(benchmark):
    benchmark(lambda: None)  # assertions below; runs under --benchmark-only
    row = next(r for r in TABLE2_ROWS if "KeyFlow" in r.system)
    assert not row.multiple_link_failures  # what KAR adds over KeyFlow
    assert row.source_routing and row.stateless_core
