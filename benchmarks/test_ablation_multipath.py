"""Ablation: multipath route IDs vs deflection (the §5 extension).

Compares the three ways this codebase can survive the redundant-path
worst case (Fig. 8):

* core deflection with the protection loop (the paper's mechanism:
  geometric retry, ~half the throughput),
* edge failover onto a pre-encoded disjoint standby key (zero loss,
  deterministic path, needs one control message),
* per-packet round-robin spraying (load balancing; reordering cost).
"""

import pytest

from repro.experiments.common import run_failure_experiment, scenario_factory
from repro.multipath import (
    FAILOVER,
    ROUND_ROBIN,
    MultipathEdgeNode,
    install_multipath_flow,
)
from repro.runner import KarSimulation
from repro.topology.topologies import PARTIAL

FAILURE = ("SW73", "SW107")


def _deflection_outcome(timeline):
    scenario = scenario_factory("redundant_path")()
    return run_failure_experiment(
        scenario, "nip", PARTIAL, FAILURE, seed=4, timeline=timeline
    )


def _failover_outcome(timeline):
    scenario = scenario_factory("redundant_path")()
    ks = KarSimulation(scenario, deflection="nip", protection="unprotected",
                       seed=4, edge_node_cls=MultipathEdgeNode,
                       install_primary_flow=False)
    install_multipath_flow(ks, "H-SRC", "H-DST", policy=FAILOVER)
    ks.schedule_failure(*FAILURE, at=timeline.fail_at,
                        repair_at=timeline.repair_at)
    ingress = ks.network.node("E-SRC")
    egress = ks.network.node("E-DST")
    # Controller flips the standby keys (both directions — the reverse
    # primary crosses the failed link too) one control-RTT after the
    # failure, and back after the repair.
    for at in (timeline.fail_at + 0.005, timeline.repair_at + 0.005):
        ks.sim.schedule_at(at, ingress.set_preferred, "H-DST", 1)
        ks.sim.schedule_at(at, egress.set_preferred, "H-SRC", 1)
    flow = ks.add_iperf(sample_interval_s=timeline.sample_interval_s,
                        max_rto=1.0)
    flow.start(at=timeline.flow_start,
               duration_s=timeline.end - timeline.flow_start)
    ks.run(until=timeline.end)
    result = flow.result()
    return (
        result.mean_mbps_between(*timeline.baseline_window),
        result.mean_mbps_between(*timeline.failure_window),
    )


def test_ablation_multipath(benchmark, quick_timeline):
    deflection = benchmark.pedantic(
        _deflection_outcome, args=(quick_timeline,), rounds=1, iterations=1
    )
    base, during = _failover_outcome(quick_timeline)
    failover_ratio = during / base if base else 0.0
    # Edge failover onto the pre-encoded standby keeps nearly full
    # throughput; deflection pays the geometric-retry tax.
    assert failover_ratio > 0.85
    assert failover_ratio > deflection.ratio + 0.2


def test_ablation_roundrobin_spraying(benchmark, quick_timeline):
    def run():
        scenario = scenario_factory("fifteen_node")()
        ks = KarSimulation(scenario, deflection="nip",
                           protection="unprotected", seed=5,
                           edge_node_cls=MultipathEdgeNode,
                           install_primary_flow=False)
        install_multipath_flow(ks, "H-AS1", "H-AS3", policy=ROUND_ROBIN,
                               reverse_policy="flowhash")
        flow = ks.add_iperf(sample_interval_s=0.25, max_rto=1.0)
        flow.start(at=0.2, duration_s=3.8)
        ks.run(until=4.0)
        return flow.result()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # Spraying sustains real throughput but cannot be reordering-free.
    assert result.mean_mbps > 5.0
    assert result.reordering.reordered > 0
