"""Benchmark + regeneration of Table 1 (route-ID bit lengths)."""

from repro.experiments.table1 import PAPER_TABLE1, compute_table1, render_table1


def test_table1_matches_paper_exactly(benchmark):
    rows = benchmark(compute_table1)
    assert [(r.mechanism, r.bit_length, r.switch_count) for r in rows] == [
        (p.mechanism, p.bit_length, p.switch_count) for p in PAPER_TABLE1
    ]


def test_table1_render(benchmark):
    text = benchmark(render_table1)
    assert "Unprotected" in text and "43" in text
