"""Ablation: protection bit-budget vs coverage vs delivered performance.

Sweeps the automatic protection planner across header budgets on the
15-node network and verifies the core trade-off of Section 2.3: more
header bits -> more covered deflection candidates -> fewer wandering
packets (measured with a UDP probe under the worst failure).
"""

import pytest

from repro.analysis.coverage import analyze_failure
from repro.controller.protection import ProtectionPlanner
from repro.runner import KarSimulation
from repro.topology.topologies import Scenario, fifteen_node

BUDGETS = (15, 24, 30, 43, 60)


def _plan_coverage(budget):
    scn = fifteen_node()
    planner = ProtectionPlanner(scn.graph)
    plan = planner.partial(scn.primary_route, budget_bits=budget)
    return plan


def test_ablation_protection_sweep(benchmark):
    plans = benchmark.pedantic(
        lambda: [_plan_coverage(b) for b in BUDGETS], rounds=1, iterations=1
    )
    covered = [len(p.covered) for p in plans]
    bits = [p.bit_length for p in plans]
    assert covered == sorted(covered)          # budget buys coverage
    assert all(b <= budget for b, budget in zip(bits, BUDGETS))
    assert covered[0] == 0                     # 15 bits: primary only
    # 60 bits: everything coverable is covered (SW9 has no off-route
    # path to the destination; NIP's forced rejoin handles it instead).
    assert plans[-1].uncovered == ("SW9",)


def test_ablation_planned_protection_delivers(benchmark):
    # Wire the *planned* (not hand-pinned) full protection into a live
    # scenario and verify deterministic delivery under the SW10-SW7
    # failure (the case hand-partial leaves 2/3 wandering).
    def run():
        base = fifteen_node(rate_mbps=20.0, delay_s=0.0002)
        planner = ProtectionPlanner(base.graph)
        plan = planner.full(base.primary_route)
        scn = Scenario(
            name="fifteen_node_planned",
            graph=base.graph,
            primary_route=base.primary_route,
            src_host=base.src_host,
            dst_host=base.dst_host,
            protection={"planned": tuple(plan.segments)},
            reverse_protection={},
            failure_links=base.failure_links,
        )
        ks = KarSimulation(scn, deflection="nip", protection="planned", seed=5)
        ks.schedule_failure("SW10", "SW7", at=0.5)
        src, sink = ks.add_udp_probe(rate_pps=400, duration_s=3.0)
        src.start(at=1.0)
        ks.run(until=6.0)
        return src, sink

    src, sink = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sink.delivery_ratio(src.sent) == 1.0
    # Planner coverage: all deflected traffic is driven, so path length
    # stays bounded (no wandering tails).
    assert sink.mean_hops() < 7.0


def test_ablation_coverage_analysis_matches_plan(benchmark):
    scn = fifteen_node()
    planner = ProtectionPlanner(scn.graph)
    plan = planner.full(scn.primary_route)
    dst_edge = scn.graph.edge_of_host(scn.dst_host)

    def analyze():
        return [
            analyze_failure(scn.graph, scn.primary_route, dst_edge,
                            plan.segments, failure)
            for failure in scn.failure_links
        ]

    reports = benchmark(analyze)
    # The ingress failure (SW10-SW7) is fully covered by the planned
    # tree: every candidate is chained to the destination.
    assert reports[0].wandering_fraction == 0.0, reports[0].describe()
    assert reports[0].delivered_fraction == pytest.approx(1.0)
    # Later failures can re-randomize at an already-visited route switch
    # (the residue points at the failed link); the plan still delivers
    # the large majority deterministically.
    for report in reports:
        assert report.delivered_fraction >= 0.7, report.describe()
