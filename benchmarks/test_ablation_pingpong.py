"""Ablation: why "Not the Input Port"?  (NIP vs AVP ping-pong)

The paper motivates NIP as AVP minus two-node routing loops.  This
ablation isolates that mechanism on the six-node example: with the
SW7–SW11 link down, AVP's random fallback may bounce packets back to
their previous hop (and its computed modulo may even do so
deterministically), inflating path length; NIP cannot.  Measured as the
mean per-packet hop count of a UDP probe during the failure.
"""

import pytest

from repro.runner import KarSimulation
from repro.topology.topologies import FULL, six_node


def _mean_hops(deflection, seed=1):
    scn = six_node(rate_mbps=50.0, delay_s=0.0002)
    ks = KarSimulation(scn, deflection=deflection, protection=FULL, seed=seed)
    ks.schedule_failure("SW7", "SW11", at=0.5)
    src, sink = ks.add_udp_probe(rate_pps=500, duration_s=3.0)
    src.start(at=1.0)
    ks.run(until=6.0)
    assert sink.received > 0
    return sink.mean_hops(), sink.delivery_ratio(src.sent)


@pytest.fixture(scope="module")
def results():
    return {d: _mean_hops(d) for d in ("nip", "avp", "hp")}


def test_ablation_pingpong(benchmark, results):
    benchmark.pedantic(_mean_hops, args=("nip",), rounds=1, iterations=1)
    nip_hops, nip_delivery = results["nip"]
    avp_hops, avp_delivery = results["avp"]
    # NIP: driven deflection via SW5 -> exactly one extra hop, every
    # packet (4 core hops instead of 3).
    assert nip_hops == pytest.approx(4.0, abs=0.01)
    assert nip_delivery == 1.0
    # AVP ping-pongs: strictly more hops on average.
    assert avp_hops > nip_hops

def test_ablation_hp_is_lower_bound(benchmark, results):
    benchmark(lambda: None)  # assertions below; runs under --benchmark-only
    hp_hops, hp_delivery = results["hp"]
    nip_hops, _ = results["nip"]
    # HP random walks are the worst paths of all.
    assert hp_hops > nip_hops
