"""Figure 7 benchmark: RNP backbone failures (Boa Vista → São Paulo).

Asserted paper shape (Section 3.2):
* SW7–SW13 failure barely hurts (single covered alternative; paper <5 %),
* SW13–SW41 is the worst case (5-way deflection split, 3/5 wander),
* SW41–SW73 sits in between (2-way split, both covered),
* liveness: throughput never reaches zero under any of the failures.
"""

import pytest

from repro.experiments.common import run_failure_experiment, scenario_factory
from repro.topology.topologies import PARTIAL

CASES = (None, ("SW7", "SW13"), ("SW13", "SW41"), ("SW41", "SW73"))


def _run_case(failure, timeline, seed=1):
    scenario = scenario_factory("rnp28")()
    return run_failure_experiment(
        scenario, "nip", PARTIAL, failure, seed, timeline
    )


@pytest.fixture(scope="module")
def outcomes(quick_timeline):
    out = {}
    for case in CASES:
        ratios = []
        for seed in (1, 2):
            ratios.append(_run_case(case, quick_timeline, seed).ratio)
        out[case] = sum(ratios) / len(ratios)
    return out


def test_figure7_rnp(benchmark, quick_timeline, outcomes):
    benchmark.pedantic(
        _run_case, args=(("SW13", "SW41"), quick_timeline),
        rounds=1, iterations=1,
    )
    assert outcomes[None] == pytest.approx(1.0, abs=0.05)
    # SW7-SW13: near-nominal (paper < 5 % loss; we allow 15 %).
    assert outcomes[("SW7", "SW13")] > 0.85
    # SW13-SW41 is the worst failure case.
    assert outcomes[("SW13", "SW41")] <= outcomes[("SW41", "SW73")] + 0.05
    assert outcomes[("SW13", "SW41")] < outcomes[("SW7", "SW13")]
    # Liveness: deflection keeps every case above zero.
    assert all(r > 0.05 for r in outcomes.values())


def test_figure7_heterogeneous_rates_profile(benchmark):
    benchmark(lambda: None)  # assertions below; runs under --benchmark-only
    scn = scenario_factory("rnp28")()
    thin = scn.graph.link("SW7", "SW13").rate_mbps
    fat = scn.graph.link("SW41", "SW73").rate_mbps
    assert thin < fat
