"""Microbenchmarks: the hot paths of the KAR stack.

These quantify the claims the paper makes about simplicity/performance
qualitatively: a KAR switch's forwarding decision is one modulo (plus a
strategy branch), encoding is cheap enough for per-flow controller use,
and the simulator sustains enough events/second to run the full
evaluation on a laptop.
"""

import random

from repro.rns import Hop, RouteEncoder
from repro.rns.wire import decode_header, encode_header
from repro.sim import KarHeader, Packet, Simulator
from repro.switches import KarSwitch, NotInputPort
from repro.topology import fifteen_node


def test_microbench_crt_encode(benchmark):
    encoder = RouteEncoder()
    switches = [10, 7, 13, 29, 11, 23, 31, 17, 37, 41]  # Table 1 full
    ports = [1, 2, 4, 0, 1, 2, 0, 1, 2, 0]

    route = benchmark(encoder.encode_path, switches, ports)
    assert route.bit_length == 43


def test_microbench_incremental_hop(benchmark):
    encoder = RouteEncoder()
    base = encoder.encode_path([10, 7, 13, 29], [1, 2, 4, 0])

    extended = benchmark(encoder.with_hop, base, Hop(11, 1))
    assert extended.encodes(11)


def test_microbench_switch_decision(benchmark):
    # The per-packet data plane: modulo + NIP strategy, no I/O.
    sim = Simulator()
    switch = KarSwitch("SW", sim, 5, 13, NotInputPort(), random.Random(1))
    packet = Packet(src_host="a", dst_host="b", size_bytes=100,
                    kar=KarHeader(route_id=44))
    strategy = switch.strategy
    rng = random.Random(2)

    def decide():
        return strategy.select_port(switch, packet, 0, 44 % 13, rng)

    decision = benchmark(decide)
    assert decision.port is not None or decision.port is None  # ran


def test_microbench_wire_roundtrip(benchmark):
    header = KarHeader(route_id=5_337_651_234_567, modulus=2**43, ttl=64)

    def roundtrip():
        return decode_header(encode_header(header))

    decoded, _ = benchmark(roundtrip)
    assert decoded.route_id == header.route_id


def test_microbench_event_engine(benchmark):
    # Pure engine throughput: schedule/fire 10k no-op events.
    def run_10k():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 1e-6, lambda: None)
        sim.run()
        return sim.events_processed

    assert benchmark(run_10k) == 10_000


def test_microbench_packet_forwarding_throughput(benchmark):
    # End-to-end dataplane rate: how many simulated packet-hops per
    # wall-clock second the whole stack sustains (UDP probe over the
    # 15-node network).
    def run_probe():
        from repro.runner import KarSimulation

        ks = KarSimulation(fifteen_node(rate_mbps=100.0, delay_s=0.0002),
                           deflection="nip", protection="partial", seed=1)
        src, sink = ks.add_udp_probe(rate_pps=2000, duration_s=1.0)
        src.start()
        ks.run(until=1.5)
        return sink.received

    received = benchmark.pedantic(run_probe, rounds=1, iterations=1)
    assert received == 2001
