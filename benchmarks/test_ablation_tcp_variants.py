"""Ablation: does the congestion-control flavour change the KAR story?

The paper's hosts ran Linux (CUBIC); our default measurement stack is
Reno/NewReno with Eifel.  This ablation runs the Fig. 4 experiment
under both and checks the KAR conclusions are CC-invariant:

* NIP driven deflection keeps the large majority of throughput,
* no-deflection drops to zero,
* the two CC flavours land within the same qualitative band.
"""

import pytest

from repro.runner import KarSimulation
from repro.topology.topologies import PARTIAL, fifteen_node
from repro.transport import CubicTcpSender, TcpSender

FAILURE = ("SW7", "SW13")


def _run(sender_cls, deflection, timeline, seed=2):
    ks = KarSimulation(
        fifteen_node(rate_mbps=20.0, delay_s=0.0002),
        deflection=deflection, protection=PARTIAL, seed=seed,
    )
    ks.schedule_failure(*FAILURE, at=timeline.fail_at,
                        repair_at=timeline.repair_at)
    flow = ks.add_iperf(sample_interval_s=timeline.sample_interval_s,
                        sender_cls=sender_cls, max_rto=1.0)
    flow.start(at=timeline.flow_start,
               duration_s=timeline.end - timeline.flow_start)
    ks.run(until=timeline.end)
    res = flow.result()
    base = res.mean_mbps_between(*timeline.baseline_window)
    during = res.mean_mbps_between(*timeline.failure_window)
    return during / base if base else 0.0


def test_ablation_tcp_variants(benchmark, quick_timeline):
    reno_nip = benchmark.pedantic(
        _run, args=(TcpSender, "nip", quick_timeline), rounds=1, iterations=1
    )
    cubic_nip = _run(CubicTcpSender, "nip", quick_timeline)
    cubic_none = _run(CubicTcpSender, "none", quick_timeline)
    # The KAR conclusion is congestion-control invariant.
    assert reno_nip > 0.5
    assert cubic_nip > 0.5
    assert cubic_none < 0.05
    assert abs(reno_nip - cubic_nip) < 0.4  # same qualitative band
