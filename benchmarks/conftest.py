"""Shared benchmark configuration.

Benchmarks double as the experiment regeneration harness: each one runs
a (scaled-down) version of a paper table/figure and asserts the paper's
qualitative claims — who wins, by roughly what factor — so a regression
in the dataplane or transport shows up as a benchmark failure.

A shortened timeline keeps every file in tens of seconds on one core;
``python -m repro.experiments.report`` runs the full-length versions.
"""

import pytest

from repro.experiments.common import Timeline

#: Shortened experiment timeline for benchmark runs.  The failure
#: window starts 1.5 s after the failure so the measured plateau skips
#: TCP's reordering-adaptation transient (the full-length timeline in
#: repro.experiments.common does the same proportionally).
QUICK = Timeline(
    flow_start=0.2,
    fail_at=2.0,
    repair_at=6.0,
    end=8.0,
    baseline_window=(1.0, 2.0),
    failure_window=(3.5, 6.0),
    sample_interval_s=0.25,
)


@pytest.fixture(scope="session")
def quick_timeline():
    return QUICK
