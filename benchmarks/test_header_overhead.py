"""Header-overhead study: Section 2.3 quantified across scenarios.

Asserted shape:
* Table 1 anchors (15/28/43 bits) reappear in the scenario rows;
* even full protection costs ~10 wire bytes — under 1 % of an MTU;
* the greedy ID pool beats the prime pool in best-case capacity and
  never loses in the worst case.
"""

import pytest

from repro.experiments.header_overhead import (
    capacity_table,
    render_overhead_report,
    scenario_overhead,
)
from repro.topology.topologies import fifteen_node


def test_header_overhead(benchmark):
    rows = benchmark(scenario_overhead, fifteen_node())
    by_level = {r.level: r for r in rows}
    assert by_level["unprotected"].bits == 15
    assert by_level["partial"].bits == 28
    assert by_level["full"].bits == 43
    # The paper's whole design point: protection stays cheap on the wire.
    assert by_level["full"].wire_bytes <= 10
    assert by_level["full"].mtu_fraction < 0.01


def test_header_overhead_capacity(benchmark):
    best = benchmark(capacity_table, worst_case=False)
    worst = capacity_table(worst_case=True)
    budgets = [b for b, _ in best["greedy"]]
    for i, _budget in enumerate(budgets):
        # Greedy never supports fewer hops than prime...
        assert best["greedy"][i][1] >= best["prime"][i][1]
        assert worst["greedy"][i][1] >= worst["prime"][i][1]
        # ...and best-case capacity dominates worst-case.
        assert best["greedy"][i][1] >= worst["greedy"][i][1]
    # More budget, more hops.
    hops = [h for _, h in worst["prime"]]
    assert hops == sorted(hops)


def test_header_overhead_report(benchmark):
    text = benchmark(render_overhead_report)
    assert "fifteen_node" in text and "% of MTU" in text
    assert "best-case" in text and "worst-case" in text
