"""Ablation: KAR deflection vs the executable baselines.

Two comparison systems from Table 2 run head-to-head against KAR on the
same failure:

* **controller repair** (the "traditional approach" of Section 2): no
  deflection; the controller reinstalls a detour after a reaction
  delay.  Packets die during the reaction window — the loss KAR's
  deflection exists to prevent.
* **OpenFlow-FF-style backup ports**: stateful per-switch backups flip
  deterministically.  Delivery matches driven deflection, but the state
  must be precomputed and stored in every switch (the cost KAR avoids).
"""

import random

import pytest

from repro.baselines.fastfailover import (
    FastFailoverStrategy,
    plan_backup_ports,
    plan_destination_tree,
)
from repro.baselines.repair import ControllerRepair
from repro.runner import KarSimulation
from repro.switches.core import KarSwitch
from repro.topology.topologies import PARTIAL, UNPROTECTED, fifteen_node

FAILURE = ("SW7", "SW13")


def _udp_run(ks, fail_with_repair=None):
    if fail_with_repair is None:
        ks.schedule_failure(*FAILURE, at=1.0, repair_at=4.0)
    src, sink = ks.add_udp_probe(rate_pps=400, duration_s=2.5)
    src.start(at=1.2)  # probe inside the failure window
    ks.run(until=6.0)
    return src, sink


def test_ablation_controller_repair_loses_packets(benchmark):
    def run():
        scn = fifteen_node(rate_mbps=20.0, delay_s=0.0002)
        ks = KarSimulation(scn, deflection="none", protection=UNPROTECTED,
                           seed=9)
        repair = ControllerRepair(ks, reaction_delay_s=0.5)
        repair.arm(*FAILURE, fail_at=1.0, repair_at=4.0)
        src, sink = _udp_run(ks, fail_with_repair=True)
        return repair, src, sink

    repair, src, sink = benchmark.pedantic(run, rounds=1, iterations=1)
    assert repair.repairs_installed == 1
    ratio = sink.delivery_ratio(src.sent)
    # Packets sent during the 0.5 s reaction window died; the rest were
    # rerouted by the controller.
    assert 0.4 < ratio < 0.95


def test_ablation_kar_deflection_is_hitless(benchmark):
    def run():
        scn = fifteen_node(rate_mbps=20.0, delay_s=0.0002)
        ks = KarSimulation(scn, deflection="nip", protection=PARTIAL, seed=9)
        return _udp_run(ks)

    src, sink = benchmark.pedantic(run, rounds=1, iterations=1)
    # The paper's Hitless property: zero loss, without any controller
    # involvement at all.
    assert sink.delivery_ratio(src.sent) == 1.0


def test_ablation_fastfailover_equivalent_delivery(benchmark):
    def run():
        scn = fifteen_node(rate_mbps=20.0, delay_s=0.0002)
        dst_edge = scn.graph.edge_of_host(scn.dst_host)
        backups = plan_backup_ports(scn.graph, scn.primary_route, dst_edge)
        tree = plan_destination_tree(scn.graph, dst_edge)
        ks = KarSimulation(scn, deflection="none", protection=UNPROTECTED,
                           seed=9, install_primary_flow=True)
        # Bolt the stateful tables onto EVERY switch: per-port backups
        # on the route, destination-tree next hops everywhere (that is
        # the point — OF-FF needs state network-wide).
        state_entries = 0
        for name, port in tree.items():
            node = ks.network.node(name)
            assert isinstance(node, KarSwitch)
            node.strategy = FastFailoverStrategy(
                backups.get(name), default_port=port
            )
            state_entries += 1 + len(backups.get(name, {}))
        return _udp_run(ks), state_entries

    (src, sink), state_entries = benchmark.pedantic(run, rounds=1, iterations=1)
    # Deterministic local failover delivers everything...
    assert sink.delivery_ratio(src.sent) == 1.0
    # ...but at the price of per-switch state across the whole core for
    # ONE destination (the Table 2 distinction KAR removes).
    assert state_entries >= 15
