"""Figure 4 benchmark: throughput-across-failure time series by technique.

Asserted paper shape:
* deflection keeps traffic alive through the failure (NIP, AVP > 0),
* NIP > AVP > HP,
* no-deflection goes to ~zero during the failure window,
* NIP retains a large fraction of baseline (paper: ~75 %).
"""

import pytest

from repro.experiments.common import run_failure_experiment, scenario_factory
from repro.topology.topologies import PARTIAL

FAILURE = ("SW7", "SW13")


def _run_technique(technique, timeline, seed=1):
    scenario = scenario_factory("fifteen_node")()
    return run_failure_experiment(
        scenario, technique, PARTIAL, FAILURE, seed, timeline
    )


@pytest.fixture(scope="module")
def all_outcomes(quick_timeline):
    return {
        t: _run_technique(t, quick_timeline)
        for t in ("nip", "avp", "hp", "none")
    }


def test_figure4_nip(benchmark, quick_timeline, all_outcomes):
    outcome = benchmark.pedantic(
        _run_technique, args=("nip", quick_timeline), rounds=1, iterations=1
    )
    assert outcome.ratio > 0.5  # paper: ~0.75

    # Shape assertions across techniques (module-scoped runs).
    o = all_outcomes
    assert o["nip"].ratio > o["avp"].ratio > o["hp"].ratio
    assert o["none"].ratio < 0.05
    assert o["nip"].failure_mbps > 0 and o["avp"].failure_mbps > 0


def test_figure4_no_deflection_stops(benchmark, all_outcomes, quick_timeline):
    benchmark(lambda: None)  # assertions below; runs under --benchmark-only
    none = all_outcomes["none"]
    # Zero goodput while the link is down...
    in_window = [
        mbps for t, mbps in none.iperf.intervals
        if quick_timeline.failure_window[0] + 0.5 < t
        <= quick_timeline.failure_window[1]
    ]
    assert max(in_window, default=0.0) < 1.0
    # ...and recovery after repair.
    post = [
        mbps for t, mbps in none.iperf.intervals
        if t > quick_timeline.repair_at + 1.0
    ]
    assert max(post, default=0.0) > 0.3 * none.baseline_mbps


def test_figure4_deflection_bounds_disordering(benchmark, all_outcomes):
    benchmark(lambda: None)  # assertions below; runs under --benchmark-only
    # The paper's core claim: driven deflection *bounds* disordering.
    nip = all_outcomes["nip"].iperf.reordering
    assert nip.reordered_ratio < 0.25
