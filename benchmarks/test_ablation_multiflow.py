"""Ablation: flow isolation under deflection.

When one flow's path fails and its packets start deflecting through
the network, what happens to *other* flows?  Deflected traffic invades
links it never paid for — this ablation measures the collateral damage
on a bystander flow and checks the system-level claim implicit in the
paper's design: driven deflection confines the detour to the encoded
protection tree, so a bystander off that tree is unharmed.
"""

import pytest

from repro.runner import KarSimulation
from repro.topology.topologies import FULL, UNPROTECTED, fifteen_node

FAILURE = ("SW7", "SW13")


def _run(protection, timeline, seed=3):
    ks = KarSimulation(
        fifteen_node(rate_mbps=20.0, delay_s=0.0002),
        deflection="nip", protection=protection, seed=seed,
    )
    ks.schedule_failure(*FAILURE, at=timeline.fail_at,
                        repair_at=timeline.repair_at)
    victim = ks.add_iperf(sample_interval_s=timeline.sample_interval_s,
                          max_rto=1.0)
    # Bystander: H-AS2 -> H-AS3 rides only the SW29 edge links — off the
    # primary route and off the protection tree.
    bystander = ks.add_iperf(src_host="H-AS2", dst_host="H-AS3",
                             sample_interval_s=timeline.sample_interval_s,
                             max_rto=1.0)
    duration = timeline.end - timeline.flow_start
    victim.start(at=timeline.flow_start, duration_s=duration)
    bystander.start(at=timeline.flow_start, duration_s=duration)
    ks.run(until=timeline.end)

    def window_ratio(flow):
        res = flow.result()
        base = res.mean_mbps_between(*timeline.baseline_window)
        during = res.mean_mbps_between(*timeline.failure_window)
        return during / base if base else 0.0

    return window_ratio(victim), window_ratio(bystander)


def test_ablation_multiflow(benchmark, quick_timeline):
    victim_ratio, bystander_ratio = benchmark.pedantic(
        _run, args=(FULL, quick_timeline), rounds=1, iterations=1
    )
    # The failing flow pays; the bystander keeps (essentially) all of
    # its share.
    assert bystander_ratio > 0.85
    assert victim_ratio > 0.3  # the victim still survives via deflection


def test_ablation_multiflow_unprotected_also_isolated(benchmark, quick_timeline):
    benchmark(lambda: None)  # assertions below; runs under --benchmark-only
    # Even unprotected wandering is rate-limited by the victim's own
    # congestion control, so the bystander — sharing only the SW29
    # locality — keeps the bulk of its throughput.
    victim_ratio, bystander_ratio = _run(UNPROTECTED, quick_timeline)
    assert bystander_ratio > 0.6
