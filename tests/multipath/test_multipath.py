"""Tests for the multipath extension."""

import pytest

from repro.multipath import (
    FAILOVER,
    FLOW_HASH,
    ROUND_ROBIN,
    MultipathEdgeNode,
    install_multipath_flow,
    link_disjoint_paths,
)
from repro.runner import KarSimulation
from repro.switches.edge import IngressEntry
from repro.topology import fifteen_node, redundant_path
from repro.topology.paths import path_links


@pytest.fixture
def ks():
    return KarSimulation(
        fifteen_node(rate_mbps=50.0, delay_s=0.0002),
        deflection="nip",
        protection="unprotected",
        seed=1,
        edge_node_cls=MultipathEdgeNode,
        install_primary_flow=False,
    )


class TestDisjointPaths:
    def test_two_disjoint_paths_on_fifteen(self, ks):
        g = ks.scenario.graph
        paths = link_disjoint_paths(g, "E-AS1", "E-AS3")
        assert len(paths) == 2
        core_links = [
            {l for l in path_links(p)
             if g.node(l[0]).kind == "core" and g.node(l[1]).kind == "core"}
            for p in paths
        ]
        assert not core_links[0] & core_links[1]

    def test_paths_shortest_first(self, ks):
        paths = link_disjoint_paths(ks.scenario.graph, "E-AS1", "E-AS3")
        assert len(paths[0]) <= len(paths[1])

    def test_single_path_when_no_alternative(self):
        scn = redundant_path()
        # E-SRC's only useful disjointness lives beyond SW41/SW73.
        paths = link_disjoint_paths(scn.graph, "E-SRC", "E-DST", max_paths=4)
        assert len(paths) >= 2  # via SW107 and via SW109

    def test_bad_max_paths(self, ks):
        with pytest.raises(ValueError):
            link_disjoint_paths(ks.scenario.graph, "E-AS1", "E-AS3", 0)


class TestInstall:
    def test_requires_multipath_edges(self):
        plain = KarSimulation(fifteen_node(), seed=0,
                              install_primary_flow=False)
        with pytest.raises(TypeError, match="MultipathEdgeNode"):
            install_multipath_flow(plain, "H-AS1", "H-AS3")

    def test_routes_installed_both_ways(self, ks):
        fwd, rev = install_multipath_flow(ks, "H-AS1", "H-AS3")
        assert len(fwd) == 2 and len(rev) == 2
        ingress = ks.network.node("E-AS1")
        assert len(ingress.multipath_entries("H-AS3")) == 2
        egress = ks.network.node("E-AS3")
        assert len(egress.multipath_entries("H-AS1")) == 2


class TestPolicies:
    def _mk_edge(self):
        import random

        from repro.sim import Link, Simulator
        from repro.sim.node import Node

        class Sink(Node):
            def __init__(self, name, sim):
                super().__init__(name, sim, 1)
                self.count = 0

            def receive(self, packet, in_port):
                self.count += 1

        sim = Simulator()
        edge = MultipathEdgeNode("E", sim, 3)
        sinks = [Sink(f"S{i}", sim) for i in range(2)]
        links = [Link(sim, edge, i, sinks[i], 0, delay_s=1e-4)
                 for i in range(2)]
        host = Sink("H", sim)
        Link(sim, edge, 2, host, 0, delay_s=1e-4)
        edge.serve_host("H", 2)
        entries = [
            IngressEntry(route_id=100 + i, modulus=1000, out_port=i)
            for i in range(2)
        ]
        return sim, edge, sinks, links, entries

    def _pkt(self, flow="f"):
        from repro.sim.packet import Packet
        from repro.transport.tcp import TcpSegment

        return Packet(src_host="H", dst_host="D", size_bytes=100,
                      payload=TcpSegment(flow_id=flow))

    def test_round_robin_alternates(self):
        sim, edge, sinks, links, entries = self._mk_edge()
        edge.install_multipath("D", entries, policy=ROUND_ROBIN)
        for _ in range(6):
            edge.receive(self._pkt(), in_port=2)
        sim.run()
        assert sinks[0].count == 3 and sinks[1].count == 3

    def test_flow_hash_is_stable_per_flow(self):
        sim, edge, sinks, links, entries = self._mk_edge()
        edge.install_multipath("D", entries, policy=FLOW_HASH)
        for _ in range(5):
            edge.receive(self._pkt("flow-a"), in_port=2)
        sim.run()
        assert sorted([sinks[0].count, sinks[1].count]) == [0, 5]

    def test_failover_switches_on_local_outage(self):
        sim, edge, sinks, links, entries = self._mk_edge()
        edge.install_multipath("D", entries, policy=FAILOVER)
        edge.receive(self._pkt(), in_port=2)
        sim.run_until(0.01)  # let the first packet land before the cut
        links[0].set_up(False)
        edge.receive(self._pkt(), in_port=2)
        edge.receive(self._pkt(), in_port=2)
        sim.run_until(0.02)
        assert sinks[0].count == 1
        assert sinks[1].count == 2
        assert edge.failovers == 2

    def test_failover_all_down_drops(self):
        sim, edge, sinks, links, entries = self._mk_edge()
        edge.install_multipath("D", entries, policy=FAILOVER)
        links[0].set_up(False)
        links[1].set_up(False)
        edge.receive(self._pkt(), in_port=2)
        sim.run()
        assert edge.drops == 1

    def test_set_preferred_rotates(self):
        sim, edge, sinks, links, entries = self._mk_edge()
        edge.install_multipath("D", entries, policy=FAILOVER)
        edge.set_preferred("D", 1)
        edge.receive(self._pkt(), in_port=2)
        sim.run()
        assert sinks[1].count == 1

    def test_set_preferred_validation(self):
        sim, edge, sinks, links, entries = self._mk_edge()
        edge.install_multipath("D", entries)
        with pytest.raises(IndexError):
            edge.set_preferred("D", 5)
        with pytest.raises(KeyError):
            edge.set_preferred("X", 0)

    def test_unknown_policy(self):
        sim, edge, sinks, links, entries = self._mk_edge()
        with pytest.raises(ValueError, match="policy"):
            edge.install_multipath("D", entries, policy="ecmp5")
        with pytest.raises(ValueError, match="at least one"):
            edge.install_multipath("D", [])


class TestEndToEnd:
    def test_fig8_failover_beats_deflection(self):
        # The redundant-path worst case, solved by multipath: encode the
        # SW109 branch as a standby key; after the failure the
        # controller flips the preferred key — delivery stays perfect
        # with only one extra... zero extra hops.
        scn = redundant_path(rate_mbps=50.0, delay_s=0.0002)
        ks = KarSimulation(scn, deflection="nip", protection="unprotected",
                           seed=2, edge_node_cls=MultipathEdgeNode,
                           install_primary_flow=False)
        install_multipath_flow(ks, "H-SRC", "H-DST", policy=FAILOVER)
        ks.schedule_failure("SW73", "SW107", at=0.5)
        # Controller flips the standby key one control-RTT later.
        ingress = ks.network.node("E-SRC")
        ks.sim.schedule_at(0.505, ingress.set_preferred, "H-DST", 1)
        src, sink = ks.add_udp_probe(rate_pps=300, duration_s=2.0)
        src.start(at=1.0)
        ks.run(until=5.0)
        assert sink.received == src.sent
        # The strictly link-disjoint standby runs the long way around
        # (6 core hops, deterministic) — still shorter than deflection's
        # geometric retry, whose expected total is 2 + 6 = 8 hops, and
        # with zero reordering.
        assert sink.mean_hops() == pytest.approx(6.0)

    def test_round_robin_spraying_reorders_tcp(self):
        # Load balancing across the two disjoint 15-node paths with
        # per-packet round robin: throughput holds but reordering is
        # visible — the classic ECMP-vs-spraying trade-off.
        ks = KarSimulation(
            fifteen_node(rate_mbps=20.0, delay_s=0.0002),
            deflection="nip", protection="unprotected", seed=3,
            edge_node_cls=MultipathEdgeNode, install_primary_flow=False,
        )
        install_multipath_flow(ks, "H-AS1", "H-AS3", policy=ROUND_ROBIN,
                               reverse_policy=FLOW_HASH)
        flow = ks.add_iperf(src_host="H-AS1", dst_host="H-AS3")
        flow.start(at=0.2, duration_s=3.8)
        ks.run(until=4.0)
        res = flow.result()
        assert res.mean_mbps > 5.0
        assert res.reordering.reordered > 0
