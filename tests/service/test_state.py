"""The controller state machine: flow lifecycle, repair, determinism."""

import pytest

from repro.controller.provision import ProvisionError
from repro.rns.crt import crt
from repro.service.state import ControllerState, UnknownFlowError
from repro.service.topology import service_topology
from repro.topology import NodeKind


def fresh(topology="six_node"):
    return ControllerState(service_topology(topology), validated_pool=True)


class TestProvision:
    def test_paper_route_on_six_node(self):
        state = fresh()
        record = state.provision("t0", "E-S", "E-D")
        # The canonical Section 2.2 example: E-S→SW4→SW7→SW11→E-D
        # encodes to route ID 44 under modulus 308.
        assert record.node_path == ("E-S", "SW4", "SW7", "SW11", "E-D")
        assert (record.route.route_id, record.route.modulus) == (44, 308)
        assert record.qos is False
        assert record.flow_id == "f00000001"

    def test_flow_ids_are_sequential(self):
        state = fresh()
        a = state.provision("t0", "E-S", "E-D")
        b = state.provision("t1", "E-D", "E-S")
        assert [a.flow_id, b.flow_id] == ["f00000001", "f00000002"]

    def test_qos_flow_reserves_bandwidth(self):
        state = fresh()
        record = state.provision("t0", "E-S", "E-D", bandwidth_mbps=10.0)
        assert record.qos is True
        held = state.ledger.flow_reservation(record.flow_id)
        assert held is not None and held[0] == 10.0
        assert state.audit() == []
        state.release(record.flow_id)
        assert state.ledger.flow_reservation(record.flow_id) is None

    def test_latency_only_flow_is_qos_without_reservation(self):
        state = fresh()
        record = state.provision("t0", "E-S", "E-D", max_latency_s=1.0)
        assert record.qos is True
        assert state.ledger.flow_reservation(record.flow_id) is None

    def test_route_matches_reference_crt(self):
        state = fresh("torus33")
        record = state.provision("t0", "E-SW0-0", "E-SW2-2")
        residues = sorted(record.route.residue_map().items())
        ref = crt([p for _, p in residues], [s for s, _ in residues])
        assert ref == (record.route.route_id, record.route.modulus)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ProvisionError) as exc:
            fresh().provision("t0", "E-S", "E-D", bandwidth_mbps=-1.0)
        assert exc.value.reason == "bad-request"

    def test_release_unknown_flow(self):
        with pytest.raises(UnknownFlowError):
            fresh().release("f99999999")

    def test_list_flows_filters_by_tenant(self):
        state = fresh()
        state.provision("alice", "E-S", "E-D")
        state.provision("bob", "E-D", "E-S")
        assert [f.tenant for f in state.list_flows()] == ["alice", "bob"]
        assert [f.tenant for f in state.list_flows("bob")] == ["bob"]


class TestReroute:
    def test_best_effort_detour(self):
        state = fresh()
        record = state.provision("t0", "E-S", "E-D")
        rerouted = state.reroute(record.flow_id, "SW7", "SW5")
        assert rerouted.detoured is True
        assert rerouted.route.residue_map()[7] == \
            state.graph.port_of("SW7", "SW5")
        # Untouched hops keep their residues — the incremental contract.
        for sid, port in record.route.residue_map().items():
            if sid != 7:
                assert rerouted.route.residue_map()[sid] == port

    def test_reserved_flow_refused(self):
        state = fresh()
        record = state.provision("t0", "E-S", "E-D", bandwidth_mbps=5.0)
        with pytest.raises(ProvisionError) as exc:
            state.reroute(record.flow_id, "SW7", "SW5")
        assert exc.value.reason == "qos-reroute-unsupported"

    def test_unknown_flow(self):
        with pytest.raises(UnknownFlowError):
            fresh().reroute("f00000042", "SW7", "SW5")


class TestTopologyEvents:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ProvisionError) as exc:
            fresh().topology_event("meteor_strike", "SW4", "SW7")
        assert exc.value.reason == "bad-request"

    def test_link_down_repairs_off_the_failed_link(self):
        state = fresh()
        record = state.provision("t0", "E-S", "E-D")
        a, b = record.node_path[2], record.node_path[3]
        summary = state.topology_event("link_down", a, b)
        assert summary["changed"] is True
        assert summary["repaired"] == [record.flow_id]
        repaired = state.flow(record.flow_id)
        down = state.engine.down_links
        assert all(key not in down for key in repaired.links)
        assert repaired.repairs == 1
        assert state.audit() == []

    def test_link_up_restores(self):
        state = fresh()
        state.topology_event("link_down", "SW4", "SW7")
        summary = state.topology_event("link_up", "SW4", "SW7")
        assert summary["changed"] is True
        assert state.engine.down_links == frozenset()

    def test_port_flap_leaves_link_up_but_repairs(self):
        state = fresh()
        record = state.provision("t0", "E-S", "E-D")
        a, b = record.node_path[2], record.node_path[3]
        summary = state.topology_event("port_flap", a, b)
        assert summary["repaired"] == [record.flow_id]
        assert state.engine.down_links == frozenset()

    def test_qos_repair_moves_the_reservation(self):
        state = fresh("torus33")
        record = state.provision(
            "t0", "E-SW0-0", "E-SW2-2", bandwidth_mbps=10.0
        )
        a, b = record.node_path[1], record.node_path[2]
        state.topology_event("link_down", a, b)
        repaired = state.flow(record.flow_id)
        held = state.ledger.flow_reservation(record.flow_id)
        assert held is not None
        assert held[1] == repaired.links
        assert state.audit() == []

    def test_eviction_when_no_compliant_path_survives(self):
        state = fresh()
        record = state.provision("t0", "E-S", "E-D", bandwidth_mbps=10.0)
        # Cut every core link that reaches E-D's attachment switch.
        dst_switch = record.node_path[-2]
        evicted = {}
        for neighbor in sorted(state.graph.neighbors(dst_switch)):
            if state.graph.node(neighbor).kind == NodeKind.CORE:
                summary = state.topology_event(
                    "link_down", dst_switch, neighbor
                )
                evicted.update(summary["evicted"])
        assert evicted.get(record.flow_id) == "no-route"
        assert record.flow_id not in state.flows
        assert state.ledger.flow_reservation(record.flow_id) is None
        assert state.evicted == {"no-route": 1}
        assert state.audit() == []

    def test_best_effort_repair_stays_incremental(self):
        state = fresh("torus33")
        records = [
            state.provision("t0", "E-SW0-0", "E-SW2-2") for _ in range(3)
        ]
        before = state.engine.stats()
        a, b = records[0].node_path[1], records[0].node_path[2]
        state.topology_event("link_down", a, b)
        after = state.engine.stats()
        # Same-switch-set repairs fold through ReencodeDelta; no repair
        # may ever hit the full CRT solver or the fallback encoder.
        assert after["delta"]["full_solves"] == before["delta"]["full_solves"]
        assert after["encoder"]["fallback"] == before["encoder"]["fallback"]
        assert state.audit() == []


class TestDeterminism:
    OPS = [
        ("provision", ("t0", "E-S", "E-D", 0.0)),
        ("provision", ("t1", "E-D", "E-S", 5.0)),
        ("event", ("port_flap", "SW7", "SW11")),
        ("provision", ("t0", "E-S", "E-D", 0.0)),
        ("release", ("f00000001",)),
        ("event", ("link_down", "SW5", "SW7")),
        ("event", ("link_up", "SW5", "SW7")),
    ]

    @staticmethod
    def _transcript(state):
        log = []
        for op, args in TestDeterminism.OPS:
            if op == "provision":
                tenant, src, dst, bw = args
                record = state.provision(tenant, src, dst,
                                         bandwidth_mbps=bw)
                log.append((record.flow_id, record.route.route_id,
                            record.route.modulus, record.node_path))
            elif op == "release":
                log.append(state.release(*args).flow_id)
            else:
                log.append(tuple(sorted(state.topology_event(*args).items(),
                                        key=lambda kv: kv[0])))
        log.append(sorted(state.flows))
        return log

    def test_identical_op_sequences_are_bit_identical(self):
        assert self._transcript(fresh()) == self._transcript(fresh())

    def test_stats_are_json_shaped(self):
        state = fresh()
        state.provision("t0", "E-S", "E-D", bandwidth_mbps=1.0)
        stats = state.stats()
        assert set(stats) == {"service", "admission", "engine"}
        assert stats["service"]["flows_live"] == 1
        view = state.topology_view()
        assert view["epoch"] == state.engine.epoch
        assert all(link["up"] for link in view["links"])
