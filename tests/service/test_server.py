"""The HTTP layer: dispatch routing, framing, and concurrent clients.

The concurrency test is the issue's safety satellite: many client
threads churning QoS flows against one live server, then the service
audit must show reservations conserved, nothing oversubscribed, and no
orphaned ledger entries.
"""

import threading

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ServiceThread, dispatch
from repro.service.state import ControllerState
from repro.service.topology import service_topology


@pytest.fixture()
def state():
    return ControllerState(service_topology("six_node"),
                           validated_pool=True)


class TestDispatchRouting:
    def test_healthz(self, state):
        assert dispatch(state, "GET", "/healthz", {}, None) == \
            (200, {"ok": True})

    def test_unknown_path_is_404(self, state):
        status, payload = dispatch(state, "GET", "/nope", {}, None)
        assert status == 404 and payload["error"] == "not-found"

    def test_unknown_method_is_405(self, state):
        status, payload = dispatch(state, "PUT", "/flows", {}, {})
        assert status == 405 and payload["error"] == "method-not-allowed"

    def test_provision_and_fetch(self, state):
        status, payload = dispatch(
            state, "POST", "/flows", {},
            {"tenant": "t0", "src": "E-S", "dst": "E-D"},
        )
        assert status == 201
        flow = payload["flow"]
        assert (flow["route_id"], flow["modulus"]) == (44, 308)
        status, fetched = dispatch(
            state, "GET", f"/flows/{flow['flow_id']}", {}, None
        )
        assert status == 200 and fetched["flow"] == flow

    def test_provision_missing_fields_is_400(self, state):
        status, payload = dispatch(state, "POST", "/flows", {}, {})
        assert status == 400 and payload["error"] == "bad-request"

    def test_provision_non_json_body_is_400(self, state):
        status, payload = dispatch(state, "POST", "/flows", {}, None)
        assert status == 400 and payload["error"] == "bad-json"

    def test_unknown_flow_is_404(self, state):
        for method, path in (
            ("GET", "/flows/f404"), ("DELETE", "/flows/f404"),
        ):
            status, payload = dispatch(state, method, path, {}, None)
            assert status == 404 and payload["error"] == "unknown-flow"

    def test_admission_rejection_is_409(self, state):
        too_much = max(l.rate_mbps for l in state.graph.links()) + 1
        status, payload = dispatch(
            state, "POST", "/flows", {},
            {"tenant": "t0", "src": "E-S", "dst": "E-D",
             "bandwidth_mbps": too_much},
        )
        assert status == 409
        assert payload["error"] == "insufficient-bandwidth"

    def test_provision_error_is_400(self, state):
        status, payload = dispatch(
            state, "POST", "/flows", {},
            {"tenant": "t0", "src": "E-S", "dst": "GHOST"},
        )
        assert status == 400 and payload["error"] == "unknown-node"

    def test_tenant_filter_via_query(self, state):
        for tenant in ("alice", "bob"):
            dispatch(state, "POST", "/flows", {},
                     {"tenant": tenant, "src": "E-S", "dst": "E-D"})
        status, payload = dispatch(
            state, "GET", "/flows", {"tenant": "bob"}, None
        )
        assert status == 200
        assert [f["tenant"] for f in payload["flows"]] == ["bob"]

    def test_topology_event_roundtrip(self, state):
        status, summary = dispatch(
            state, "POST", "/topology/events", {},
            {"kind": "link_down", "a": "SW7", "b": "SW11"},
        )
        assert status == 200 and summary["changed"] is True
        status, topo = dispatch(state, "GET", "/topology", {}, None)
        assert ["SW11", "SW7"] in topo["links_down"]

    def test_audit_endpoint(self, state):
        status, payload = dispatch(state, "GET", "/audit", {}, None)
        assert status == 200
        assert payload == {"ok": True, "violations": []}


class TestHttpTransport:
    def test_end_to_end_over_a_real_socket(self):
        graph = service_topology("six_node")
        with ServiceThread(graph, validated_pool=True) as service:
            client = ServiceClient("127.0.0.1", service.port)
            try:
                status, payload = client.get("/healthz")
                assert (status, payload) == (200, {"ok": True})
                status, payload = client.post(
                    "/flows",
                    {"tenant": "t0", "src": "E-S", "dst": "E-D"},
                )
                assert status == 201
                flow = payload["flow"]
                assert (flow["route_id"], flow["modulus"]) == (44, 308)
                status, payload = client.delete(
                    f"/flows/{flow['flow_id']}"
                )
                assert status == 200
                status, payload = client.get("/stats")
                assert payload["service"]["released"] == 1
            finally:
                client.close()

    def test_concurrent_tenants_conserve_reservations(self):
        graph = service_topology("torus33")
        n_threads, ops_each = 4, 12
        errors = []

        def churn(worker: int):
            client = ServiceClient("127.0.0.1", port)
            try:
                held = []
                for i in range(ops_each):
                    status, payload = client.post("/flows", {
                        "tenant": f"w{worker}",
                        "src": "E-SW0-0" if worker % 2 else "E-SW0-1",
                        "dst": "E-SW2-2",
                        "bandwidth_mbps": 3.0,
                    })
                    if status == 201:
                        held.append(payload["flow"]["flow_id"])
                    elif status != 409:
                        errors.append((worker, status, payload))
                    if i % 3 == 2 and held:
                        status, payload = client.delete(
                            f"/flows/{held.pop(0)}"
                        )
                        if status != 200:
                            errors.append((worker, status, payload))
                for flow_id in held:
                    status, payload = client.delete(f"/flows/{flow_id}")
                    if status != 200:
                        errors.append((worker, status, payload))
            finally:
                client.close()

        with ServiceThread(graph, validated_pool=True) as service:
            port = service.port
            threads = [
                threading.Thread(target=churn, args=(w,))
                for w in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            client = ServiceClient("127.0.0.1", port)
            try:
                status, audit = client.get("/audit")
                status2, stats = client.get("/stats")
            finally:
                client.close()

        assert errors == []
        # Reservations conserved: everything provisioned was released,
        # so no link holds bandwidth, no flow is live, no orphans.
        assert audit == {"ok": True, "violations": []}
        assert stats["service"]["flows_live"] == 0
        assert stats["admission"]["reserved_flows"] == 0
        assert stats["admission"]["reserved_mbps"] == {}
        accepted = stats["admission"]["accepted"]
        assert accepted == stats["admission"]["released"]
        rejected = sum(stats["admission"]["rejected"].values())
        assert accepted + rejected == n_threads * ops_each

    def test_run_sync_drives_the_same_state(self):
        graph = service_topology("six_node")
        with ServiceThread(graph, validated_pool=True) as service:
            # run_sync hops onto the event loop thread, so this direct
            # mutation cannot race the HTTP handlers.
            record = service.run_sync(
                ControllerState.provision, "t0", "E-S", "E-D"
            )
            client = ServiceClient("127.0.0.1", service.port)
            try:
                status, payload = client.get(
                    f"/flows/{record.flow_id}"
                )
            finally:
                client.close()
            assert status == 200
            assert payload["flow"]["route_id"] == record.route.route_id
