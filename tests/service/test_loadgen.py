"""The churn load generator: invariants, digests, farm integration."""

import dataclasses

import pytest

from repro.farm.executor import FarmOptions
from repro.farm.jobs import execute_spec, service_spec
from repro.farm.sweep import run_service_specs
from repro.service.loadgen import (
    ChurnReport,
    churn_record,
    churn_report_from_record,
    churn_rows,
    render_churn,
    run_churn,
)

QUICK = dict(topology="six_node", seed=3, users=40, operations=120,
             qos_fraction=0.4)


@pytest.fixture(scope="module")
def direct_report():
    return run_churn(transport="direct", **QUICK)


class TestChurnInvariants:
    def test_clean_run(self, direct_report):
        r = direct_report
        assert r.ok, (r.violations, r.bit_identity_mismatches)
        assert r.operations == 120
        assert r.violations == []
        assert r.bit_identity_mismatches == 0
        assert r.qos_violations == 0
        assert r.bit_identity_checked > 0
        assert r.drained is True

    def test_steady_state_is_incremental_only(self, direct_report):
        # The PR-5 promise, held under churn: the pooled/delta path
        # serves everything; the reference solver never runs.
        assert direct_report.encoder_fallbacks == 0
        assert direct_report.delta_full_solves == 0
        assert direct_report.incremental_only is True

    def test_deterministic_digest(self, direct_report):
        again = run_churn(transport="direct", **QUICK)
        assert again.digest == direct_report.digest
        assert dataclasses.asdict(again) == \
            dataclasses.asdict(direct_report)

    def test_seed_changes_digest(self, direct_report):
        other = run_churn(transport="direct", **{**QUICK, "seed": 4})
        assert other.digest != direct_report.digest

    def test_http_transport_same_digest(self, direct_report):
        # The tentpole transport-independence claim: one dispatch()
        # shared by both transports ⇒ byte-identical operation logs.
        http = run_churn(transport="http", **QUICK)
        assert http.ok
        assert http.digest == direct_report.digest

    def test_render_and_rows(self, direct_report):
        text = render_churn([direct_report])
        assert "six_node" in text and direct_report.digest in text
        (row,) = churn_rows([direct_report])
        assert row["digest"] == direct_report.digest
        assert row["ok"] is True


class TestChurnRecordRoundtrip:
    def test_report_record_report(self, direct_report):
        record = churn_record(direct_report)
        back = churn_report_from_record(record)
        assert isinstance(back, ChurnReport)
        assert back == direct_report


class TestFarmIntegration:
    def _specs(self):
        return [
            service_spec("six_node", seed, users=30, operations=80)
            for seed in (1, 2)
        ]

    def test_job_kind_runs_standalone(self):
        record = execute_spec(self._specs()[0])
        report = churn_report_from_record(record)
        assert report.ok and report.transport == "direct"

    def test_sweep_and_cache_hit(self, tmp_path):
        options = FarmOptions(cache_dir=str(tmp_path / "cache"),
                              progress=False, label="loadgen-test")
        first = run_service_specs(self._specs(), options=options)
        again = run_service_specs(self._specs(), options=options)
        assert [r.digest for r in first] == [r.digest for r in again]
        assert all(r.ok for r in first)
