"""Admission control: the reservation ledger and the CSPF solver.

The Hypothesis block is the satellite property from the issue: on
random connected topologies, any path CSPF *accepts* actually satisfies
the constraints it was asked for — every link carries the bandwidth on
top of existing reservations, the end-to-end delay fits the budget, no
failed link is used, and the path is simple edge→core*→edge.
"""

import pytest
from hypothesis import given, strategies as st

from repro.service.admission import (
    AdmissionError,
    ReservationLedger,
    cspf_path,
    path_link_keys,
)
from repro.service.topology import service_topology
from repro.topology import NodeKind
from repro.topology.generators import attach_edges, random_connected


@pytest.fixture(scope="module")
def six_node():
    return service_topology("six_node")


def _key(a, b):
    return tuple(sorted((a, b)))


class TestPathLinkKeys:
    def test_canonical_and_ordered(self, six_node):
        path = cspf_path(six_node, "E-S", "E-D")
        keys = path_link_keys(path)
        assert len(keys) == len(path) - 1
        for key, a, b in zip(keys, path, path[1:]):
            assert key == _key(a, b)


class TestReservationLedger:
    def test_reserve_then_release_conserves(self, six_node):
        ledger = ReservationLedger(six_node)
        path = cspf_path(six_node, "E-S", "E-D")
        keys = path_link_keys(path)
        before = {k: ledger.residual(k) for k in keys}
        ledger.reserve("f1", 10.0, keys)
        for k in keys:
            assert ledger.residual(k) == pytest.approx(before[k] - 10.0)
        assert ledger.release("f1") is True
        for k in keys:
            assert ledger.residual(k) == pytest.approx(before[k])
        assert ledger.accepted == 1 and ledger.released == 1
        assert ledger.audit(live_flow_ids=[]) == []

    def test_release_of_unreserved_flow_is_false(self, six_node):
        assert ReservationLedger(six_node).release("ghost") is False

    def test_failed_reserve_is_atomic(self, six_node):
        ledger = ReservationLedger(six_node)
        path = cspf_path(six_node, "E-S", "E-D")
        keys = path_link_keys(path)
        cap = min(ledger.capacity[k] for k in keys)
        ledger.reserve("f1", cap, keys)
        # Second flow over the same links cannot fit: the ledger must
        # reject without committing anything on any link.
        with pytest.raises(AdmissionError) as exc:
            ledger.reserve("f2", 1.0, keys)
        assert exc.value.reason == "insufficient-bandwidth"
        assert ledger.flow_reservation("f2") is None
        for k in keys:
            assert ledger.residual(k) == pytest.approx(
                ledger.capacity[k] - cap
            )
        assert ledger.rejected == {"insufficient-bandwidth": 1}
        assert ledger.audit(live_flow_ids=["f1"]) == []

    def test_caller_bugs_raise_value_error(self, six_node):
        ledger = ReservationLedger(six_node)
        keys = path_link_keys(cspf_path(six_node, "E-S", "E-D"))
        with pytest.raises(ValueError):
            ledger.reserve("f1", 0.0, keys)
        with pytest.raises(ValueError):
            ledger.reserve("f1", 5.0, [("NOPE", "NADA")])
        ledger.reserve("f1", 5.0, keys)
        with pytest.raises(ValueError):
            ledger.reserve("f1", 5.0, keys)  # duplicate flow ID

    def test_audit_flags_orphans(self, six_node):
        ledger = ReservationLedger(six_node)
        keys = path_link_keys(cspf_path(six_node, "E-S", "E-D"))
        ledger.reserve("f1", 5.0, keys)
        assert ledger.audit(live_flow_ids=["f1"]) == []
        violations = ledger.audit(live_flow_ids=[])
        assert violations and "orphaned" in violations[0]

    def test_stats_shape(self, six_node):
        ledger = ReservationLedger(six_node)
        keys = path_link_keys(cspf_path(six_node, "E-S", "E-D"))
        ledger.reserve("f1", 5.0, keys)
        stats = ledger.stats()
        assert stats["accepted"] == 1
        assert stats["reserved_flows"] == 1
        assert stats["links_with_reservations"] == len(set(keys))
        assert all(v == 5.0 for v in stats["reserved_mbps"].values())


class TestCspfPath:
    def test_endpoints_and_core_interior(self, six_node):
        path = cspf_path(six_node, "E-S", "E-D")
        assert path[0] == "E-S" and path[-1] == "E-D"
        for name in path[1:-1]:
            assert six_node.node(name).kind == NodeKind.CORE

    def test_deterministic(self, six_node):
        assert cspf_path(six_node, "E-S", "E-D") == cspf_path(
            six_node, "E-S", "E-D"
        )

    def test_same_edge_rejected(self, six_node):
        with pytest.raises(AdmissionError) as exc:
            cspf_path(six_node, "E-S", "E-S")
        assert exc.value.reason == "no-route"

    def test_non_edge_endpoint_rejected(self, six_node):
        with pytest.raises(AdmissionError) as exc:
            cspf_path(six_node, "SW4", "E-D")
        assert exc.value.reason == "no-route"

    def test_latency_budget_enforced(self, six_node):
        with pytest.raises(AdmissionError) as exc:
            cspf_path(six_node, "E-S", "E-D", max_latency_s=1e-12)
        assert exc.value.reason == "latency-exceeded"

    def test_bandwidth_beyond_any_link_rejected(self, six_node):
        too_much = max(l.rate_mbps for l in six_node.links()) + 1
        with pytest.raises(AdmissionError) as exc:
            cspf_path(six_node, "E-S", "E-D", bandwidth_mbps=too_much)
        assert exc.value.reason == "insufficient-bandwidth"

    def test_down_links_disconnect_to_no_route(self, six_node):
        down = frozenset(
            _key(a, b)
            for a, b in [
                (l.key[0], l.key[1])
                for l in six_node.links()
                if "E-D" in l.key
            ]
        )
        with pytest.raises(AdmissionError) as exc:
            cspf_path(six_node, "E-S", "E-D", down=down)
        assert exc.value.reason == "no-route"

    def test_reservations_steer_the_path(self, six_node):
        ledger = ReservationLedger(six_node)
        free = cspf_path(
            six_node, "E-S", "E-D", bandwidth_mbps=50.0,
            residual=ledger.residual,
        )
        # Soak the chosen path; the next identical ask must route
        # around it (or be rejected) — never share a saturated link.
        keys = path_link_keys(free)
        ledger.reserve("hog", min(ledger.capacity[k] for k in keys) - 10.0,
                       keys)
        try:
            second = cspf_path(
                six_node, "E-S", "E-D", bandwidth_mbps=50.0,
                residual=ledger.residual,
            )
        except AdmissionError as exc:
            assert exc.reason == "insufficient-bandwidth"
        else:
            for key in path_link_keys(second):
                assert ledger.residual(key) >= 50.0


@st.composite
def _admission_case(draw):
    """A random provisioning domain plus one QoS ask over it."""
    n = draw(st.integers(min_value=3, max_value=8))
    extra = draw(st.integers(min_value=0, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_connected(n, extra_links=extra, seed=seed)
    edges = attach_edges(graph)
    src = draw(st.sampled_from(edges))
    dst = draw(st.sampled_from([e for e in edges if e != src]))
    bandwidth = draw(st.floats(min_value=0.0, max_value=120.0))
    latency = draw(
        st.one_of(st.none(), st.floats(min_value=1e-4, max_value=1e-2))
    )
    # Pre-load the ledger with up to two background reservations so the
    # residual the solver sees is not just raw capacity.
    background = draw(st.integers(min_value=0, max_value=2))
    return graph, edges, src, dst, bandwidth, latency, background, seed


class TestCspfPropertyRandomTopologies:
    @given(_admission_case())
    def test_accepted_paths_satisfy_their_constraints(self, case):
        graph, edges, src, dst, bandwidth, latency, background, seed = case
        ledger = ReservationLedger(graph)
        for i in range(background):
            a, b = edges[i % len(edges)], edges[(i + 1) % len(edges)]
            if a == b:
                continue
            try:
                path = cspf_path(graph, a, b, bandwidth_mbps=30.0,
                                 residual=ledger.residual)
                ledger.reserve(f"bg{i}", 30.0, path_link_keys(path))
            except AdmissionError:
                pass
        try:
            path = cspf_path(
                graph, src, dst,
                bandwidth_mbps=bandwidth,
                max_latency_s=latency,
                residual=ledger.residual,
            )
        except AdmissionError as exc:
            assert exc.reason in (
                "insufficient-bandwidth", "latency-exceeded", "no-route"
            )
            return
        # Shape: simple path, edge endpoints, core interior, real links.
        assert path[0] == src and path[-1] == dst
        assert len(set(path)) == len(path)
        for name in path[1:-1]:
            assert graph.node(name).kind == NodeKind.CORE
        total_delay = 0.0
        for a, b in zip(path, path[1:]):
            link = graph.link(a, b)
            total_delay += link.delay_s
            if bandwidth > 0:
                assert ledger.residual(_key(a, b)) + 1e-9 >= bandwidth
        if latency is not None:
            assert total_delay <= latency + 1e-9
        # And the ledger must actually take it (accepted == admittable).
        if bandwidth > 0:
            ledger.reserve("accepted", bandwidth, path_link_keys(path))
            assert ledger.audit() == []
