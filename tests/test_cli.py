"""Tests for the command-line interface (fast commands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "fifteen_node"
        assert args.deflection == "nip"
        assert args.protection == "partial"

    def test_bad_deflection(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--deflection", "magic"])


class TestFastCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "43" in out and "Unprotected" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "KAR" in capsys.readouterr().out

    def test_topo_summary(self, capsys):
        assert main(["topo", "fifteen_node"]) == 0
        out = capsys.readouterr().out
        assert "15 core switches" in out
        assert "SW10 -> SW7 -> SW13 -> SW29" in out

    def test_topo_dot(self, capsys):
        assert main(["topo", "six_node", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("graph kar {")
        assert '"SW4"' in out

    def test_topo_all_scenarios(self, capsys):
        for name in ("six_node", "rnp28", "redundant_path"):
            assert main(["topo", name]) == 0


class TestRunCommand:
    def test_short_custom_run(self, capsys):
        rc = main([
            "run", "--scenario", "fifteen_node", "--deflection", "nip",
            "--protection", "partial", "--failure", "SW7-SW13",
            "--seed", "2", "--duration", "3.0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "% of baseline" in out

    def test_default_failure_case(self, capsys):
        rc = main(["run", "--duration", "3.0"])
        assert rc == 0
        assert "failure=SW10-SW7" in capsys.readouterr().out
