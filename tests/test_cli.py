"""Tests for the command-line interface (fast commands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "fifteen_node"
        assert args.deflection == "nip"
        assert args.protection == "partial"

    def test_bad_deflection(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--deflection", "magic"])


class TestFastCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "43" in out and "Unprotected" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "KAR" in capsys.readouterr().out

    def test_topo_summary(self, capsys):
        assert main(["topo", "fifteen_node"]) == 0
        out = capsys.readouterr().out
        assert "15 core switches" in out
        assert "SW10 -> SW7 -> SW13 -> SW29" in out

    def test_topo_dot(self, capsys):
        assert main(["topo", "six_node", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("graph kar {")
        assert '"SW4"' in out

    def test_topo_all_scenarios(self, capsys):
        for name in ("six_node", "rnp28", "redundant_path"):
            assert main(["topo", name]) == 0


class TestFarmParser:
    def test_figure_commands_grow_farm_flags(self):
        for command in ("fig4", "fig5", "fig7", "fig8", "report",
                        "chaos"):
            args = build_parser().parse_args([command])
            assert args.jobs == 1, command  # sequential by default
            assert args.cache_dir == ".repro-cache", command
            assert not args.no_cache and not args.refresh, command
            assert not args.resume, command
            assert args.progress is None, command  # auto on a tty

    def test_farm_flags_parse(self):
        args = build_parser().parse_args([
            "fig5", "--jobs", "4", "--cache-dir", "/tmp/c",
            "--refresh", "--resume", "--no-progress",
        ])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.refresh and args.resume
        assert args.progress is False

    def test_farm_bench_defaults(self):
        args = build_parser().parse_args(["farm", "bench"])
        assert args.farm_command == "bench"
        assert args.jobs == 4
        assert args.seeds == 4
        assert args.out == "BENCH_farm.json"
        assert args.cache_dir is None  # bench defaults to a temp dir

    def test_farm_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["farm"])


class TestBenchParser:
    def test_bench_sim_defaults(self):
        args = build_parser().parse_args(["bench", "sim"])
        assert args.bench_command == "sim"
        assert args.out == "BENCH_sim.json"
        assert args.sizes is None and args.strategies is None
        assert args.seed == 1 and args.repeats is None
        assert not args.quick
        assert args.modes is None  # None -> simbench runs every mode

    def test_bench_sim_modes_parse(self):
        args = build_parser().parse_args(
            ["bench", "sim", "--modes", "epoch"]
        )
        assert args.modes == ["epoch"]
        args = build_parser().parse_args(
            ["bench", "sim", "--modes", "des", "epoch"]
        )
        assert args.modes == ["des", "epoch"]

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "sim", "--modes", "warp"])

    def test_modes_literal_matches_bench_registry(self):
        from repro.bench.simbench import MODES
        from repro.cli import _BENCH_SIM_MODES

        assert sorted(_BENCH_SIM_MODES) == sorted(MODES)

    def test_bench_sim_flags_parse(self):
        args = build_parser().parse_args([
            "bench", "sim", "--quick", "--sizes", "small", "medium",
            "--strategies", "hp", "nip", "--repeats", "5",
        ])
        assert args.quick
        assert args.sizes == ["small", "medium"]
        assert args.strategies == ["hp", "nip"]
        assert args.repeats == 5

    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_bad_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "sim", "--sizes", "huge"])

    def test_sizes_literal_matches_bench_registry(self):
        # Same pattern as _CHAOS_MODES: the CLI keeps a literal copy so
        # the parser builds without importing the bench.
        from repro.bench.simbench import SIZES
        from repro.cli import _BENCH_SIZES

        assert sorted(_BENCH_SIZES) == sorted(SIZES)


class TestBenchProvisionParser:
    def test_defaults(self):
        args = build_parser().parse_args(["bench", "provision"])
        assert not args.quick
        assert args.cells is None
        assert args.seed == 1
        assert args.repeats is None
        assert args.shards is True
        assert args.out == "BENCH_provision.json"

    def test_flags(self):
        args = build_parser().parse_args([
            "bench", "provision", "--quick", "--cells", "abilene",
            "fat_tree4", "--seed", "7", "--repeats", "2", "--no-shards",
            "--out", "x.json",
        ])
        assert args.quick
        assert args.cells == ["abilene", "fat_tree4"]
        assert args.seed == 7
        assert args.repeats == 2
        assert args.shards is False
        assert args.out == "x.json"

    def test_bad_cell_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["bench", "provision", "--cells", "huge"]
            )

    def test_cells_literal_matches_bench_registry(self):
        # Same pattern as _BENCH_SIZES: the CLI keeps a literal copy so
        # the parser builds without importing numpy-backed bench code.
        from repro.bench.provisionbench import CELLS
        from repro.cli import _BENCH_PROVISION_CELLS

        assert sorted(_BENCH_PROVISION_CELLS) == sorted(CELLS)


class TestBenchEncodingParser:
    def test_defaults(self):
        args = build_parser().parse_args(["bench", "encoding"])
        assert args.bench_command == "encoding"
        assert not args.quick
        assert args.cells is None
        assert args.seed == 1
        assert args.repeats is None and args.iters is None
        assert args.out == "BENCH_encoding.json"

    def test_flags(self):
        args = build_parser().parse_args([
            "bench", "encoding", "--quick", "--cells", "abilene",
            "--seed", "9", "--repeats", "2", "--iters", "4",
            "--out", "x.json",
        ])
        assert args.quick
        assert args.cells == ["abilene"]
        assert args.seed == 9
        assert args.repeats == 2
        assert args.iters == 4
        assert args.out == "x.json"

    def test_bad_cell_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["bench", "encoding", "--cells", "fatman"]
            )

    def test_cells_literal_matches_bench_registry(self):
        # Same pattern as _BENCH_SIZES: the CLI keeps a literal copy so
        # the parser builds without importing the bench.
        from repro.bench.encodingbench import CELLS
        from repro.cli import _BENCH_ENCODING_CELLS

        assert sorted(_BENCH_ENCODING_CELLS) == sorted(CELLS)

    def test_backend_literal_matches_rns_registry(self):
        from repro.cli import _BACKEND_NAMES
        from repro.rns import BACKEND_NAMES

        assert _BACKEND_NAMES == BACKEND_NAMES


class TestProfileFlag:
    def test_off_by_default(self):
        assert build_parser().parse_args(["table1"]).profile is None

    def test_parses_before_subcommand(self):
        args = build_parser().parse_args(["--profile", "10", "table1"])
        assert args.profile == 10

    def test_profiled_command_runs_and_dumps_stats(self, capsys):
        assert main(["--profile", "5", "table2"]) == 0
        captured = capsys.readouterr()
        assert "KAR" in captured.out          # command output intact
        assert "cumulative" in captured.err   # profile on stderr


class TestFarmCachedCommands:
    def test_second_chaos_run_is_served_from_cache(self, tmp_path,
                                                   capsys):
        base = ["chaos", "--seed", "42", "--duration", "1.0",
                "--cache-dir", str(tmp_path / "c"), "--progress"]
        assert main(base) == 0
        first = capsys.readouterr()
        assert main(base) == 0
        second = capsys.readouterr()
        assert second.out == first.out  # identical rendered results
        assert "1 executed, 0 cached" in first.err
        assert "0 executed, 1 cached" in second.err


class TestChaosParser:
    def test_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.scenario == "fifteen_node"
        assert args.deflection == "nip"
        assert args.mode == "mtbf"
        assert args.seed == 42
        assert args.duration == 4.0
        assert not args.sweep
        assert not args.ctrl_outage

    def test_mode_literal_matches_registry(self):
        # The CLI keeps a literal copy so the parser builds without
        # importing the sim; it must never drift from the registry.
        from repro.cli import _CHAOS_MODES
        from repro.sim.chaos import CHAOS_MODES

        assert sorted(_CHAOS_MODES) == sorted(CHAOS_MODES)

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--mode", "entropy"])


class TestChaosCommand:
    def test_single_run_reports_invariants(self, capsys):
        rc = main(["chaos", "--seed", "42", "--duration", "1.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "digest" in out
        assert "invariant violations: none" in out

    def test_export_writes_rows(self, tmp_path, capsys):
        path = tmp_path / "chaos.csv"
        rc = main(["chaos", "--seed", "42", "--duration", "1.0",
                   "--export", str(path)])
        assert rc == 0
        text = path.read_text()
        assert text.splitlines()[0].startswith("scenario,technique,mode")
        assert "fifteen_node,nip,mtbf,42" in text

    def test_runs_are_bit_reproducible(self, capsys):
        assert main(["chaos", "--seed", "42", "--duration", "1.0"]) == 0
        first = capsys.readouterr().out
        assert main(["chaos", "--seed", "42", "--duration", "1.0"]) == 0
        second = capsys.readouterr().out
        assert first == second


class TestFrontierParser:
    def test_defaults(self):
        args = build_parser().parse_args(["frontier"])
        assert args.topologies == ["abilene", "clique", "torus"]
        assert args.schemes == ["hp", "avp", "nip", "ff", "arb"]
        assert args.max_failures == 3
        assert args.seeds == [42]
        assert not args.dynamic

    def test_literals_match_the_frontier_module(self):
        # The CLI keeps literal copies so the parser builds without
        # importing the experiment; they must never drift.
        from repro.cli import _FRONTIER_SCHEMES, _FRONTIER_TOPOLOGIES
        from repro.experiments.frontier import (
            FRONTIER_SCHEMES,
            FRONTIER_TOPOLOGIES,
        )

        assert sorted(_FRONTIER_TOPOLOGIES) == sorted(FRONTIER_TOPOLOGIES)
        assert sorted(_FRONTIER_SCHEMES) == sorted(FRONTIER_SCHEMES)

    def test_bad_choices_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frontier", "--topologies", "mobius"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frontier", "--schemes", "ospf"])


class TestFrontierCommand:
    def test_smoke_report_and_export(self, tmp_path, capsys):
        path = tmp_path / "frontier.csv"
        rc = main([
            "frontier", "--topologies", "clique",
            "--schemes", "nip", "arb", "--max-failures", "1",
            "--no-cache", "--no-progress", "--export", str(path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "frontier — clique" in out
        assert "invariant violations: 0" in out
        header = path.read_text().splitlines()[0]
        assert header.startswith("topology,scheme,mode")


class TestVerifyParser:
    def test_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.trials == 50
        assert args.seed == 0
        assert args.oracles is None
        assert not args.shrink
        assert args.artifact_dir == "verify-artifacts"
        assert args.replay is None
        # Caching is opt-in for verify: a cache key covers the spec,
        # not the code under test.
        assert args.cache_dir is None
        assert args.jobs == 1

    def test_oracle_subset_parses(self):
        args = build_parser().parse_args(
            ["verify", "--oracles", "wire", "strategy", "--shrink"]
        )
        assert args.oracles == ["wire", "strategy"]
        assert args.shrink

    def test_bad_oracle_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--oracles", "vibes"])

    def test_oracle_literal_matches_registry(self):
        # The CLI keeps a literal copy so the parser builds without
        # importing the verifier; it must never drift from the registry.
        from repro.cli import _ORACLE_NAMES
        from repro.verify.oracles import ORACLE_NAMES

        assert _ORACLE_NAMES == ORACLE_NAMES


class TestVerifyCommand:
    def test_smoke_run_is_clean(self, tmp_path, capsys):
        rc = main([
            "verify", "--trials", "2", "--seed", "3",
            "--oracles", "strategy", "wire",
            "--artifact-dir", str(tmp_path / "artifacts"),
            "--no-progress",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 trials (seed 3)" in out
        assert "no divergences" in out
        assert not (tmp_path / "artifacts").exists()

    def test_replay_of_clean_artifact_reports_fixed(self, tmp_path,
                                                    capsys):
        from repro.verify.artifact import artifact_record, write_artifact
        from repro.verify.cases import generate_case

        path = write_artifact(
            str(tmp_path / "repro.json"),
            artifact_record("wire", generate_case(1), ["stale detail"]),
        )
        assert main(["verify", "--replay", path]) == 0
        out = capsys.readouterr().out
        assert "replayed [wire]" in out
        assert "no longer reproduces" in out


class TestRunCommand:
    def test_short_custom_run(self, capsys):
        rc = main([
            "run", "--scenario", "fifteen_node", "--deflection", "nip",
            "--protection", "partial", "--failure", "SW7-SW13",
            "--seed", "2", "--duration", "3.0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "% of baseline" in out

    def test_default_failure_case(self, capsys):
        rc = main(["run", "--duration", "3.0"])
        assert rc == 0
        assert "failure=SW10-SW7" in capsys.readouterr().out


class TestServiceParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.topology == "torus33"
        assert args.host == "127.0.0.1"
        assert args.port == 8423

    def test_serve_bad_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--topology", "mobius"])

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.topology == "torus33"
        assert args.seeds == [0, 1]
        assert args.users == 2000 and args.ops == 4000
        assert args.qos == 0.3
        assert args.transport == "http"
        assert args.export is None
        assert args.jobs == 1  # farm flags attached

    def test_loadgen_bad_transport_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--transport", "smtp"])

    def test_bench_service_defaults(self):
        args = build_parser().parse_args(["bench", "service"])
        assert args.bench_command == "service"
        assert args.out == "BENCH_service.json"
        assert args.seed == 1 and args.repeats is None
        assert not args.quick

    def test_topologies_literal_matches_service_registry(self):
        # Same pattern as _BENCH_SIZES: the CLI keeps a literal copy so
        # the parser builds without importing the service package.
        from repro.cli import _SERVICE_TOPOLOGIES
        from repro.service.topology import SERVICE_TOPOLOGIES

        assert sorted(_SERVICE_TOPOLOGIES) == sorted(SERVICE_TOPOLOGIES)


class TestLoadgenCommand:
    def test_small_direct_churn_run(self, capsys):
        rc = main([
            "loadgen", "--topology", "six_node", "--seeds", "1",
            "--users", "20", "--ops", "60", "--transport", "direct",
            "--no-cache", "--no-progress",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[OK] six_node" in out and "0 total violations" in out
