"""Tests for the static protection-coverage analysis.

These encode the paper's own candidate-by-candidate narratives and
check that `analyze_failure` reproduces them mechanically.
"""

import pytest

from repro.analysis.coverage import Fate, analyze_failure
from repro.topology import (
    FULL,
    PARTIAL,
    UNPROTECTED,
    fifteen_node,
    redundant_path,
    rnp28,
)


@pytest.fixture(scope="module")
def fifteen():
    return fifteen_node()


@pytest.fixture(scope="module")
def rnp():
    return rnp28()


def _outcomes_by_candidate(report):
    return {o.candidate: o for o in report.outcomes}


class TestFifteenNode:
    def test_sw10_failure_partial_is_one_third(self, fifteen):
        # Paper: "there is still 2/3 of packets that will be sent to
        # switches SW17 or SW37".
        report = analyze_failure(
            fifteen.graph, fifteen.primary_route, "E-AS3",
            fifteen.segments(PARTIAL), ("SW10", "SW7"),
        )
        assert report.delivered_fraction == pytest.approx(1 / 3)
        assert report.wandering_fraction == pytest.approx(2 / 3)
        by = _outcomes_by_candidate(report)
        assert by["SW11"].fate == Fate.DRIVEN
        assert by["SW17"].fate == Fate.WANDERING
        assert by["SW37"].fate == Fate.WANDERING

    def test_sw10_failure_full_covers_everything(self, fifteen):
        report = analyze_failure(
            fifteen.graph, fifteen.primary_route, "E-AS3",
            fifteen.segments(FULL), ("SW10", "SW7"),
        )
        assert report.delivered_fraction == pytest.approx(1.0)
        assert all(o.fate == Fate.DRIVEN for o in report.outcomes)

    def test_sw7_failure_partial_equals_full(self, fifteen):
        # Paper: partial had "similar resilient routing than full" here.
        for level in (PARTIAL, FULL):
            report = analyze_failure(
                fifteen.graph, fifteen.primary_route, "E-AS3",
                fifteen.segments(level), ("SW7", "SW13"),
            )
            assert report.delivered_fraction == pytest.approx(1.0), level
        by = _outcomes_by_candidate(report)
        # SW9 is never encoded; it delivers because NIP forces the
        # degree-2 rejoin (FORCED, not DRIVEN).
        assert by["SW9"].fate == Fate.FORCED
        assert by["SW11"].fate == Fate.DRIVEN

    def test_sw13_failure_partial_equals_full(self, fifteen):
        for level in (PARTIAL, FULL):
            report = analyze_failure(
                fifteen.graph, fifteen.primary_route, "E-AS3",
                fifteen.segments(level), ("SW13", "SW29"),
            )
            # SW23/SW31 driven, SW19 forced; only the SW9 branch (which
            # bounces back through SW7 to the deflection point)
            # re-randomizes.  Partial and full behave identically.
            assert report.delivered_fraction == pytest.approx(3 / 4), level
            by = _outcomes_by_candidate(report)
            assert by["SW23"].fate == Fate.DRIVEN
            assert by["SW31"].fate == Fate.DRIVEN
            assert by["SW19"].fate == Fate.FORCED
            assert by["SW9"].fate == Fate.WANDERING

    def test_unprotected_still_has_forced_paths(self, fifteen):
        report = analyze_failure(
            fifteen.graph, fifteen.primary_route, "E-AS3",
            fifteen.segments(UNPROTECTED), ("SW7", "SW13"),
        )
        by = _outcomes_by_candidate(report)
        assert by["SW9"].fate == Fate.FORCED    # degree-2 rejoin
        assert by["SW11"].fate == Fate.WANDERING

    def test_candidate_probabilities_uniform(self, fifteen):
        report = analyze_failure(
            fifteen.graph, fifteen.primary_route, "E-AS3",
            fifteen.segments(PARTIAL), ("SW13", "SW29"),
        )
        probs = [o.probability for o in report.outcomes]
        assert sum(probs) == pytest.approx(1.0)
        assert len(set(probs)) == 1

    def test_bad_failure_link_rejected(self, fifteen):
        with pytest.raises(Exception, match="not on the route"):
            analyze_failure(
                fifteen.graph, fifteen.primary_route, "E-AS3",
                (), ("SW43", "SW47"),
            )


class TestRnp:
    def test_sw7_failure_single_forced_alternative(self, rnp):
        # Paper: "the only alternative path is to SW11 and, then, to
        # SW17" — SW17 is covered, so delivery is deterministic.
        report = analyze_failure(
            rnp.graph, rnp.primary_route, "E-SP",
            rnp.segments(PARTIAL), ("SW7", "SW13"),
        )
        assert len(report.outcomes) == 1
        (outcome,) = report.outcomes
        assert outcome.candidate == "SW11"
        assert outcome.fate == Fate.FORCED
        assert "SW17" in outcome.path and "SW71" in outcome.path

    def test_sw13_failure_five_candidates_two_covered(self, rnp):
        report = analyze_failure(
            rnp.graph, rnp.primary_route, "E-SP",
            rnp.segments(PARTIAL), ("SW13", "SW41"),
        )
        by = _outcomes_by_candidate(report)
        assert set(by) == {"SW29", "SW17", "SW47", "SW37", "SW71"}
        assert by["SW17"].fate == Fate.DRIVEN
        assert by["SW71"].fate == Fate.DRIVEN
        # Paper: "the other three nodes ... will be deflected until it
        # finds a node that is part of the main route or protection".
        for wanderer in ("SW29", "SW47", "SW37"):
            assert by[wanderer].fate == Fate.WANDERING
        assert report.delivered_fraction == pytest.approx(2 / 5)

    def test_sw41_failure_both_candidates_driven(self, rnp):
        report = analyze_failure(
            rnp.graph, rnp.primary_route, "E-SP",
            rnp.segments(PARTIAL), ("SW41", "SW73"),
        )
        by = _outcomes_by_candidate(report)
        assert set(by) == {"SW17", "SW61"}
        assert all(o.fate == Fate.DRIVEN for o in report.outcomes)
        assert report.delivered_fraction == pytest.approx(1.0)


class TestRedundantPath:
    def test_coin_flip(self):
        scn = redundant_path()
        report = analyze_failure(
            scn.graph, scn.primary_route, "E-DST",
            scn.segments(PARTIAL), ("SW73", "SW107"),
        )
        by = _outcomes_by_candidate(report)
        assert set(by) == {"SW109", "SW71"}
        # SW109 branch: forced degree-2 rejoin to the destination.
        assert by["SW109"].fate == Fate.FORCED
        # SW71 branch: the driven protection loop returns to SW73, where
        # the next coin flip is probabilistic — the walk classifies it
        # WANDERING at the retry point (the paper's geometric retry).
        assert by["SW71"].fate == Fate.WANDERING
        assert "SW17" in by["SW71"].path and "SW41" in by["SW71"].path
        assert by["SW71"].path[-1] == "SW73"  # ...back at the coin
