"""Tests for random-walk models and statistics helpers."""

import math

import pytest

from repro.analysis.stats import mean_ci
from repro.analysis.walk import (
    absorption_probability,
    geometric_retry,
    hot_potato_hitting_time,
)
from repro.topology.generators import ring_lattice
from repro.topology.graph import PortGraph, TopologyError


@pytest.fixture(scope="module")
def path3():
    # A - B - C line graph.
    g = PortGraph()
    for name, sid in (("A", 5), ("B", 7), ("C", 11)):
        g.add_node(name, switch_id=sid)
    g.add_link("A", "B")
    g.add_link("B", "C")
    return g


class TestHittingTime:
    def test_line_graph_known_value(self, path3):
        # From A on A-B-C: E[T_C] = 4 (classic gambler's-ruin value).
        assert hot_potato_hitting_time(path3, "A", ["C"]) == pytest.approx(4.0)

    def test_adjacent_target(self, path3):
        # From B, C is reached w.p. 1/2 per step both ways symmetric:
        # E = 1*(1/2) + (1/2)(1 + E[T from A]) with E[T from A] = 1 + E[B].
        value = hot_potato_hitting_time(path3, "B", ["C"])
        assert value == pytest.approx(3.0)

    def test_start_on_target(self, path3):
        assert hot_potato_hitting_time(path3, "B", ["B"]) == 0.0

    def test_cycle_antipode(self):
        ring = ring_lattice(8, min_switch_id=11)
        names = ring.node_names()
        # E[hit antipode on n-cycle] = k(n-k) with k = 4: 4*4 = 16.
        assert hot_potato_hitting_time(
            ring, names[0], [names[4]]
        ) == pytest.approx(16.0)

    def test_more_targets_never_slower(self):
        ring = ring_lattice(12, min_switch_id=13)
        names = ring.node_names()
        one = hot_potato_hitting_time(ring, names[0], [names[6]])
        two = hot_potato_hitting_time(ring, names[0], [names[6], names[3]])
        assert two < one

    def test_unknown_nodes_rejected(self, path3):
        with pytest.raises(TopologyError):
            hot_potato_hitting_time(path3, "Z", ["C"])
        with pytest.raises(TopologyError):
            hot_potato_hitting_time(path3, "A", ["Z"])


class TestAbsorption:
    def test_line_graph_even_odds(self, path3):
        # From B with absorbers at both ends: 1/2 each.
        assert absorption_probability(
            path3, "B", ["A"], ["C"]
        ) == pytest.approx(0.5)

    def test_degenerate_cases(self, path3):
        assert absorption_probability(path3, "A", ["A"], ["C"]) == 1.0
        assert absorption_probability(path3, "C", ["A"], ["C"]) == 0.0

    def test_complementarity(self):
        ring = ring_lattice(9, min_switch_id=11)
        names = ring.node_names()
        p = absorption_probability(ring, names[2], [names[0]], [names[5]])
        q = absorption_probability(ring, names[2], [names[5]], [names[0]])
        assert p + q == pytest.approx(1.0)


class TestGeometricRetry:
    def test_paper_fig8_model(self):
        model = geometric_retry(p_success=0.5, direct_hops=2, loop_hops=4)
        assert model.expected_attempts == 2.0
        assert model.expected_extra_hops == pytest.approx(4.0)
        assert model.expected_total_hops == pytest.approx(6.0)

    def test_certain_success(self):
        model = geometric_retry(1.0, direct_hops=3, loop_hops=10)
        assert model.expected_extra_hops == 0.0
        assert model.expected_total_hops == 3.0

    def test_distribution_geometric(self):
        model = geometric_retry(0.25, 1, 2)
        dist = model.attempt_distribution(4)
        assert dist == pytest.approx([0.25, 0.1875, 0.140625, 0.10546875])

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_retry(0.0, 1, 1)
        with pytest.raises(ValueError):
            geometric_retry(1.5, 1, 1)
        with pytest.raises(ValueError):
            geometric_retry(0.5, -1, 1)


class TestMeanCI:
    def test_known_interval(self):
        ci = mean_ci([10.0, 12.0, 11.0, 13.0, 9.0])
        assert ci.mean == pytest.approx(11.0)
        assert ci.low < 11.0 < ci.high
        assert ci.n == 5
        # t(0.975, df=4) = 2.776; sem = sqrt(2.5/5).
        assert ci.half_width == pytest.approx(
            2.7764 * math.sqrt(2.5 / 5), rel=1e-3
        )

    def test_single_sample(self):
        ci = mean_ci([42.0])
        assert ci.mean == 42.0
        assert ci.half_width == 0.0

    def test_identical_samples(self):
        ci = mean_ci([5.0, 5.0, 5.0])
        assert ci.half_width == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_ci([])
        with pytest.raises(ValueError):
            mean_ci([1.0], confidence=1.5)

    def test_describe(self):
        assert "95% CI" in mean_ci([1.0, 2.0]).describe()
