"""Tests for the cached-prefix bit-growth analysis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bitgrowth import (
    bit_growth_by_strategy,
    growth_pool,
    max_prefix_within_budget,
    prefix_route_bits,
    protection_budget_table,
)
from repro.rns.bitlength import route_id_bit_length
from repro.rns.gf2 import gf2_degree


class TestPrefixRouteBits:
    def test_matches_direct_products(self):
        ids = [5, 7, 9, 11]
        base = [4, 13]
        bits = prefix_route_bits(ids, base_ids=base)
        for i, got in enumerate(bits):
            direct = math.prod(base) * math.prod(ids[: i + 1])
            assert got == route_id_bit_length(direct)

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=25, deadline=None)
    def test_non_decreasing_on_any_pool(self, seed):
        import random

        rng = random.Random(seed)
        ids = [rng.randrange(2, 200) for _ in range(rng.randrange(1, 20))]
        bits = prefix_route_bits(ids)
        assert bits == sorted(bits)

    def test_budget_bisection_equals_linear_scan(self):
        ids = [23, 29, 31, 37, 41, 43, 47]
        bits = prefix_route_bits(ids)
        for budget in range(0, bits[-1] + 5):
            linear = sum(1 for b in bits if b <= budget)
            assert max_prefix_within_budget(bits, budget) == linear

    def test_empty(self):
        assert prefix_route_bits([]) == []
        assert max_prefix_within_budget([], 64) == 0


class TestGrowthPool:
    def test_weighted_shares_greedy_pool(self):
        assert growth_pool("weighted", 10) == growth_pool("greedy", 10)

    def test_xsr_pool_is_dual_coprime(self):
        from repro.rns import pairwise_coprime
        from repro.rns.gf2 import gf2_pairwise_coprime

        pool = growth_pool("xsr", 12)
        assert pairwise_coprime(pool)
        assert gf2_pairwise_coprime(pool)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            growth_pool("fibonacci", 4)


class TestGrowth:
    def test_greedy_never_worse_than_prime(self):
        points = bit_growth_by_strategy(12)
        for g, p in zip(points["greedy"], points["prime"]):
            assert g.hops == p.hops
            assert g.bits <= p.bits

    def test_xsr_bits_are_degree_sums(self):
        points = bit_growth_by_strategy(8, strategies=("xsr",))
        pool = sorted(growth_pool("xsr", 8), reverse=True)
        running = 0
        for point, sid in zip(points["xsr"], pool):
            running += gf2_degree(sid)
            assert point.bits == running

    def test_zero_hops_rejected(self):
        with pytest.raises(ValueError, match="max_hops"):
            bit_growth_by_strategy(0)


class TestProtectionBudget:
    def test_rows_match_per_budget_remultiplication(self):
        route = [23, 29, 31]
        protection = [37, 41, 43, 47]
        budgets = range(0, 40)
        table = protection_budget_table(route, protection, budgets)
        for budget, fit in table:
            # The loop this replaced: multiply until the budget breaks.
            product = math.prod(route)
            count = 0
            for sid in protection:
                product *= sid
                if route_id_bit_length(product) > budget:
                    break
                count += 1
            assert fit == count, budget
