"""Tests for residue statistics at unencoded switches."""

import random

import pytest

from repro.analysis.residues import (
    expected_random_hops_fraction,
    network_residue_profiles,
    residue_profile,
)
from repro.rns import RouteEncoder
from repro.topology import fifteen_node, rnp28


class TestProfiles:
    def test_fifteen_node_values(self):
        scn = fifteen_node()
        p7 = residue_profile(scn.graph, "SW7")  # ID 7, degree 4
        assert p7.p_valid == pytest.approx(4 / 7)
        assert p7.p_invalid == pytest.approx(3 / 7)
        assert p7.p_deterministic_nip() == pytest.approx(3 / 7)

    def test_rnp_sw13_is_most_capturing(self):
        # SW13: ID 13, degree 7 — the highest accidental validity in the
        # RNP core, which the paper's 3.2 narrative leans on.
        scn = rnp28()
        profiles = network_residue_profiles(scn.graph)
        assert profiles[0].switch == "SW13"
        assert profiles[0].p_valid == pytest.approx(7 / 13)

    def test_profiles_sorted(self):
        scn = fifteen_node()
        values = [p.p_valid for p in network_residue_profiles(scn.graph)]
        assert values == sorted(values, reverse=True)

    def test_non_core_rejected(self):
        scn = fifteen_node()
        with pytest.raises(ValueError):
            residue_profile(scn.graph, "E-AS1")

    def test_degree_one_never_deterministic(self):
        from repro.topology import PortGraph

        g = PortGraph()
        g.add_node("A", switch_id=7)
        g.add_node("B", switch_id=11)
        g.add_link("A", "B")
        assert residue_profile(g, "A").p_deterministic_nip() == 0.0


class TestMonteCarloAgreement:
    def test_p_valid_matches_sampled_route_ids(self):
        # Empirically: encode many random routes that do NOT include
        # SW19, and check how often SW19's residue lands on a valid
        # port.  Must agree with degree/switch_id.
        scn = fifteen_node()
        g = scn.graph
        profile = residue_profile(g, "SW19")
        encoder = RouteEncoder()
        rng = random.Random(5)
        pool = [10, 7, 13, 29, 11, 23]  # never 19
        hits = trials = 0
        for _ in range(2000):
            ports = [rng.randrange(min(s, 5)) for s in pool]
            route = encoder.encode_path(pool, ports)
            trials += 1
            if route.port_at(19) < profile.degree:
                hits += 1
        assert hits / trials == pytest.approx(profile.p_valid, abs=0.05)


class TestWalkFraction:
    def test_mean_over_visited(self):
        scn = fifteen_node()
        value = expected_random_hops_fraction(scn.graph, ["SW7", "SW13"])
        p7 = 1 - residue_profile(scn.graph, "SW7").p_deterministic_nip()
        p13 = 1 - residue_profile(scn.graph, "SW13").p_deterministic_nip()
        assert value == pytest.approx((p7 + p13) / 2)

    def test_empty_rejected(self):
        scn = fifteen_node()
        with pytest.raises(ValueError):
            expected_random_hops_fraction(scn.graph, [])
