"""Tests for delay/jitter analysis."""

import pytest

from repro.analysis.delay import analyze_delays, rfc3550_jitter
from repro.runner import KarSimulation
from repro.topology import PARTIAL, fifteen_node


class TestJitter:
    def test_constant_delays_zero_jitter(self):
        assert rfc3550_jitter([0.01] * 50) == 0.0

    def test_alternating_delays_converge(self):
        # |D| is constantly 1 ms; the EWMA converges toward 1 ms.
        series = [0.001 if i % 2 else 0.002 for i in range(500)]
        assert rfc3550_jitter(series) == pytest.approx(0.001, rel=0.01)

    def test_single_or_empty_series(self):
        assert rfc3550_jitter([]) == 0.0
        assert rfc3550_jitter([0.5]) == 0.0


class TestDelayReport:
    def test_summary_fields(self):
        delays = [0.001 * (i + 1) for i in range(100)]
        report = analyze_delays(delays)
        assert report.count == 100
        assert report.mean == pytest.approx(0.0505)
        assert report.p50 == pytest.approx(0.050, abs=0.002)
        assert report.p95 == pytest.approx(0.095, abs=0.002)
        assert report.max == pytest.approx(0.100)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyze_delays([])

    def test_describe_in_milliseconds(self):
        text = analyze_delays([0.001, 0.002]).describe()
        assert "ms" in text and "n=2" in text


class TestDeflectionJitter:
    def test_failure_raises_jitter_and_tail(self):
        """The paper's premise: deflection inflates jitter/tail delay."""

        def run(fail: bool):
            ks = KarSimulation(
                fifteen_node(rate_mbps=20.0, delay_s=0.0002),
                deflection="nip", protection=PARTIAL, seed=4,
            )
            if fail:
                ks.schedule_failure("SW7", "SW13", at=0.5)
            src, sink = ks.add_udp_probe(rate_pps=300, duration_s=2.0)
            src.start(at=1.0)
            ks.run(until=5.0)
            return analyze_delays([a[2] for a in sink.arrivals])

        clean = run(fail=False)
        failed = run(fail=True)
        assert failed.jitter > clean.jitter
        assert failed.p99 > clean.p99
        assert failed.mean > clean.mean
