"""Tests for the cProfile wrapper behind ``repro --profile``."""

import io

import pytest

from repro.bench.profiler import profile_call


class TestProfileCall:
    def test_returns_the_functions_result(self):
        buf = io.StringIO()
        assert profile_call(lambda: sum(range(100)), top=5, stream=buf) == 4950

    def test_writes_cumulative_stats(self):
        buf = io.StringIO()
        profile_call(lambda: sorted(range(50)), top=3, stream=buf)
        text = buf.getvalue()
        assert "cumulative" in text
        assert "function calls" in text

    def test_stats_dumped_even_when_fn_raises(self):
        buf = io.StringIO()

        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            profile_call(boom, top=3, stream=buf)
        assert "cumulative" in buf.getvalue()

    def test_bad_top_rejected(self):
        with pytest.raises(ValueError):
            profile_call(lambda: None, top=0)
