"""The service bench: flags CI relies on, plus the shared artifact."""

import json
from datetime import datetime

import pytest

from repro.bench.artifact import (
    environment_fields,
    finish_artifact,
    write_artifact,
)
from repro.bench.servicebench import (
    INCREMENTAL_TARGET_REQ_PER_SEC,
    render_service_bench,
    run_service_bench,
)


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_service.json"
    return run_service_bench(quick=True, repeats=1, out=str(out)), out


class TestRunServiceBench:
    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError):
            run_service_bench(repeats=0, out=None)

    def test_flags_ci_asserts(self, result):
        res, _ = result
        # The only two keys CI may gate on (never wall-clock).
        assert res["bit_identical_reference"] is True
        assert res["zero_admission_violations"] is True
        assert res["identity_checks"]["problems"] == []
        assert res["admission_violations"] == []

    def test_cell_shapes(self, result):
        res, _ = result
        cells = res["cells"]
        assert set(cells) == {
            "provision_tree", "reroute_incremental",
            "admission_cspf", "http_roundtrip",
        }
        for cell in cells.values():
            assert cell["requests"] > 0
            assert cell["wall_s"] > 0
            assert cell["requests_per_sec"] > 0

    def test_reroute_cell_is_purely_incremental(self, result):
        res, _ = result
        cell = res["cells"]["reroute_incremental"]
        assert cell["full_solves"] == 0
        assert cell["deltas_applied"] >= cell["requests"]
        assert cell["target_requests_per_sec"] == \
            INCREMENTAL_TARGET_REQ_PER_SEC

    def test_admission_counts_are_complete(self, result):
        res, _ = result
        cell = res["cells"]["admission_cspf"]
        assert cell["accepted"] + sum(cell["rejected"].values()) == \
            cell["requests"]
        assert cell["rejected"], "saturation never rejected anything"

    def test_latency_percentiles_ordered(self, result):
        res, _ = result
        http = res["cells"]["http_roundtrip"]
        assert 0 < http["p50_us"] <= http["p99_us"]
        direct = res["latency_direct"]
        assert 0 < direct["p50_us"] <= direct["p99_us"]

    def test_artifact_on_disk(self, result):
        res, out = result
        on_disk = json.loads(out.read_text())
        assert on_disk["bench"] == "repro.service"
        assert on_disk["cells"] == res["cells"]
        assert out.read_text().endswith("\n")

    def test_render_mentions_the_target(self, result):
        res, _ = result
        text = render_service_bench(res)
        assert "reroute (delta)" in text
        assert str(INCREMENTAL_TARGET_REQ_PER_SEC) in text
        assert "bit-identical to reference crt(): True" in text


class TestSharedArtifact:
    def test_environment_fields(self):
        fields = environment_fields()
        assert set(fields) == {"cpu_count", "platform", "python"}

    def test_finish_artifact_stamps_and_writes(self, tmp_path):
        out = tmp_path / "BENCH_x.json"
        result = finish_artifact({"bench": "x"}, str(out))
        for key in ("cpu_count", "platform", "python",
                    "timestamp", "timestamp_iso"):
            assert key in result
        iso = datetime.fromisoformat(result["timestamp_iso"])
        assert iso.timestamp() == pytest.approx(result["timestamp"])
        assert json.loads(out.read_text()) == result

    def test_explicit_fields_win(self, tmp_path):
        # farm bench records a measured cpu_count it reasons about;
        # stamping must never silently replace it.
        result = finish_artifact({"bench": "x", "cpu_count": 1234}, None)
        assert result["cpu_count"] == 1234

    def test_canonical_shape(self, tmp_path):
        out = tmp_path / "a.json"
        write_artifact({"b": 1, "a": 2}, str(out))
        assert out.read_text() == '{\n  "a": 2,\n  "b": 1\n}\n'

    def test_every_bench_writer_stamps_identically(self, result):
        # All four BENCH_*.json writers go through finish_artifact, so
        # the stamp/environment key set is identical across artifacts.
        res, _ = result
        stamp_keys = {"cpu_count", "platform", "python",
                      "timestamp", "timestamp_iso"}
        assert stamp_keys <= set(res)
