"""Tests for the all-pairs provisioning benchmark."""

import json

import pytest

from repro.bench.provisionbench import (
    CELLS,
    DEFAULT_CELLS,
    QUICK_CELLS,
    build_mesh_topology,
    render_provision_bench,
    run_provision_bench,
    shard_gate,
)
from repro.topology.graph import NodeKind


class TestTopologyRegistry:
    def test_default_matrix_covers_scales(self):
        # One real WAN, one fabric, one planet-scale graph.
        assert set(DEFAULT_CELLS) <= set(CELLS)
        assert "synthwan754" in DEFAULT_CELLS

    def test_quick_matrix_excludes_planet_scale(self):
        assert set(QUICK_CELLS) <= set(CELLS)
        assert "synthwan754" not in QUICK_CELLS

    def test_builders_are_deterministic(self):
        a = build_mesh_topology("abilene")
        b = build_mesh_topology("abilene")
        assert sorted(a.node_names()) == sorted(b.node_names())
        assert a.switch_ids() == b.switch_ids()

    def test_fat_tree_attaches_edges_to_edge_layer(self):
        g = build_mesh_topology("fat_tree4")
        edges = [n.name for n in g.nodes(NodeKind.EDGE)]
        assert len(edges) == 8  # one per edgesw in a k=4 tree
        assert all(e.startswith("E-edgesw-") for e in edges)

    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError, match="unknown provisioning cell"):
            build_mesh_topology("nope")


class TestRunBench:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench") / "BENCH_provision.json"
        return run_provision_bench(
            cells=["abilene"],
            quick=True,
            repeats=1,
            out=str(out),
            shards=False,
        ), out

    def test_identity_verified_before_timing(self, result):
        res, _ = result
        cell = res["cells"][0]
        assert cell["identity"]["bit_identical"] is True
        assert cell["identity"]["verified_pairs"] == cell["pairs"]
        assert res["bit_identical_reference"] is True

    def test_cell_shape(self, result):
        res, _ = result
        cell = res["cells"][0]
        assert cell["cell"] == "abilene"
        assert cell["core_nodes"] == 11
        assert cell["edge_nodes"] == 11
        assert cell["pairs"] == 110
        assert cell["naive"]["pairs_timed"] == 110
        assert cell["naive"]["estimated"] is False
        assert cell["vectorized"]["cold_start"] is True
        assert len(cell["mesh_digest"]) == 64
        assert cell["target_met"] is None  # no target on small cells

    def test_artifact_written_and_stamped(self, result):
        res, out = result
        with open(out, encoding="utf-8") as fh:
            loaded = json.load(fh)
        assert loaded["bench"] == "repro.provision"
        assert loaded["cells"][0]["mesh_digest"] == (
            res["cells"][0]["mesh_digest"]
        )
        for key in ("cpu_count", "platform", "python"):
            assert key in loaded

    def test_render(self, result):
        res, _ = result
        text = render_provision_bench(res)
        assert "abilene" in text
        assert "bit-identical to per-flow reference: True" in text

    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError, match="unknown cell"):
            run_provision_bench(cells=["bogus"], out=None, shards=False)

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_provision_bench(
                cells=["abilene"], repeats=0, out=None, shards=False
            )


class TestShardGate:
    def test_block_digests_match_sequential(self):
        # jobs=1 runs the farm inline — the gate logic (per-block
        # digest re-derivation and comparison) is what's under test;
        # CI's provision-smoke job exercises real worker processes.
        gate = shard_gate(topology="abilene", blocks=3, jobs=1)
        assert gate["digests_match"] is True
        assert len(gate["gates"]) == 3
        assert sum(g["destinations"] for g in gate["gates"]) == 11
        assert sum(g["routes"] for g in gate["gates"]) == 110
        for g in gate["gates"]:
            assert g["shard_digest"] == g["sequential_digest"]

    def test_bad_blocks_rejected(self):
        with pytest.raises(ValueError, match="blocks"):
            shard_gate(topology="abilene", blocks=0)
