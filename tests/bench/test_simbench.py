"""Tests for the ``repro bench sim`` harness (small cells only)."""

import json

import pytest

from repro.bench.simbench import (
    EPOCH_WORKLOADS,
    MODES,
    SIZES,
    render_sim_bench,
    run_sim_bench,
)


class TestRunSimBench:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench") / "BENCH_sim.json"
        res = run_sim_bench(
            sizes=["small"], strategies=["none", "nip"],
            repeats=1, out=str(out), modes=("des",),
        )
        return res, out

    def test_des_only_run_has_no_epoch_section(self, result):
        res, _ = result
        assert res["modes"] == ["des"]
        assert res["epoch"] is None

    def test_digests_match_in_every_cell(self, result):
        res, _ = result
        assert res["digests_match_reference"] is True
        assert [r["strategy"] for r in res["runs"]] == ["none", "nip"]
        for run in res["runs"]:
            assert run["digests_match"], run
            assert run["digest_reference"] == run["digest_fast"]

    def test_throughput_fields_populated(self, result):
        res, _ = result
        for run in res["runs"]:
            for mode in ("reference", "fast"):
                assert run[mode]["wall_s"] > 0
                assert run[mode]["packets_per_sec"] > 0
                assert run[mode]["events_per_sec"] > 0
            assert run["packets"] > 0 and run["events"] > 0
        assert res["speedup_by_size"]["small"] is not None
        assert res["crt"]["small"]["encodes_per_sec"] > 0

    def test_json_written_and_round_trips(self, result):
        res, out = result
        data = json.loads(out.read_text())
        assert data["digests_match_reference"] is True
        assert data["repeats"] == 1
        assert data["sizes"]["small"] == SIZES["small"]

    def test_render_mentions_every_cell(self, result):
        res, _ = result
        text = render_sim_bench(res)
        assert "none" in text and "nip" in text
        assert "digests match reference: True" in text
        assert "MISMATCH" not in text

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError, match="unknown size"):
            run_sim_bench(sizes=["galactic"], out=None)

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_sim_bench(sizes=["small"], repeats=0, out=None)


class TestEpochMode:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench") / "BENCH_sim.json"
        res = run_sim_bench(
            sizes=["small"], strategies=["nip"], repeats=1,
            quick=True, out=str(out), modes=("epoch",),
        )
        return res, out

    def test_epoch_cells_verified_before_timing(self, result):
        res, _ = result
        assert res["modes"] == ["epoch"]
        assert res["runs"] == []  # no DES cells requested
        epoch = res["epoch"]
        assert epoch is not None
        assert len(epoch["runs"]) == 1
        cell = epoch["runs"][0]
        assert cell["digests_match"] is True
        assert res["digests_match_reference"] is True
        assert cell["forwarded"] > 0
        for engine in ("reference_epoch", "vector", "shard2"):
            assert cell[engine]["wall_s"] >= 0
            assert cell[engine]["forwarded_per_min"] > 0
        assert cell["shard2"]["handoff_checks"] > 0
        assert cell["shard2"]["processes"] is False  # quick => in-process

    def test_epoch_workloads_echoed(self, result):
        res, _ = result
        assert res["epoch"]["workloads"]["small"] == EPOCH_WORKLOADS["small"]
        assert res["epoch"]["target_forwarded_per_min"] == 10_000_000

    def test_render_includes_epoch_table(self, result):
        res, _ = result
        text = render_sim_bench(res)
        assert "epoch datapath" in text
        assert "fwd/min" in text
        assert "digests match reference: True" in text

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            run_sim_bench(sizes=["small"], modes=("warp",), out=None)

    def test_modes_registry_is_stable(self):
        assert MODES == ("des", "epoch")
