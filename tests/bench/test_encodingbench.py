"""Tests for the encoding-backend benchmark.

Assertions target verification flags and artifact shape, never
wall-clock numbers — CI boxes are too noisy to gate on throughput.
"""

import json

import pytest

from repro.bench import render_encoding_bench, run_encoding_bench
from repro.bench.encodingbench import CELLS
from repro.rns import BACKEND_NAMES


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_encoding.json"
    return run_encoding_bench(
        cells=["abilene"], quick=True, repeats=1, iters=1, out=str(out)
    ), out


class TestRunEncodingBench:
    def test_unknown_cell_rejected(self):
        with pytest.raises(ValueError, match="unknown cell"):
            run_encoding_bench(cells=["fatman"], out=None)

    @pytest.mark.parametrize("kwargs", [{"repeats": 0}, {"iters": 0}])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            run_encoding_bench(cells=["abilene"], out=None, **kwargs)

    def test_verified_before_timing(self, result):
        res, _ = result
        assert res["verified_before_timing"] is True
        assert all(c["bit_identical"] for c in res["cells"])
        for oracle in res["oracles"].values():
            assert oracle["ok"] is True
            assert oracle["divergences"] == []
            assert oracle["checks"] > 0

    def test_cell_shape(self, result):
        res, _ = result
        (cell,) = res["cells"]
        assert cell["cell"] == "abilene"
        assert cell["topology"] == CELLS["abilene"]["topology"]
        assert set(cell["backends"]) == set(BACKEND_NAMES)
        for row in cell["backends"].values():
            assert row["encode_per_sec"] > 0
            assert row["decode_per_sec"] > 0
            assert row["median_bits"] is not None
        # pooled shares crt's modulus, so it shares crt's bit rows.
        assert (
            cell["backends"]["pooled"]["median_bits"]
            == cell["backends"]["crt"]["median_bits"]
        )

    def test_weighted_assigner_saves_bits(self, result):
        res, _ = result
        (cell,) = res["cells"]
        assert cell["weighted_reduction_pct"] > 0
        greedy = cell["assigners"]["crt/greedy"]["median_bits"]
        weighted = cell["assigners"]["crt/weighted"]["median_bits"]
        assert weighted < greedy

    def test_json_written_and_loadable(self, result):
        res, out = result
        on_disk = json.loads(out.read_text())
        assert on_disk["bench"] == "repro.encoding"
        assert on_disk["cells"] == res["cells"]

    def test_render(self, result):
        res, _ = result
        text = render_encoding_bench(res)
        assert "abilene" in text
        for name in BACKEND_NAMES:
            assert name in text
        assert "weighted assigner" in text
