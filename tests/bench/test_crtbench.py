"""Tests for the control-plane CRT benchmark and timestamp stamping."""

import json
from datetime import datetime, timezone

import pytest

from repro.bench import render_crt_bench, run_crt_bench, timestamp_fields, utc_stamp
from repro.bench.crtbench import POOLS


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_crt.json"
    return run_crt_bench(
        pools=["small"], quick=True, repeats=1, iters=1, out=str(out)
    ), out


class TestRunCrtBench:
    def test_unknown_pool_rejected(self):
        with pytest.raises(ValueError, match="unknown pool"):
            run_crt_bench(pools=["gigantic"], out=None)

    @pytest.mark.parametrize("kwargs", [
        {"repeats": 0}, {"iters": 0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            run_crt_bench(pools=["small"], out=None, **kwargs)

    def test_cells_are_bit_identical(self, result):
        res, _ = result
        assert res["bit_identical_reference"] is True
        assert all(c["bit_identical"] for c in res["cells"])

    def test_cell_shape(self, result):
        res, _ = result
        (cell,) = res["cells"]
        assert cell["pool"] == "small"
        assert cell["pool_size"] == POOLS["small"]["pool_size"]
        for mode, rate in (
            ("naive", "encodes_per_sec"),
            ("pooled", "encodes_per_sec"),
            ("full_resolve", "reencodes_per_sec"),
            ("incremental", "reencodes_per_sec"),
        ):
            assert cell[mode]["wall_s"] > 0
            assert cell[mode][rate] > 0
        assert cell["encode_speedup"] > 0
        assert cell["reencode_speedup"] > 0

    def test_json_written_and_loadable(self, result):
        res, out = result
        on_disk = json.loads(out.read_text())
        assert on_disk["bench"] == "repro.crt"
        assert on_disk["cells"] == res["cells"]

    def test_dual_timestamps(self, result):
        res, _ = result
        iso = datetime.fromisoformat(res["timestamp_iso"])
        assert iso.tzinfo is not None
        assert iso.timestamp() == pytest.approx(res["timestamp"])

    def test_render_mentions_every_cell(self, result):
        res, _ = result
        text = render_crt_bench(res)
        assert "small" in text
        assert "bit-identical to reference crt(): True" in text

    def test_deterministic_inputs_same_seed(self):
        a = run_crt_bench(pools=["small"], quick=True, repeats=1,
                          iters=1, out=None, seed=7)
        b = run_crt_bench(pools=["small"], quick=True, repeats=1,
                          iters=1, out=None, seed=7)
        # Wall times differ run to run; the workload must not.
        assert a["cells"][0]["route_bits"] == b["cells"][0]["route_bits"]
        assert a["cells"][0]["bit_identical"] and b["cells"][0]["bit_identical"]


class TestStamp:
    def test_epoch_zero(self):
        assert utc_stamp(0.0) == "1970-01-01T00:00:00+00:00"

    def test_fields_describe_one_instant(self):
        fields = timestamp_fields(1704067200.25)
        assert fields["timestamp"] == 1704067200.25
        parsed = datetime.fromisoformat(fields["timestamp_iso"])
        assert parsed.timestamp() == 1704067200.25
        assert parsed.tzinfo == timezone.utc

    def test_now_is_consistent(self):
        fields = timestamp_fields()
        parsed = datetime.fromisoformat(fields["timestamp_iso"])
        assert parsed.timestamp() == pytest.approx(fields["timestamp"])
