"""Tests for service chaining over KAR segments."""

import pytest

from repro.chaining import ServiceChain, add_chain_probe, deploy_chain
from repro.runner import KarSimulation
from repro.topology import NodeKind, fifteen_node
from repro.topology.graph import TopologyError


def _scenario_with_vnfs():
    """15-node scenario with VNF hosts parked at SW23 and SW41."""
    scn = fifteen_node(rate_mbps=50.0, delay_s=0.0002)
    g = scn.graph
    for vnf, core in (("H-FW", "SW23"), ("H-DPI", "SW41")):
        edge = f"E-{vnf[2:]}"
        g.add_node(edge, kind=NodeKind.EDGE)
        g.add_node(vnf, kind=NodeKind.HOST)
        g.add_link(core, edge, rate_mbps=50.0, delay_s=0.0002)
        g.add_link(edge, vnf, rate_mbps=50.0, delay_s=0.0002)
    g.validate()
    return scn


@pytest.fixture
def deployed():
    scn = _scenario_with_vnfs()
    ks = KarSimulation(scn, deflection="nip", protection="unprotected",
                       seed=1, install_primary_flow=False)
    chain = ServiceChain(
        name="sfc-1",
        src_host="H-AS1",
        vnf_hosts=("H-FW", "H-DPI"),
        dst_host="H-AS3",
    )
    deployment = deploy_chain(ks, chain, processing_delay_s=0.0002)
    return ks, chain, deployment


class TestChainSpec:
    def test_waypoints_and_segments(self):
        chain = ServiceChain("c", "A", ("V1", "V2"), "B")
        assert chain.waypoints() == ["A", "V1", "V2", "B"]
        assert chain.segments() == [("A", "V1"), ("V1", "V2"), ("V2", "B")]

    def test_empty_chain_is_plain_flow(self):
        chain = ServiceChain("c", "A", (), "B")
        assert chain.segments() == [("A", "B")]


class TestDeployment:
    def test_segment_routes_installed(self, deployed):
        ks, chain, deployment = deployed
        assert len(deployment.segment_routes) == 3
        # Each segment has a valid forward route ID.
        for fwd, rev in deployment.segment_routes:
            assert fwd.route_id >= 0
            assert fwd.modulus > 1

    def test_header_budget_is_sum_of_segments(self, deployed):
        ks, chain, deployment = deployed
        assert deployment.total_header_bits == sum(
            fwd.bit_length for fwd, _ in deployment.segment_routes
        )

    def test_unknown_waypoint_rejected(self):
        scn = _scenario_with_vnfs()
        ks = KarSimulation(scn, seed=0, install_primary_flow=False)
        chain = ServiceChain("bad", "H-AS1", ("H-GHOST",), "H-AS3")
        with pytest.raises(TopologyError, match="waypoint"):
            deploy_chain(ks, chain)

    def test_transform_count_checked(self):
        scn = _scenario_with_vnfs()
        ks = KarSimulation(scn, seed=0, install_primary_flow=False)
        chain = ServiceChain("c", "H-AS1", ("H-FW", "H-DPI"), "H-AS3")
        with pytest.raises(ValueError, match="transform"):
            deploy_chain(ks, chain, transforms=[lambda p: p])


class TestChainTraffic:
    def test_probe_traverses_all_vnfs(self, deployed):
        ks, chain, deployment = deployed
        source, sink = add_chain_probe(ks, deployment, rate_pps=200,
                                       duration_s=1.0)
        source.start()
        ks.run(until=3.0)
        assert sink.received == source.sent
        # Every packet passed through both functions, in order.
        assert deployment.processed_counts() == [source.sent, source.sent]

    def test_processing_delay_accumulates(self, deployed):
        ks, chain, deployment = deployed
        source, sink = add_chain_probe(ks, deployment, rate_pps=100,
                                       duration_s=0.5)
        source.start()
        ks.run(until=3.0)
        # End-to-end delay includes 2 x processing delay plus 3 segments
        # of network path.
        assert sink.mean_delay() > 2 * 0.0002

    def test_transform_applied(self):
        scn = _scenario_with_vnfs()
        ks = KarSimulation(scn, seed=1, install_primary_flow=False)
        seen = []

        def stamp(payload):
            seen.append(payload.seq)
            return payload

        chain = ServiceChain("c2", "H-AS1", ("H-FW",), "H-AS3")
        deployment = deploy_chain(ks, chain, transforms=[stamp])
        source, sink = add_chain_probe(ks, deployment, rate_pps=100,
                                       duration_s=0.2)
        source.start()
        ks.run(until=2.0)
        assert sorted(seen) == list(range(source.sent))

    def test_chain_survives_link_failure(self):
        # The chain's middle segment rides the resilient core: failing a
        # link on it must not lose chain traffic (KAR deflection works
        # per segment).
        scn = _scenario_with_vnfs()
        ks = KarSimulation(scn, deflection="nip", protection="unprotected",
                           seed=2, install_primary_flow=False)
        chain = ServiceChain("c3", "H-AS1", ("H-FW",), "H-AS3")
        deployment = deploy_chain(ks, chain)
        # Segment 2 (H-FW -> H-AS3) runs SW23 ... SW29; fail SW23-SW29.
        ks.schedule_failure("SW23", "SW29", at=0.5)
        source, sink = add_chain_probe(ks, deployment, rate_pps=200,
                                       duration_s=1.0)
        source.start(at=1.0)
        ks.run(until=5.0)
        # Unprotected deflection: the vast majority survives (wanderers
        # may occasionally die at the TTL) and nothing vanishes silently.
        assert sink.received >= 0.95 * source.sent
        accounted = sink.received + sum(ks.tracer.drop_reasons.values())
        assert accounted == source.sent
