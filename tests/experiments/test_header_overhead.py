"""Tests for the header-overhead study over real topologies."""

import math
from statistics import median

from repro.experiments.header_overhead import (
    ZOO_CELLS,
    _all_pairs_route_bits,
    capacity_table,
    zoo_overhead,
)
from repro.rns import backend_by_name
from repro.rns.bitlength import route_id_bit_length
from repro.topology import shortest_path
from repro.topology.zoo import load_zoo_graph


class TestAllPairsRouteBits:
    def test_matches_per_pair_shortest_paths_on_a_tree(self):
        # Trees have unique shortest paths, so the BFS-tree accumulation
        # must agree with per-pair products exactly.  (On meshes the
        # two can tie-break equal-length paths differently.)
        from repro.topology import random_connected

        graph = random_connected(14, extra_links=0, seed=7,
                                 min_switch_id=23)
        backend = backend_by_name("crt")
        got = sorted(_all_pairs_route_bits(graph, backend))
        names = sorted(graph.switch_ids())
        want = []
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                path = shortest_path(graph, src, dst)
                modulus = math.prod(
                    graph.switch_id(n) for n in path[:-1]
                )
                want.append(route_id_bit_length(modulus))
        assert got == sorted(want)

    def test_counts_every_ordered_pair_on_abilene(self):
        graph = load_zoo_graph("abilene")
        bits = _all_pairs_route_bits(graph, backend_by_name("crt"))
        n = len(graph.switch_ids())
        assert len(bits) == n * (n - 1)
        assert all(b > 0 for b in bits)

    def test_xsr_accumulates_degrees(self):
        from repro.rns.gf2 import gf2_degree

        graph = load_zoo_graph("abilene", id_strategy="xsr")
        bits = _all_pairs_route_bits(graph, backend_by_name("xsr"))
        n = len(graph.switch_ids())
        assert len(bits) == n * (n - 1)
        max_deg = sum(gf2_degree(s) for s in graph.switch_ids().values())
        assert all(0 < b <= max_deg for b in bits)


class TestZooOverhead:
    def test_weighted_assigner_beats_greedy_on_abilene(self):
        rows = {
            (r.backend, r.assigner): r
            for r in zoo_overhead(topologies=("abilene",), cells=ZOO_CELLS)
        }
        greedy = rows[("crt", "greedy")]
        weighted = rows[("crt", "weighted")]
        assert greedy.nodes == weighted.nodes
        assert greedy.pairs == weighted.pairs > 0
        assert weighted.median_bits < greedy.median_bits
        assert greedy.median_bits == median(
            _all_pairs_route_bits(
                load_zoo_graph("abilene"), backend_by_name("crt")
            )
        )

    def test_wire_bytes_cover_the_max_route(self):
        for row in zoo_overhead(topologies=("abilene",)):
            assert row.max_wire_bytes * 8 >= row.max_bits
            assert 0 < row.mtu_fraction < 1


class TestCapacityTable:
    def test_budget_rows_are_monotone(self):
        table = capacity_table(
            budgets_bits=(32, 64, 128), strategies=("greedy", "prime", "xsr")
        )
        for strategy, rows in table.items():
            fits = [fit for _, fit in rows]
            assert fits == sorted(fits), strategy
            assert fits[-1] > 0

    def test_best_case_fits_at_least_worst_case(self):
        worst = capacity_table(worst_case=True)
        best = capacity_table(worst_case=False)
        for strategy in worst:
            for (b, wfit), (_, bfit) in zip(worst[strategy], best[strategy]):
                assert bfit >= wfit, (strategy, b)
