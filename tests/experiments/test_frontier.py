"""Tests for the resilience-frontier sweep."""

import dataclasses

import pytest

from repro.baselines import BASELINE_SCHEMES
from repro.experiments.frontier import (
    FRONTIER_SCHEMES,
    FRONTIER_TOPOLOGIES,
    FrontierCell,
    _pick_static_failures,
    frontier_rows,
    max_tolerated,
    render_frontier,
    run_frontier,
    run_frontier_cells,
    run_frontier_once,
)
from repro.farm.executor import FarmOptions
from repro.farm.jobs import frontier_spec
from repro.topology import NodeKind, is_reachable_without

FAST = dict(rate_pps=100.0, traffic_s=0.5)
FARM = FarmOptions(jobs=1, no_cache=True, progress=False)


class TestGrid:
    def test_schemes_cover_kar_and_baselines(self):
        assert len(FRONTIER_SCHEMES) >= 5
        for scheme in BASELINE_SCHEMES:
            assert scheme in FRONTIER_SCHEMES

    @pytest.mark.parametrize("topology", sorted(FRONTIER_TOPOLOGIES))
    def test_scenarios_build_and_validate(self, topology):
        scn = FRONTIER_TOPOLOGIES[topology]()
        scn.graph.validate()
        assert scn.primary_route[0] in scn.graph.neighbors(
            scn.graph.edge_of_host(scn.src_host)
        )


class TestStaticFailures:
    def test_deterministic_and_scheme_independent(self):
        scn = FRONTIER_TOPOLOGIES["torus"]()
        a = _pick_static_failures(scn, 2, seed=42)
        b = _pick_static_failures(scn, 2, seed=42)
        assert a == b
        assert len(a) == 2
        assert a != _pick_static_failures(scn, 2, seed=43)

    def test_keeps_the_host_pair_connected(self):
        scn = FRONTIER_TOPOLOGIES["clique"]()
        for k in (1, 2, 3):
            failed = _pick_static_failures(scn, k, seed=1)
            assert is_reachable_without(
                scn.graph, scn.src_host, scn.dst_host, failed
            )

    def test_only_core_links_drawn(self):
        scn = FRONTIER_TOPOLOGIES["abilene"]()
        g = scn.graph
        for a, b in _pick_static_failures(scn, 3, seed=7):
            assert g.node(a).kind == NodeKind.CORE
            assert g.node(b).kind == NodeKind.CORE


class TestRunOnce:
    def test_static_cell_is_reproducible(self):
        a = run_frontier_once("clique", "nip", "static", 1, seed=5, **FAST)
        b = run_frontier_once("clique", "nip", "static", 1, seed=5, **FAST)
        assert a == b
        assert a.sent > 0
        assert a.failed_links and a.digest not in ("", "-")

    def test_zero_failures_is_the_healthy_baseline(self):
        cell = run_frontier_once("clique", "hp", "static", 0, seed=5, **FAST)
        assert cell.digest == "-"
        assert cell.failed_links == ()
        assert cell.tolerated

    def test_dynamic_cell_digest_tracks_the_schedule(self):
        kwargs = dict(seed=5, adversary={"strikes": 8}, **FAST)
        a = run_frontier_once("clique", "arb", "dynamic", 1,
                              schedule_seed=0, **kwargs)
        b = run_frontier_once("clique", "arb", "dynamic", 1,
                              schedule_seed=0, **kwargs)
        c = run_frontier_once("clique", "arb", "dynamic", 1,
                              schedule_seed=1, **kwargs)
        assert a.digest == b.digest
        assert a.chaos_events == b.chaos_events > 0
        assert a.digest != c.digest

    def test_per_backend_header_bits(self):
        from repro.rns import BACKEND_NAMES

        cell = run_frontier_once("clique", "nip", "static", 0, seed=5,
                                 **FAST)
        bits = dict(cell.header_bits_by_backend)
        assert set(bits) == set(BACKEND_NAMES)
        # Integer backends share the modulus; XSR bits differ in general.
        assert bits["crt"] == bits["pooled"] == cell.header_bits
        assert bits["xsr"] > 0
        arb = run_frontier_once("clique", "arb", "static", 0, seed=5,
                                **FAST)
        assert all(b == 0 for _, b in arb.header_bits_by_backend)

    def test_baseline_costs(self):
        arb = run_frontier_once("clique", "arb", "static", 0, **FAST)
        ff = run_frontier_once("clique", "ff", "static", 0, **FAST)
        hp = run_frontier_once("clique", "hp", "static", 0, **FAST)
        # arb pays purely in state; KAR purely in header bits; ff both.
        assert arb.header_bits == 0 and arb.state_entries > 0
        assert hp.header_bits > 0 and hp.state_entries == 0
        assert ff.header_bits == hp.header_bits and ff.state_entries > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="topology"):
            run_frontier_once("mobius", "nip")
        with pytest.raises(ValueError, match="mode"):
            run_frontier_once("clique", "nip", mode="quantum")
        with pytest.raises(ValueError, match="failure count"):
            run_frontier_once("clique", "nip", failures=-1)


class TestFarmRoundTrip:
    def test_cells_survive_the_record_encoding(self):
        spec = frontier_spec("clique", "nip", "static", 1, 5,
                             rate_pps=100.0, traffic_s=0.5)
        [cell] = run_frontier_cells([spec], FARM)
        direct = run_frontier_once("clique", "nip", "static", 1, seed=5,
                                   **FAST)
        assert cell == direct


def _cell(topology="clique", scheme="nip", mode="static", failures=0,
          sent=10, delivered=10, violations=()):
    return FrontierCell(
        topology=topology, scheme=scheme, mode=mode, failures=failures,
        seed=42, schedule_seed=0, sent=sent, delivered=delivered,
        drop_reasons=(), violations=tuple(violations), header_bits=11,
        state_entries=0, mean_stretch=1.0, max_stretch=1.0,
        chaos_events=0, digest="-", failed_links=(),
    )


class TestMaxTolerated:
    def test_requires_every_level_up_to_k(self):
        cells = [
            _cell(failures=0),
            _cell(failures=1, delivered=9),
            _cell(failures=2),  # lucky draw above a loss: must not count
        ]
        assert max_tolerated(cells, "clique", "nip") == 0

    def test_gap_in_the_grid_stops_the_claim(self):
        cells = [_cell(failures=0), _cell(failures=2)]
        assert max_tolerated(cells, "clique", "nip") == 0

    def test_healthy_baseline_failure_scores_minus_one(self):
        cells = [_cell(failures=0, delivered=0)]
        assert max_tolerated(cells, "clique", "nip") == -1

    def test_violations_disqualify_a_level(self):
        cells = [
            _cell(failures=0),
            _cell(failures=1, violations=(("loop", 1),)),
        ]
        assert max_tolerated(cells, "clique", "nip") == 0

    def test_all_levels_clean(self):
        cells = [_cell(failures=k) for k in range(3)]
        assert max_tolerated(cells, "clique", "nip") == 2


class TestReportAndExport:
    def _cells(self):
        return [
            _cell(failures=0),
            _cell(failures=1),
            _cell(scheme="arb", failures=0),
            _cell(mode="dynamic", failures=1, delivered=9),
        ]

    def test_render_mentions_every_scheme_and_totals(self):
        text = render_frontier(self._cells())
        assert "frontier — clique" in text
        assert "nip" in text and "arb" in text
        assert "dyn-delivery" in text
        assert "cells: 4, invariant violations: 0" in text

    def test_rows_are_flat_and_complete(self):
        rows = frontier_rows(self._cells())
        assert len(rows) == 4
        for row, cell in zip(rows, self._cells()):
            assert row["delivery_ratio"] == cell.delivery_ratio
            assert isinstance(row["failed_links"], str)
        field_names = {f.name for f in dataclasses.fields(FrontierCell)}
        # header_bits_by_backend flattens to header_bits_<name> columns.
        assert field_names - {"drop_reasons", "header_bits_by_backend"} <= (
            set(rows[0]) | {"violations", "failed_links", "digest"}
        )


class TestRunFrontier:
    def test_small_grid_covers_five_schemes_cleanly(self):
        cells = run_frontier(
            topologies=("clique",), schemes=FRONTIER_SCHEMES,
            max_failures=1, seeds=(42,), farm=FARM,
        )
        assert len(cells) == len(FRONTIER_SCHEMES) * 2
        assert {c.scheme for c in cells} == set(FRONTIER_SCHEMES)
        assert sum(c.violation_count for c in cells) == 0
        for cell in cells:
            assert cell.sent > 0

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown frontier"):
            run_frontier(topologies=("mobius",), farm=FARM)
