"""build_report determinism: identical runs produce identical bytes.

The figure sections are monkeypatched with cheap stubs — the claim
under test is the report *scaffolding* (no wall-clock text, no other
run-varying content), not the measurements.
"""

import repro.experiments.report as report_mod
from repro.experiments.report import build_report, main


def _stub_sections(monkeypatch):
    for name in ("_fig4_section", "_fig5_section",
                 "_fig7_section", "_fig8_section"):
        monkeypatch.setattr(
            report_mod, name,
            lambda farm=None, _n=name: [f"## stub {_n}", ""],
        )


class TestReportDeterminism:
    def test_two_runs_byte_identical(self, monkeypatch):
        _stub_sections(monkeypatch)
        assert build_report() == build_report()

    def test_no_wall_time_in_report(self, monkeypatch):
        # Regression: the footer used to embed elapsed wall time, so
        # re-running the generator always dirtied EXPERIMENTS.md.
        _stub_sections(monkeypatch)
        assert "wall time" not in build_report()

    def test_main_writes_identical_files(self, monkeypatch, tmp_path, capsys):
        _stub_sections(monkeypatch)
        out = tmp_path / "EXPERIMENTS.md"
        assert main(["report", str(out)]) == 0
        first = out.read_bytes()
        assert main(["report", str(out)]) == 0
        assert out.read_bytes() == first
        # Timing still reaches the console, just never the file.
        assert "wall time" in capsys.readouterr().out
