"""Tests for the experiment modules (fast paths only — the full runs
live in benchmarks/)."""

import pytest

from repro.experiments import common, figure8, table1, table2


class TestTable1:
    def test_matches_paper(self):
        rows = table1.compute_table1()
        assert [(r.bit_length, r.switch_count) for r in rows] == [
            (15, 4), (28, 7), (43, 10),
        ]

    def test_render_contains_rows(self):
        text = table1.render_table1()
        for token in ("Unprotected", "Partial protection",
                      "Full protection", "15", "28", "43"):
            assert token in text


class TestTable2:
    def test_render(self):
        text = table2.render_table2()
        assert "KAR" in text


class TestCommon:
    def test_scenario_factories(self):
        for name in ("fifteen_node", "rnp28", "redundant_path"):
            scn = common.scenario_factory(name)()
            assert scn.name == name
            # Standard experiment parameters applied.
            link = scn.graph.links()[0]
            assert link.rate_mbps <= common.SCENARIO_RATE_MBPS

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            common.scenario_factory("mininet")

    def test_seeds_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEEDS", raising=False)
        assert common.seeds_from_env(default=4) == [1, 2, 3, 4]
        monkeypatch.setenv("REPRO_SEEDS", "2")
        assert common.seeds_from_env() == [1, 2]
        monkeypatch.setenv("REPRO_SEEDS", "0")
        with pytest.raises(ValueError):
            common.seeds_from_env()

    def test_resolve_seeds(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEEDS", raising=False)
        # Explicit argument wins and is copied to a fresh list.
        given = (5, 9)
        assert common.resolve_seeds(given) == [5, 9]
        # No argument falls back to the environment default.
        assert common.resolve_seeds(default=2) == [1, 2]
        monkeypatch.setenv("REPRO_SEEDS", "4")
        assert common.resolve_seeds() == [1, 2, 3, 4]
        assert common.resolve_seeds([7]) == [7]  # env ignored if given

    def test_run_outcome_ratio(self):
        class FakeIperf:
            pass

        outcome = common.RunOutcome(
            baseline_mbps=20.0, failure_mbps=15.0, iperf=FakeIperf()
        )
        assert outcome.ratio == pytest.approx(0.75)
        zero = common.RunOutcome(0.0, 1.0, FakeIperf())
        assert zero.ratio == 0.0

    def test_single_run_experiment(self):
        # One short end-to-end run through the experiment plumbing.
        timeline = common.Timeline(
            flow_start=0.1, fail_at=0.8, repair_at=1.6, end=2.4,
            baseline_window=(0.4, 0.8), failure_window=(1.0, 1.6),
            sample_interval_s=0.2,
        )
        scn = common.scenario_factory("fifteen_node")()
        outcome = common.run_failure_experiment(
            scn, "nip", "partial", ("SW7", "SW13"), seed=1,
            timeline=timeline,
        )
        assert outcome.baseline_mbps > 0
        assert 0.0 <= outcome.ratio <= 1.5

    def test_ratio_ci(self):
        class FakeIperf:
            pass

        outcomes = [
            common.RunOutcome(10.0, v, FakeIperf()) for v in (5.0, 6.0, 7.0)
        ]
        ci = common.ratio_ci(outcomes)
        assert ci.mean == pytest.approx(0.6)
        assert ci.n == 3


class TestFigure8Model:
    def test_analytical_model(self):
        model = figure8.analytical_model()
        assert model.p_success == 0.5
        assert model.expected_total_hops == pytest.approx(6.0)

    def test_paper_ratio_constant(self):
        assert figure8.PAPER_RATIO == pytest.approx(0.548)


class TestChaosSweep:
    def test_single_run_is_reproducible_and_clean(self):
        from repro.experiments.chaos_sweep import run_chaos_once

        a = run_chaos_once(technique="avp", seed=42, traffic_s=1.0,
                           chaos_kwargs={"mtbf_s": 1.0, "mttr_s": 0.3})
        b = run_chaos_once(technique="avp", seed=42, traffic_s=1.0,
                           chaos_kwargs={"mtbf_s": 1.0, "mttr_s": 0.3})
        assert a == b                     # the whole summary, bit for bit
        assert a.digest == b.digest
        assert a.violation_count == 0
        assert a.sent > 0
        assert a.delivered + a.dropped == a.sent

    def test_render_sweep_flags_violations(self):
        from repro.experiments.chaos_sweep import ChaosRun, render_chaos_sweep

        def run(technique, mtbf, violations):
            return ChaosRun(
                scenario="fifteen_node", technique=technique, mode="mtbf",
                seed=1, sent=100, delivered=90, drop_reasons=(),
                violations=violations, chaos_events=4, digest="abc",
                peak_links_down=2, reencode_requests=0,
                reencode_timeouts=0, reencode_giveups=0, mtbf_s=mtbf,
            )

        clean = render_chaos_sweep([run("hp", 2.0, ()),
                                    run("nip", 2.0, ())])
        assert "violations across all runs: 0" in clean
        dirty = render_chaos_sweep(
            [run("hp", 2.0, (("dead-port-forward", 3),))])
        assert "!" in dirty
