"""Tests for the experiment modules (fast paths only — the full runs
live in benchmarks/)."""

import pytest

from repro.experiments import common, figure8, table1, table2


class TestTable1:
    def test_matches_paper(self):
        rows = table1.compute_table1()
        assert [(r.bit_length, r.switch_count) for r in rows] == [
            (15, 4), (28, 7), (43, 10),
        ]

    def test_render_contains_rows(self):
        text = table1.render_table1()
        for token in ("Unprotected", "Partial protection",
                      "Full protection", "15", "28", "43"):
            assert token in text


class TestTable2:
    def test_render(self):
        text = table2.render_table2()
        assert "KAR" in text


class TestCommon:
    def test_scenario_factories(self):
        for name in ("fifteen_node", "rnp28", "redundant_path"):
            scn = common.scenario_factory(name)()
            assert scn.name == name
            # Standard experiment parameters applied.
            link = scn.graph.links()[0]
            assert link.rate_mbps <= common.SCENARIO_RATE_MBPS

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            common.scenario_factory("mininet")

    def test_seeds_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEEDS", raising=False)
        assert common.seeds_from_env(default=4) == [1, 2, 3, 4]
        monkeypatch.setenv("REPRO_SEEDS", "2")
        assert common.seeds_from_env() == [1, 2]
        monkeypatch.setenv("REPRO_SEEDS", "0")
        with pytest.raises(ValueError):
            common.seeds_from_env()

    def test_run_outcome_ratio(self):
        class FakeIperf:
            pass

        outcome = common.RunOutcome(
            baseline_mbps=20.0, failure_mbps=15.0, iperf=FakeIperf()
        )
        assert outcome.ratio == pytest.approx(0.75)
        zero = common.RunOutcome(0.0, 1.0, FakeIperf())
        assert zero.ratio == 0.0

    def test_single_run_experiment(self):
        # One short end-to-end run through the experiment plumbing.
        timeline = common.Timeline(
            flow_start=0.1, fail_at=0.8, repair_at=1.6, end=2.4,
            baseline_window=(0.4, 0.8), failure_window=(1.0, 1.6),
            sample_interval_s=0.2,
        )
        scn = common.scenario_factory("fifteen_node")()
        outcome = common.run_failure_experiment(
            scn, "nip", "partial", ("SW7", "SW13"), seed=1,
            timeline=timeline,
        )
        assert outcome.baseline_mbps > 0
        assert 0.0 <= outcome.ratio <= 1.5

    def test_ratio_ci(self):
        class FakeIperf:
            pass

        outcomes = [
            common.RunOutcome(10.0, v, FakeIperf()) for v in (5.0, 6.0, 7.0)
        ]
        ci = common.ratio_ci(outcomes)
        assert ci.mean == pytest.approx(0.6)
        assert ci.n == 3


class TestFigure8Model:
    def test_analytical_model(self):
        model = figure8.analytical_model()
        assert model.p_success == 0.5
        assert model.expected_total_hops == pytest.approx(6.0)

    def test_paper_ratio_constant(self):
        assert figure8.PAPER_RATIO == pytest.approx(0.548)
