"""Tests for experiment export helpers."""

import json

import pytest

from repro.analysis.stats import MeanCI
from repro.experiments.export import (
    figure5_rows,
    figure7_rows,
    rows_to_csv,
    rows_to_json,
    sparkline,
    write_rows,
)
from repro.experiments.figure5 import Figure5Cell
from repro.experiments.figure7 import Figure7Point


def _ci(mean):
    return MeanCI(mean=mean, half_width=0.1, n=3, confidence=0.95)


class TestSparkline:
    def test_monotone_ramp(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▅█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_downsampling(self):
        s = sparkline(list(range(100)), width=10)
        assert len(s) == 10
        assert s[0] == "▁" and s[-1] == "█"


class TestRows:
    def test_figure5_rows(self):
        cells = [
            Figure5Cell("nip", "full", ("SW10", "SW7"),
                        throughput_mbps=_ci(14.0), ratio=_ci(0.7)),
        ]
        rows = figure5_rows(cells)
        assert rows[0]["failure"] == "SW10-SW7"
        assert rows[0]["ratio_mean"] == 0.7
        assert rows[0]["n"] == 3

    def test_figure7_rows(self):
        points = [
            Figure7Point(None, throughput_mbps=_ci(9.5), ratio=_ci(1.0)),
            Figure7Point(("SW13", "SW41"),
                         throughput_mbps=_ci(3.2), ratio=_ci(0.35)),
        ]
        rows = figure7_rows(points)
        assert rows[0]["failure"] == "no failure"
        assert rows[1]["failure"] == "SW13-SW41"


class TestSerializers:
    ROWS = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    def test_csv(self):
        text = rows_to_csv(self.ROWS)
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_json(self):
        data = json.loads(rows_to_json(self.ROWS))
        assert data == self.ROWS

    def test_write_rows(self, tmp_path):
        csv_path = tmp_path / "out.csv"
        write_rows(self.ROWS, str(csv_path))
        assert csv_path.read_text().startswith("a,b")
        json_path = tmp_path / "out.json"
        write_rows(self.ROWS, str(json_path))
        assert json.loads(json_path.read_text()) == self.ROWS

    def test_write_rows_bad_extension(self, tmp_path):
        with pytest.raises(ValueError, match="extension"):
            write_rows(self.ROWS, str(tmp_path / "out.xml"))


class TestChaosRows:
    def test_rows_flatten_runs(self, tmp_path):
        from repro.experiments.chaos_sweep import ChaosRun
        from repro.experiments.export import chaos_rows

        run = ChaosRun(
            scenario="fifteen_node", technique="nip", mode="mtbf",
            seed=42, sent=100, delivered=97,
            drop_reasons=(("link-down", 3),),
            violations=(), chaos_events=8, digest="deadbeef",
            peak_links_down=3, reencode_requests=5,
            reencode_timeouts=1, reencode_giveups=0, mtbf_s=2.0,
        )
        rows = chaos_rows([run])
        assert rows[0]["delivery_ratio"] == pytest.approx(0.97)
        assert rows[0]["dropped"] == 3
        assert rows[0]["violations"] == 0
        path = tmp_path / "chaos.csv"
        write_rows(rows, str(path))
        assert "deadbeef" in path.read_text()
