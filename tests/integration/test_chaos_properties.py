"""Property-style chaos trials on random topologies (stdlib random only).

Seeded trials drive the full stack on generated networks while an
MTBF/MTTR chaos process flips core links mid-flight, asserting the
properties the deflection techniques claim:

* NIP never forwards a packet back out its input port (no ping-pong),
  even when the port set is shifting under it;
* AVP and NIP never select a port whose link is down at decision time;
* packet conservation holds for every technique: injected ==
  delivered + dropped once the network drains.

The invariant checker runs in collect mode so a failing trial reports
every violation (with hop traces) instead of stopping at the first.
"""

import random

import pytest

from repro.controller.protection import ProtectionPlanner
from repro.runner import KarSimulation
from repro.topology import Scenario, attach_host_pair, random_connected, shortest_path

#: Seeds for the trial generator — bump to widen the search.
MASTER_SEEDS = (11, 23)
TRIALS_PER_SEED = 3
TRAFFIC_S = 1.5
DRAIN_S = 2.5


def _random_scenario(seed):
    graph = random_connected(
        9, extra_links=5, seed=seed, min_switch_id=53,
        rate_mbps=50.0, delay_s=0.0002,
    )
    names = sorted(graph.node_names())
    src_sw, dst_sw = names[0], names[-1]
    src_host, dst_host = attach_host_pair(
        graph, src_sw, dst_sw, rate_mbps=50.0, delay_s=0.0002
    )
    route = shortest_path(graph, src_sw, dst_sw)
    plan = ProtectionPlanner(graph).full(route)
    return Scenario(
        name=f"chaos-random-{seed}",
        graph=graph,
        primary_route=tuple(route),
        src_host=src_host,
        dst_host=dst_host,
        protection={"full": tuple(plan.segments), "none": ()},
    )


def _chaos_trial(technique, topo_seed, run_seed):
    scenario = _random_scenario(topo_seed)
    ks = KarSimulation(
        scenario, deflection=technique, protection="full",
        seed=run_seed, ttl=96, invariants=True,
    )
    ks.add_chaos("mtbf", until=TRAFFIC_S, mtbf_s=0.6, mttr_s=0.25)
    src, sink = ks.add_udp_probe(rate_pps=250, duration_s=TRAFFIC_S)
    src.start(at=0.05)
    ks.run(until=TRAFFIC_S + DRAIN_S)
    ks.check_conservation()
    return ks, src, sink


def _trial_seeds():
    for master in MASTER_SEEDS:
        gen = random.Random(master)
        for _ in range(TRIALS_PER_SEED):
            yield gen.randrange(10_000), gen.randrange(10_000)


@pytest.mark.parametrize("technique", ["avp", "nip"])
def test_no_dead_port_forward_under_midflight_flips(technique):
    for topo_seed, run_seed in _trial_seeds():
        ks, _, _ = _chaos_trial(technique, topo_seed, run_seed)
        bad = [
            v for v in ks.invariants.violations
            if v.kind == "dead-port-forward"
        ]
        assert not bad, (
            f"{technique} topo={topo_seed} run={run_seed}:\n"
            + "\n".join(v.describe() for v in bad[:5])
        )


def test_nip_never_ping_pongs():
    for topo_seed, run_seed in _trial_seeds():
        ks, _, _ = _chaos_trial("nip", topo_seed, run_seed)
        # invariants=True arms forbid_return_to_sender for NIP runs.
        assert ks.invariants.forbid_return_to_sender
        bad = [
            v for v in ks.invariants.violations
            if v.kind == "return-to-sender"
        ]
        assert not bad, (
            f"topo={topo_seed} run={run_seed}:\n"
            + "\n".join(v.describe() for v in bad[:5])
        )


@pytest.mark.parametrize("technique", ["hp", "avp", "nip"])
def test_conservation_under_chaos(technique):
    topo_seed, run_seed = next(iter(_trial_seeds()))
    ks, src, sink = _chaos_trial(technique, topo_seed, run_seed)
    assert ks.invariants.violation_counts["conservation"] == 0
    dropped = sum(ks.tracer.drop_reasons.values())
    assert sink.received + dropped == src.sent
    assert ks.invariants.injected == src.sent
