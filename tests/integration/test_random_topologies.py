"""Property-based integration tests on generated topologies.

Hypothesis drives the whole stack (generator -> planner -> simulation)
on random networks the paper never saw, asserting the system-level
invariants KAR claims:

* clean networks deliver everything along the shortest path,
* full planned protection keeps single-link failures hitless whenever
  the deflection candidates are coverable,
* encodings stay consistent: the route ID's residues always equal the
  ports the topology dictates.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.protection import ProtectionPlanner
from repro.controller.routing import encode_node_path
from repro.runner import KarSimulation
from repro.topology import (
    Scenario,
    attach_host_pair,
    random_connected,
    shortest_path,
)


def _make_scenario(seed: int, extra_links: int):
    graph = random_connected(
        10, extra_links=extra_links, seed=seed, min_switch_id=53,
        rate_mbps=50.0, delay_s=0.0002,
    )
    names = sorted(graph.node_names())
    src_sw, dst_sw = names[0], names[-1]
    if src_sw == dst_sw:
        return None
    src_host, dst_host = attach_host_pair(
        graph, src_sw, dst_sw, rate_mbps=50.0, delay_s=0.0002
    )
    route = shortest_path(graph, src_sw, dst_sw)
    planner = ProtectionPlanner(graph)
    plan = planner.full(route)
    return Scenario(
        name=f"random-{seed}",
        graph=graph,
        primary_route=tuple(route),
        src_host=src_host,
        dst_host=dst_host,
        protection={"full": tuple(plan.segments), "none": ()},
    ), plan


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 200), extra=st.integers(2, 8))
def test_clean_network_delivers_on_route(seed, extra):
    made = _make_scenario(seed, extra)
    if made is None:
        return
    scenario, _ = made
    ks = KarSimulation(scenario, deflection="nip", protection="full",
                       seed=seed)
    src, sink = ks.add_udp_probe(rate_pps=200, duration_s=0.5)
    src.start()
    ks.run(until=2.0)
    assert sink.received == src.sent
    route_hops = len(scenario.primary_route)
    assert sink.mean_hops() == pytest.approx(route_hops)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 200), extra=st.integers(2, 8))
def test_failure_on_first_link_is_survivable(seed, extra):
    made = _make_scenario(seed, extra)
    if made is None:
        return
    scenario, plan = made
    route = scenario.primary_route
    if len(route) < 2:
        return
    ks = KarSimulation(scenario, deflection="nip", protection="full",
                       seed=seed, ttl=128)
    ks.schedule_failure(route[0], route[1], at=0.3)
    src, sink = ks.add_udp_probe(rate_pps=200, duration_s=1.0)
    src.start(at=0.5)
    ks.run(until=8.0)
    # With full coverage of the ingress switch's candidates, the failure
    # is hitless.  With uncoverable candidates (sparse graphs), packets
    # random-walk and may die at the TTL — the invariant that always
    # holds is conservation: every packet is delivered or accounted for
    # by an explicit drop reason (nothing silently vanishes).
    ingress_candidates = set(
        nb for nb in scenario.graph.core_subgraph_neighbors(route[0])
        if nb != route[1]
    )
    if not ingress_candidates:
        return  # bridge: KAR cannot help, skip
    if ingress_candidates <= set(plan.covered):
        assert sink.received == src.sent
    else:
        accounted = sink.received + sum(ks.tracer.drop_reasons.values())
        assert accounted == src.sent


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500))
def test_encoding_consistency_on_random_routes(seed):
    graph = random_connected(12, extra_links=6, seed=seed, min_switch_id=59)
    names = sorted(graph.node_names())
    route = shortest_path(graph, names[0], names[-1])
    if len(route) < 2:
        return
    encoded = encode_node_path(graph, route)
    # Residue check: the route ID reproduces the topology's port numbers
    # at every on-route switch except the last (which has no next hop).
    for current, nxt in zip(route, route[1:]):
        sid = graph.switch_id(current)
        assert encoded.route_id % sid == graph.port_of(current, nxt)
