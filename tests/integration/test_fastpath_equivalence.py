"""Fast datapath vs reference datapath: bit-identical, property-style.

The fast path (residue hints and caching, membership port checks,
tuple fallbacks, handle-free scheduling) must not change behaviour by
even one RNG draw.  Each test here runs the same seeded workload twice
— once per datapath — on a random topology with a random failure
schedule, and requires identical hop-by-hop traces and identical
outcome digests (counters, drop reasons, event count, final RNG
states).
"""

import hashlib
import random

import pytest

from repro.controller.protection import ProtectionPlanner
from repro.farm.jobs import record_digest
from repro.runner import KarSimulation
from repro.sim.fastpath import fastpath_enabled, use_fastpath
from repro.switches.core import KarSwitch
from repro.switches.deflection import STRATEGY_NAMES
from repro.topology import (
    NodeKind,
    Scenario,
    attach_host_pair,
    random_connected,
    shortest_path,
)

_TRAFFIC_S = 0.8


def _make_scenario(seed: int, num_switches: int, extra_links: int) -> Scenario:
    graph = random_connected(
        num_switches, extra_links=extra_links, seed=seed,
        min_switch_id=79, rate_mbps=50.0, delay_s=0.0002,
    )
    names = sorted(graph.node_names())
    src_sw, dst_sw = names[0], names[-1]
    src_host, dst_host = attach_host_pair(
        graph, src_sw, dst_sw, rate_mbps=50.0, delay_s=0.0002
    )
    route = shortest_path(graph, src_sw, dst_sw)
    plan = ProtectionPlanner(graph).full(route)
    return Scenario(
        name=f"fastpath-eq-{seed}",
        graph=graph,
        primary_route=tuple(route),
        src_host=src_host,
        dst_host=dst_host,
        protection={"full": tuple(plan.segments), "none": ()},
    )


def _random_failures(scenario: Scenario, seed: int, k: int = 3):
    """A random schedule of core-link failures (some repaired)."""
    rng = random.Random(seed * 9176 + 11)
    core = set(scenario.graph.node_names(NodeKind.CORE))
    candidates = [
        link for link in scenario.graph.links()
        if link.a in core and link.b in core
    ]
    rng.shuffle(candidates)
    events = []
    for link in candidates[:k]:
        at = round(rng.uniform(0.1, _TRAFFIC_S * 0.6), 4)
        repair = (
            round(at + rng.uniform(0.1, _TRAFFIC_S * 0.4), 4)
            if rng.random() < 0.7 else None
        )
        events.append((link.a, link.b, at, repair))
    return events


def _run(scenario: Scenario, strategy: str, seed: int, failures):
    ks = KarSimulation(
        scenario, deflection=strategy, protection="none",
        seed=seed, ttl=64, trace_paths=True,
    )
    src, sink = ks.add_udp_probe(rate_pps=200, duration_s=_TRAFFIC_S)
    src.start(at=0.05)
    for a, b, at, repair in failures:
        ks.schedule_failure(a, b, at=at, repair_at=repair)
    ks.run(until=_TRAFFIC_S + 1.0)
    return ks, src, sink


def _outcome(ks: KarSimulation, src, sink) -> dict:
    """Digestable run outcome; deliberately mirrors the bit-identical
    contract (counters + event order + RNG stream positions)."""
    switches = {}
    rng_fp = hashlib.sha256()
    for info in sorted(ks.scenario.graph.nodes(NodeKind.CORE),
                       key=lambda i: i.name):
        sw = ks.network.node(info.name)
        assert isinstance(sw, KarSwitch)
        switches[info.name] = [sw.forwarded, sw.deflections, sw.drops]
        rng_fp.update(repr(sw._rng.getstate()).encode("utf-8"))
    record = {
        "sent": src.sent,
        "received": sink.received,
        "events": ks.sim.events_processed,
        "drop_reasons": dict(sorted(ks.tracer.drop_reasons.items())),
        "switches": switches,
        "rng_fingerprint": rng_fp.hexdigest()[:16],
    }
    record["digest"] = record_digest(record)
    return record


class TestFastPathEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    @pytest.mark.parametrize("seed", [3, 23, 77])
    def test_bit_identical_on_random_topology(self, seed, strategy):
        scenario = _make_scenario(
            seed, num_switches=12, extra_links=2 + seed % 5
        )
        failures = _random_failures(scenario, seed)
        with use_fastpath(False):
            ks_ref, src, sink = _run(scenario, strategy, seed, failures)
            ref = _outcome(ks_ref, src, sink)
        ref_paths = ks_ref.tracer._paths
        with use_fastpath(True):
            ks_fast, src, sink = _run(scenario, strategy, seed, failures)
            fast = _outcome(ks_fast, src, sink)
        fast_paths = ks_fast.tracer._paths
        assert fast == ref  # counters, drop reasons, events, RNG states
        assert fast["digest"] == ref["digest"]
        # Hop-by-hop: every packet took the same ports with the same
        # deflection flags at the same times.  Packet uids are a
        # process-global counter, so compare traces in uid order, not
        # by raw uid.
        assert len(fast_paths) == len(ref_paths)
        for ref_hops, fast_hops in zip(
            (ref_paths[k] for k in sorted(ref_paths)),
            (fast_paths[k] for k in sorted(fast_paths)),
        ):
            assert fast_hops == ref_hops

    def test_default_build_is_fast(self):
        assert fastpath_enabled() is True

    def test_use_fastpath_restores_flag(self):
        before = fastpath_enabled()
        with use_fastpath(not before):
            assert fastpath_enabled() is not before
        assert fastpath_enabled() is before

    def test_residue_machinery_engages_on_fast_runs(self):
        scenario = _make_scenario(11, num_switches=12, extra_links=4)
        with use_fastpath(True):
            ks, src, sink = _run(scenario, "nip", 11,
                                 _random_failures(scenario, 11))
        hints = misses = 0
        for info in ks.scenario.graph.nodes(NodeKind.CORE):
            sw = ks.network.node(info.name)
            hints += sw.forwarded
            misses += sw.residue_misses
        # On-route forwarding resolves via encode-time hints, so cache
        # misses (which each pay one real modulo) are rare relative to
        # forwards even under deflection churn.
        assert hints > 0
        assert misses < hints
