"""End-to-end integration tests: the whole stack on paper scenarios.

These drive a full KarSimulation (topology -> controller -> switches ->
transport) and assert the paper's *properties* rather than numbers:

* **correct forwarding** — without failures, packets follow exactly the
  encoded route;
* **hitless liveness** — with driven deflection, a single link failure
  on the route loses no probe packets;
* **loop-free safety** — hop counts stay bounded (driven deflections do
  not create persistent loops);
* **determinism** — identical seeds give identical results.
"""

import pytest

from repro import (
    FULL,
    PARTIAL,
    UNPROTECTED,
    KarSimulation,
    fifteen_node,
    redundant_path,
    rnp28,
    six_node,
)


class TestForwardingWithoutFailure:
    def test_six_node_exact_path(self):
        ks = KarSimulation(six_node(), deflection="nip", protection=FULL,
                           seed=0, trace_paths=True)
        src, sink = ks.add_udp_probe(rate_pps=50, duration_s=0.5)
        src.start()
        ks.run(until=2.0)
        assert sink.received == src.sent
        # Every packet walked SW4 -> SW7 -> SW11 — never SW5 (the
        # protection hop is dormant while the route is healthy).
        uid = next(iter(ks.tracer.deliveries))
        assert ks.tracer.switch_sequence(uid) == ["E-S", "SW4", "SW7",
                                                  "SW11", "E-D"] or \
            ks.tracer.switch_sequence(uid) == ["SW4", "SW7", "SW11"]

    def test_fifteen_node_hop_count(self):
        ks = KarSimulation(fifteen_node(), deflection="nip",
                           protection=PARTIAL, seed=0)
        src, sink = ks.add_udp_probe(rate_pps=100, duration_s=1.0)
        src.start()
        ks.run(until=3.0)
        assert sink.received == src.sent
        assert sink.mean_hops() == pytest.approx(4.0)  # SW10,SW7,SW13,SW29

    @pytest.mark.parametrize("build", [six_node, fifteen_node, rnp28,
                                       redundant_path])
    def test_all_scenarios_deliver_clean(self, build):
        scn = build()
        levels = scn.protection_levels()
        ks = KarSimulation(scn, deflection="nip", protection=levels[-1],
                           seed=1)
        src, sink = ks.add_udp_probe(rate_pps=100, duration_s=1.0)
        src.start()
        ks.run(until=4.0)
        assert sink.received == src.sent
        assert ks.tracer.total_drops == 0


class TestHitlessFailureReaction:
    def test_fifteen_node_nip_full_is_exactly_hitless(self):
        # NIP + full protection: every deflection candidate is driven,
        # so not a single probe packet may be lost.
        scn = fifteen_node()
        for failure in scn.failure_links:
            ks = KarSimulation(fifteen_node(), deflection="nip",
                               protection=FULL, seed=3)
            ks.schedule_failure(*failure, at=0.5)
            src, sink = ks.add_udp_probe(rate_pps=200, duration_s=2.0)
            src.start(at=1.0)
            ks.run(until=8.0)
            assert sink.received == src.sent, failure

    def test_fifteen_node_avp_nearly_hitless(self):
        # AVP may bounce a few packets through edges/TTL on long
        # excursions; losses must stay marginal (paper: "avoids packet
        # loss" is demonstrated with driven paths, AVP is best-effort).
        scn = fifteen_node()
        for failure in scn.failure_links:
            ks = KarSimulation(fifteen_node(), deflection="avp",
                               protection=FULL, seed=3)
            ks.schedule_failure(*failure, at=0.5)
            src, sink = ks.add_udp_probe(rate_pps=200, duration_s=2.0)
            src.start(at=1.0)
            ks.run(until=8.0)
            assert sink.received >= 0.98 * src.sent, failure

    def test_rnp_nearly_hitless_with_partial(self):
        # Partial protection leaves 3 of 5 candidates wandering for the
        # SW13-SW41 failure; wanderers can occasionally die at the TTL.
        scn = rnp28()
        for failure in scn.failure_links:
            ks = KarSimulation(rnp28(), deflection="nip",
                               protection=PARTIAL, seed=3)
            ks.schedule_failure(*failure, at=0.5)
            src, sink = ks.add_udp_probe(rate_pps=200, duration_s=2.0)
            src.start(at=1.0)
            ks.run(until=8.0)
            assert sink.received >= 0.99 * src.sent, failure

    def test_redundant_path_geometric_retry_delivers(self):
        ks = KarSimulation(redundant_path(), deflection="nip",
                           protection=PARTIAL, seed=3)
        ks.schedule_failure("SW73", "SW107", at=0.5)
        src, sink = ks.add_udp_probe(rate_pps=200, duration_s=2.0)
        src.start(at=1.0)
        ks.run(until=8.0)
        assert sink.received == src.sent
        # The retry loop shows as hop inflation, not loss.
        assert sink.mean_hops() > 4.0

    def test_no_deflection_drops_everything(self):
        ks = KarSimulation(fifteen_node(), deflection="none",
                           protection=UNPROTECTED, seed=3)
        ks.schedule_failure("SW7", "SW13", at=0.5)
        src, sink = ks.add_udp_probe(rate_pps=100, duration_s=1.0)
        src.start(at=1.0)
        ks.run(until=5.0)
        assert sink.received == 0
        assert ks.tracer.drop_reasons["no-usable-port(none)"] == src.sent


class TestSafety:
    def test_hop_counts_bounded_with_driven_deflection(self):
        # Loop-free condition: driven deflections must not inflate hop
        # counts beyond route + protection-tree depth.
        ks = KarSimulation(fifteen_node(), deflection="nip",
                           protection=FULL, seed=5)
        ks.schedule_failure("SW10", "SW7", at=0.5)
        src, sink = ks.add_udp_probe(rate_pps=300, duration_s=2.0)
        src.start(at=1.0)
        ks.run(until=6.0)
        assert sink.received == src.sent
        max_hops = max(a[3] for a in sink.arrivals)
        assert max_hops <= 6  # 4-hop route +2 protection-tree hops

    def test_ttl_kills_hot_potato_walks(self):
        ks = KarSimulation(fifteen_node(), deflection="hp",
                           protection=UNPROTECTED, seed=5, ttl=32)
        ks.schedule_failure("SW7", "SW13", at=0.5)
        src, sink = ks.add_udp_probe(rate_pps=100, duration_s=1.0)
        src.start(at=1.0)
        ks.run(until=8.0)
        # Some walks die at the TTL, none walk forever.
        if sink.received < src.sent:
            assert ks.tracer.drop_reasons["ttl-expired"] > 0
        assert max((a[3] for a in sink.arrivals), default=0) <= 64


class TestDeterminism:
    def test_same_seed_same_everything(self):
        def run(seed):
            ks = KarSimulation(fifteen_node(), deflection="nip",
                               protection=PARTIAL, seed=seed)
            ks.schedule_failure("SW7", "SW13", at=1.0, repair_at=3.0)
            flow = ks.add_iperf()
            flow.start(at=0.2, duration_s=4.0)
            ks.run(until=4.5)
            res = flow.result()
            return (res.bytes_received, res.retransmits,
                    tuple(res.intervals))

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_seed_isolation_across_techniques(self):
        # Same seed, different strategies: baselines (pre-failure) agree
        # because deflection streams are not consumed until the failure.
        def baseline(deflection):
            ks = KarSimulation(fifteen_node(), deflection=deflection,
                               protection=PARTIAL, seed=7)
            flow = ks.add_iperf()
            flow.start(at=0.2, duration_s=1.8)
            ks.run(until=2.0)
            return flow.result().bytes_received

        assert baseline("nip") == baseline("avp") == baseline("hp")
