"""Property suite for the pluggable encoding backends (PR 10).

Hypothesis drives every backend over random topologies and random hop
systems, asserting the contracts the backend protocol promises:

* ``decode(encode(hops))`` recovers every port, for every backend, on
  arbitrary valid hop systems over the backend's own ID pool;
* walk-oracle forwarding equivalence: a route encoded by a backend and
  walked by :func:`~repro.analysis.walk.deterministic_route_walk` with
  that backend's ``port_at`` is delivered along exactly the encoded
  path on random connected topologies;
* the ID assigner feeding each backend emits pairwise-coprime IDs (in
  every ring the backend computes in) that exceed the switch's port
  count — the Section 2 feasibility conditions.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.walk import deterministic_route_walk
from repro.controller.idassign import assign_switch_ids, reassign_switch_ids
from repro.rns import BACKEND_NAMES, Hop, backend_by_name, pairwise_coprime
from repro.rns.gf2 import dual_coprime_pool, gf2_pairwise_coprime
from repro.topology import attach_host_pair, random_connected, shortest_path

backend_names = st.sampled_from(BACKEND_NAMES)


def _pool_for(backend, rng, size):
    if backend.name == "xsr":
        return dual_coprime_pool(size)
    from repro.rns.coprime import greedy_coprime_pool

    return greedy_coprime_pool(size, min_value=rng.choice((4, 23)))


@settings(max_examples=25, deadline=None)
@given(name=backend_names, seed=st.integers(0, 10_000))
def test_encode_decode_identity(name, seed):
    rng = random.Random(seed)
    backend = backend_by_name(name)
    pool = _pool_for(backend, rng, 12)
    backend.prepare(pool)
    k = rng.randrange(1, 9)
    ids = rng.sample(pool, k)
    ports = [rng.randrange(backend.residue_space(s)) for s in ids]
    route = backend.encode([Hop(s, p) for s, p in zip(ids, ports)])
    assert backend.decode(route.route_id, ids) == ports
    assert [backend.port_at(route.route_id, s) for s in ids] == ports
    assert backend.header_bits(route.modulus) == route.bit_length


@settings(max_examples=10, deadline=None)
@given(name=backend_names, seed=st.integers(0, 500),
       extra=st.integers(1, 6))
def test_walk_delivers_along_encoded_route(name, seed, extra):
    backend = backend_by_name(name)
    graph = random_connected(
        9, extra_links=extra, seed=seed, min_switch_id=23
    )
    if name == "xsr":
        reassign_switch_ids(graph, strategy="xsr")
    backend.prepare(graph.switch_ids().values())
    names = sorted(graph.switch_ids())
    src_sw, dst_sw = names[0], names[-1]
    src_host, dst_host = attach_host_pair(graph, src_sw, dst_sw)
    route_nodes = shortest_path(graph, src_sw, dst_sw)
    # Hop ports: toward the next core, then out the host-facing port.
    hops = []
    for node, nxt in zip(route_nodes, route_nodes[1:]):
        hops.append(Hop(graph.switch_id(node), graph.port_of(node, nxt)))
    edge = graph.edge_of_host(dst_host)
    hops.append(Hop(
        graph.switch_id(dst_sw), graph.port_of(dst_sw, edge)
    ))
    route = backend.encode(hops)

    ingress = graph.edge_of_host(src_host)
    verdict = deterministic_route_walk(
        graph, route.route_id, 64, ingress,
        graph.port_of(ingress, src_sw), dst_host,
        port_at=backend.switch_decode(),
    )
    assert verdict.delivered, (verdict.outcome, verdict.reason)
    assert verdict.node == dst_host
    assert [h.node for h in verdict.hops] == route_nodes


@settings(max_examples=15, deadline=None)
@given(name=backend_names, seed=st.integers(0, 10_000),
       n=st.integers(2, 24))
def test_assigner_feasibility(name, seed, n):
    rng = random.Random(seed)
    backend = backend_by_name(name)
    degrees = {f"n{i}": rng.randrange(1, 9) for i in range(n)}
    ids = assign_switch_ids(degrees, backend.id_strategy)
    assert pairwise_coprime(ids.values())
    if name == "xsr":
        assert gf2_pairwise_coprime(ids.values())
    for node, ports in degrees.items():
        assert ids[node] > ports - 1          # integer floor (Eq. 7)
        assert backend.residue_space(ids[node]) >= ports
    backend.validate_switch_ids(sorted(ids.values()))
