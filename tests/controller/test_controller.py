"""Tests for the KAR controller (flow install + re-encode service)."""

import pytest

from repro.controller import KarController
from repro.runner import KarSimulation
from repro.switches.edge import EdgeNode
from repro.topology import FULL, UNPROTECTED, six_node


@pytest.fixture
def ks():
    return KarSimulation(six_node(), deflection="nip", protection=FULL, seed=0)


class TestInstallFlow:
    def test_paper_route_ids(self, ks):
        assert ks.primary_forward.route_id == 660  # protected, Fig. 1b
        assert ks.primary_forward.modulus == 1540
        # Reverse path SW11 -> SW7 -> SW4 (unprotected).
        g = ks.scenario.graph
        expected = {
            11: g.port_of("SW11", "SW7"),
            7: g.port_of("SW7", "SW4"),
            4: g.port_of("SW4", "E-S"),
        }
        assert ks.primary_reverse.residue_map() == expected

    def test_ingress_entries_installed(self, ks):
        ingress = ks.network.node("E-S")
        assert isinstance(ingress, EdgeNode)
        entry = ingress.ingress_entry("D")
        assert entry is not None
        assert entry.route_id == 660
        egress = ks.network.node("E-D")
        assert egress.ingress_entry("S") is not None

    def test_unprotected_level(self):
        ks = KarSimulation(six_node(), protection=UNPROTECTED, seed=0)
        assert ks.primary_forward.route_id == 44
        assert ks.primary_forward.modulus == 308


class TestReencodeService:
    def test_reencode_returns_route_to_host(self, ks):
        entry = ks.controller.reencode("E-S", "D")
        assert entry is not None
        # Shortest path E-S -> E-D is via SW4, SW7, SW11 -> R = 44.
        assert entry.route_id == 44
        assert entry.out_port == ks.scenario.graph.port_of("E-S", "SW4")

    def test_reencode_unknown_host(self, ks):
        assert ks.controller.reencode("E-S", "NOBODY") is None

    def test_reencode_cached(self, ks):
        first = ks.controller.reencode("E-S", "D")
        second = ks.controller.reencode("E-S", "D")
        assert first is second
        assert ks.controller.reencodes_served == 2

    def test_control_rtt_property(self, ks):
        assert ks.controller.control_rtt_s > 0


class TestEncodeRoute:
    def test_explicit_path_with_protection(self, ks):
        from repro.topology import ProtectionSegment

        route = ks.controller.encode_route(
            "E-S", ["SW4", "SW7", "SW11"], "E-D",
            protection=[ProtectionSegment("SW5", "SW11")],
        )
        assert route.route_id == 660

    def test_install_flow_rejects_non_edge(self, ks):
        with pytest.raises(TypeError):
            ks.controller._install_entry(
                ks.network, "SW4", "D", "SW7", ks.primary_forward
            )
