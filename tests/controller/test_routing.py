"""Tests for path-to-hops conversion and route encoding."""

import pytest

from repro.controller import (
    RoutingError,
    core_path_between_edges,
    encode_node_path,
    hops_for_path,
)
from repro.rns import RouteEncoder
from repro.topology import six_node


@pytest.fixture(scope="module")
def scn():
    return six_node()


class TestHopsForPath:
    def test_paper_primary_path(self, scn):
        hops = hops_for_path(
            scn.graph, ["E-S", "SW4", "SW7", "SW11", "E-D"]
        )
        assert [(h.switch_id, h.port) for h in hops] == [(4, 0), (7, 2), (11, 0)]

    def test_skips_non_core_endpoints(self, scn):
        hops = hops_for_path(scn.graph, ["SW4", "SW7", "SW11"])
        # SW11 has no next node, so only SW4 and SW7 emit hops.
        assert [(h.switch_id, h.port) for h in hops] == [(4, 0), (7, 2)]

    def test_non_adjacent_step_rejected(self, scn):
        with pytest.raises(RoutingError, match="not a link"):
            hops_for_path(scn.graph, ["SW4", "SW11"])

    def test_too_short(self, scn):
        with pytest.raises(RoutingError, match="too short"):
            hops_for_path(scn.graph, ["SW4"])

    def test_no_core_hops(self, scn):
        with pytest.raises(RoutingError, match="no core hops"):
            hops_for_path(scn.graph, ["E-D", "D"])


class TestEncodeNodePath:
    def test_paper_route_id_44(self, scn):
        route = encode_node_path(scn.graph, ["E-S", "SW4", "SW7", "SW11", "E-D"])
        assert route.route_id == 44
        assert route.modulus == 308

    def test_paper_route_id_660_with_protection(self, scn):
        from repro.controller import segments_to_hops
        from repro.topology import ProtectionSegment

        extra = segments_to_hops(scn.graph, [ProtectionSegment("SW5", "SW11")])
        route = encode_node_path(
            scn.graph, ["E-S", "SW4", "SW7", "SW11", "E-D"], extra_hops=extra
        )
        assert route.route_id == 660
        assert route.modulus == 1540

    def test_custom_encoder_used(self, scn):
        class CountingEncoder(RouteEncoder):
            calls = 0

            def encode(self, hops):
                type(self).calls += 1
                return super().encode(hops)

        enc = CountingEncoder()
        encode_node_path(scn.graph, ["SW4", "SW7", "SW11"], encoder=enc)
        assert CountingEncoder.calls == 1


class TestCorePathBetweenEdges:
    def test_shortest_edge_to_edge(self, scn):
        path = core_path_between_edges(scn.graph, "E-S", "E-D")
        assert path[0] == "E-S" and path[-1] == "E-D"
        assert path == ["E-S", "SW4", "SW7", "SW11", "E-D"]

    def test_avoids_failed_link(self, scn):
        path = core_path_between_edges(
            scn.graph, "E-S", "E-D", forbidden_links=[("SW11", "SW7")]
        )
        assert path == ["E-S", "SW4", "SW7", "SW5", "SW11", "E-D"]

    def test_hosts_never_transited(self, scn):
        # The only path avoiding all of the core would go through hosts;
        # forbidding the core links must fail rather than route via D.
        with pytest.raises(Exception):
            core_path_between_edges(
                scn.graph, "E-S", "E-D",
                forbidden_links=[("SW11", "SW7"), ("SW11", "SW5"),
                                 ("E-D", "SW11")],
            )


class TestDeltaReencodeRoute:
    def _delta(self, scn):
        from repro.rns import PoolContext, ReencodeDelta

        return ReencodeDelta(PoolContext.from_graph(scn.graph))

    def test_matches_fresh_encode(self, scn):
        from repro.controller import delta_reencode_route
        from repro.rns import Hop

        route = encode_node_path(
            scn.graph, ["E-S", "SW4", "SW7", "SW11", "E-D"]
        )
        updated = delta_reencode_route(
            scn.graph, route, "SW7", "SW5", self._delta(scn)
        )
        want = RouteEncoder().encode(
            [Hop(4, 0), Hop(7, scn.graph.port_of("SW7", "SW5")), Hop(11, 0)]
        )
        assert updated == want

    def test_identity_returns_same_route(self, scn):
        from repro.controller import delta_reencode_route

        route = encode_node_path(
            scn.graph, ["E-S", "SW4", "SW7", "SW11", "E-D"]
        )
        assert delta_reencode_route(
            scn.graph, route, "SW7", "SW11", self._delta(scn)
        ) is route

    def test_non_link_rejected(self, scn):
        from repro.controller import delta_reencode_route

        route = encode_node_path(
            scn.graph, ["E-S", "SW4", "SW7", "SW11", "E-D"]
        )
        with pytest.raises(RoutingError, match="not a link"):
            delta_reencode_route(
                scn.graph, route, "SW7", "E-S", self._delta(scn)
            )
