"""Tests for the edge->controller retry policy and its edge integration."""

import random

import pytest

from repro.controller.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.sim.engine import Simulator
from repro.sim.packet import KarHeader, Packet
from repro.switches.edge import EdgeNode


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        assert DEFAULT_RETRY_POLICY.max_attempts >= 1

    @pytest.mark.parametrize("kwargs", [
        {"timeout_s": 0.0},
        {"timeout_s": -1.0},
        {"max_attempts": 0},
        {"base_backoff_s": 0.0},
        {"multiplier": 0.5},
        {"max_backoff_s": 0.001, "base_backoff_s": 0.01},
        {"jitter_frac": 1.5},
        {"jitter_frac": -0.1},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBackoffSchedule:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_backoff_s=0.01, multiplier=2.0,
                             max_backoff_s=1.0, jitter_frac=0.0)
        rng = random.Random(0)
        waits = [policy.backoff_s(a, rng) for a in (1, 2, 3, 4)]
        assert waits == pytest.approx([0.01, 0.02, 0.04, 0.08])

    def test_backoff_capped(self):
        policy = RetryPolicy(base_backoff_s=0.01, multiplier=10.0,
                             max_backoff_s=0.05, jitter_frac=0.0)
        rng = random.Random(0)
        assert policy.backoff_s(5, rng) == pytest.approx(0.05)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            DEFAULT_RETRY_POLICY.backoff_s(0, random.Random(0))

    def test_jitter_is_deterministic_under_fixed_seed(self):
        policy = RetryPolicy(jitter_frac=0.5)
        a = [policy.backoff_s(i, random.Random(42)) for i in (1, 2, 3)]
        b = [policy.backoff_s(i, random.Random(42)) for i in (1, 2, 3)]
        assert a == b

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_backoff_s=0.01, multiplier=1.0,
                             max_backoff_s=0.01, jitter_frac=0.5)
        rng = random.Random(7)
        for attempt in range(1, 20):
            wait = policy.backoff_s(attempt, rng)
            assert 0.01 <= wait < 0.01 * 1.5

    def test_schedule_shape(self):
        # max_attempts timeouts interleaved with max_attempts-1 backoffs.
        policy = RetryPolicy(max_attempts=4)
        waits = policy.schedule(random.Random(0))
        assert len(waits) == 4 + 3
        assert waits[0] == policy.timeout_s
        assert waits[-1] == policy.timeout_s

    def test_worst_case_bounds_every_schedule(self):
        policy = RetryPolicy()
        for seed in range(20):
            total = sum(policy.schedule(random.Random(seed)))
            assert total <= policy.worst_case_s() + 1e-12


class _Controller:
    """Scriptable re-encode service for edge tests."""

    def __init__(self, entry=None):
        self.entry = entry
        self.reachable = True
        self.control_rtt_s = 0.001
        self.calls = 0

    def reencode(self, edge_name, dst_host):
        self.calls += 1
        return self.entry


def _stray_packet(ttl=32):
    return Packet(src_host="S", dst_host="D", size_bytes=100,
                  kar=KarHeader(route_id=1, modulus=5, ttl=ttl))


def _edge(sim, policy, ctrl):
    edge = EdgeNode("E1", sim, num_ports=2, retry_policy=policy,
                    rng=random.Random(1))
    edge.set_controller(ctrl)
    return edge


class TestEdgeDegradation:
    """The hardened misdelivery path: timeout, retry, give up, recover."""

    def test_unreachable_controller_exhausts_attempts_and_drops(self):
        sim = Simulator()
        policy = RetryPolicy(timeout_s=0.01, max_attempts=3,
                             base_backoff_s=0.005, jitter_frac=0.0)
        ctrl = _Controller()
        ctrl.reachable = False
        edge = _edge(sim, policy, ctrl)

        # Route a stray core packet in (port 0 is not a host port).
        edge.receive(_stray_packet(), in_port=0)
        sim.run()
        assert ctrl.calls == 0  # never answered, never invoked
        assert edge.reencode_requests == 3
        assert edge.reencode_timeouts == 3
        assert edge.reencode_retries == 2
        assert edge.reencode_giveups == 1
        assert edge.drops == 1

    def test_drop_reason_is_reencode_unreachable(self):
        sim = Simulator()
        policy = RetryPolicy(timeout_s=0.01, max_attempts=2,
                             base_backoff_s=0.005, jitter_frac=0.0)
        ctrl = _Controller()
        ctrl.reachable = False
        edge = _edge(sim, policy, ctrl)
        reasons = []

        class Tracer:
            def on_drop(self, time, node, packet, reason):
                reasons.append(reason)

        edge.tracer = Tracer()
        edge.receive(_stray_packet(), in_port=0)
        sim.run()
        assert reasons == ["reencode-unreachable"]

    def test_recovery_mid_retries_answers_the_request(self):
        from repro.switches.edge import IngressEntry

        sim = Simulator()
        policy = RetryPolicy(timeout_s=0.01, max_attempts=4,
                             base_backoff_s=0.005, jitter_frac=0.0)
        ctrl = _Controller(entry=IngressEntry(
            route_id=3, modulus=5, out_port=0, ttl=16))
        ctrl.reachable = False
        edge = _edge(sim, policy, ctrl)
        # Controller comes back after the first timeout+backoff window.
        sim.schedule_at(0.012, setattr, ctrl, "reachable", True)
        edge.receive(_stray_packet(), in_port=0)
        sim.run()
        assert ctrl.calls == 1          # second attempt got through
        assert edge.reencode_timeouts == 1
        assert edge.reencode_giveups == 0
        assert edge.drops == 0

    def test_retry_timing_is_seed_deterministic(self):
        def run(seed):
            sim = Simulator()
            policy = RetryPolicy(timeout_s=0.01, max_attempts=4,
                                 base_backoff_s=0.005, jitter_frac=0.5)
            ctrl = _Controller()
            ctrl.reachable = False
            edge = EdgeNode("E1", sim, num_ports=2, retry_policy=policy,
                            rng=random.Random(seed))
            edge.set_controller(ctrl)
            times = []

            class Tracer:
                def on_drop(self, time, node, packet, reason):
                    times.append(time)

            edge.tracer = Tracer()
            edge.receive(_stray_packet(), in_port=0)
            sim.run()
            return times

        assert run(5) == run(5)
        assert run(5) != run(6)  # jitter actually draws from the stream

    def test_reachable_controller_unaffected_by_policy(self):
        from repro.switches.edge import IngressEntry

        sim = Simulator()
        ctrl = _Controller(entry=IngressEntry(
            route_id=3, modulus=5, out_port=0, ttl=16))
        edge = _edge(sim, DEFAULT_RETRY_POLICY, ctrl)
        edge.receive(_stray_packet(), in_port=0)
        sim.run()
        assert ctrl.calls == 1
        assert edge.reencode_timeouts == 0
        assert edge.reencode_requests == 1


class _FixedService:
    """Minimal ReencodeService: serves a fixed entry table, counts calls."""

    control_rtt_s = 0.005
    reachable = True

    def __init__(self, entries):
        self.entries = entries
        self.calls = 0

    def reencode(self, edge_name, dst_host):
        self.calls += 1
        return self.entries.get((edge_name, dst_host))


class TestDeltaReencodeService:
    def _service(self, entries):
        from repro.controller.retry import DeltaReencodeService
        from repro.rns import PoolContext, ReencodeDelta

        inner = _FixedService(entries)
        delta = ReencodeDelta(PoolContext([4, 5, 7, 11]))
        return DeltaReencodeService(inner, delta), inner

    @staticmethod
    def _entry(hops, out_port=0):
        from repro.rns import Hop, RouteEncoder
        from repro.switches.edge import IngressEntry

        route = RouteEncoder().encode([Hop(s, p) for s, p in hops])
        return IngressEntry(
            route_id=route.route_id, modulus=route.modulus,
            out_port=out_port, ttl=16, residues=route.residue_map(),
        )

    def test_serves_inner_then_cache(self):
        entry = self._entry([(4, 0), (7, 2), (11, 0)])
        svc, inner = self._service({("E-S", "D"): entry})
        assert svc.reencode("E-S", "D") is entry
        assert svc.reencode("E-S", "D") is entry
        assert inner.calls == 1
        assert (svc.served_inner, svc.served_local) == (1, 1)

    def test_delegates_protocol_properties(self):
        svc, inner = self._service({})
        assert svc.control_rtt_s == inner.control_rtt_s
        assert svc.reachable is inner.reachable

    def test_port_change_patches_bit_identically(self):
        from repro.rns import Hop, RouteEncoder

        entry = self._entry([(4, 0), (7, 2), (11, 0)])
        svc, inner = self._service({("E-S", "D"): entry})
        svc.reencode("E-S", "D")
        assert svc.note_port_change(7, 1) == 1
        patched = svc.reencode("E-S", "D")
        want = RouteEncoder().encode([Hop(4, 0), Hop(7, 1), Hop(11, 0)])
        assert patched.route_id == want.route_id
        assert patched.modulus == want.modulus
        assert patched.residues == want.residue_map()
        assert patched.out_port == entry.out_port
        assert inner.calls == 1  # never went back to the controller
        assert svc.delta_updates == 1

    def test_identity_and_unencoded_switches_untouched(self):
        entry = self._entry([(4, 0), (7, 2), (11, 0)])
        svc, _ = self._service({("E-S", "D"): entry})
        svc.reencode("E-S", "D")
        assert svc.note_port_change(7, 2) == 0   # identity
        assert svc.note_port_change(5, 1) == 0   # switch not on the route
        assert svc.reencode("E-S", "D") is entry

    def test_entry_without_residues_is_refetched(self):
        from repro.switches.edge import IngressEntry

        bare = IngressEntry(route_id=44, modulus=308, out_port=0, ttl=16)
        svc, inner = self._service({("E-S", "D"): bare})
        svc.reencode("E-S", "D")
        assert svc.note_port_change(7, 1) == 0
        svc.reencode("E-S", "D")  # dropped from cache -> inner again
        assert inner.calls == 2

    def test_negative_answers_stay_cached_until_invalidate(self):
        svc, inner = self._service({})
        assert svc.reencode("E-S", "D") is None
        assert svc.note_port_change(7, 1) == 0
        assert svc.reencode("E-S", "D") is None
        assert inner.calls == 1
        svc.invalidate()
        svc.reencode("E-S", "D")
        assert inner.calls == 2
