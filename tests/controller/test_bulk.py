"""Tests for the vectorized bulk provisioner.

The contract under test is *bit identity*: every route the bulk path
produces — node path, hop tuple, route ID, modulus, out-port — must
equal what the per-flow :class:`ProvisioningEngine` produces for the
same pair, on paper topologies, reference WANs, random graphs
(Hypothesis), and under link failures.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.bulk import (
    BulkProvisioner,
    full_mesh_pairs,
    mesh_digest,
    mesh_digest_reference,
)
from repro.controller.provision import ProvisionError, ProvisioningEngine
from repro.topology import (
    NodeKind,
    fifteen_node,
    random_connected,
    six_node,
)
from repro.topology.generators import attach_edges
from repro.topology.zoo import abilene, fat_tree


@pytest.fixture(scope="module")
def six():
    return six_node().graph


@pytest.fixture(scope="module")
def abilene_mesh():
    g = abilene()
    attach_edges(g)
    return g


def _edge_names(graph):
    return sorted(n.name for n in graph.nodes(NodeKind.EDGE))


def _assert_mesh_identical(graph):
    """Every pair: bulk ProvisionedRoute == per-flow ProvisionedRoute."""
    engine = ProvisioningEngine(graph, validated_pool=True)
    bp = BulkProvisioner(graph)
    edges = _edge_names(graph)
    for dst in edges:
        got = bp.routes_for(dst, [s for s in edges if s != dst])
        for src, route in got.items():
            ref = engine.provision(src, dst)
            assert route == ref, (src, dst)
            assert route.route.hops == ref.route.hops


class TestBitIdentity:
    def test_paper_route_id_44(self, six):
        bp = BulkProvisioner(six)
        p = bp.routes_for("E-D", ["E-S"])["E-S"]
        assert p.node_path == ("E-S", "SW4", "SW7", "SW11", "E-D")
        assert (p.route.route_id, p.route.modulus) == (44, 308)
        assert p.out_port == six.port_of("E-S", "SW4")

    def test_six_node_mesh(self, six):
        _assert_mesh_identical(six)

    def test_fifteen_node_mesh(self):
        _assert_mesh_identical(fifteen_node().graph)

    def test_abilene_mesh(self, abilene_mesh):
        _assert_mesh_identical(abilene_mesh)

    def test_fat_tree_mesh(self):
        g = fat_tree(4)
        attach_edges(g)
        _assert_mesh_identical(g)

    def test_mesh_digest_equals_reference(self, abilene_mesh):
        engine = ProvisioningEngine(abilene_mesh, validated_pool=True)
        bp = BulkProvisioner(abilene_mesh)
        pairs = full_mesh_pairs(abilene_mesh)
        d_bulk, n_bulk = mesh_digest(bp.iter_full_mesh())
        d_ref, n_ref = mesh_digest_reference(engine, pairs)
        assert (d_bulk, n_bulk) == (d_ref, n_ref)
        assert n_bulk == len(pairs)

    def test_shared_entry_shares_route_object(self, abilene_mesh):
        bp = BulkProvisioner(abilene_mesh)
        edges = _edge_names(abilene_mesh)
        dst = edges[0]
        routes = bp.routes_for(dst, [s for s in edges if s != dst])
        by_entry = {}
        for p in routes.values():
            by_entry.setdefault(p.node_path[1], p.route)
            assert routes[p.src_edge].route is by_entry[p.node_path[1]]

    def test_identity_under_link_failure(self, six):
        down = frozenset({tuple(sorted(("SW7", "SW11")))})
        engine = ProvisioningEngine(six, validated_pool=True)
        engine.set_link_down("SW7", "SW11")
        bp = BulkProvisioner(six, down=down)
        p = bp.routes_for("E-D", ["E-S"])["E-S"]
        assert p == engine.provision("E-S", "E-D")


class TestErrors:
    def test_unreachable_destination(self, six):
        # Cut E-D off entirely: no source can reach it.
        down = frozenset({tuple(sorted(("E-D", "SW11")))})
        bp = BulkProvisioner(six, down=down)
        with pytest.raises(ProvisionError, match="no core neighbor") as e:
            bp.routes_for("E-D", ["E-S"])
        assert e.value.reason == "no-core-path"

    def test_non_edge_destination(self, six):
        bp = BulkProvisioner(six)
        with pytest.raises(ProvisionError, match="not an edge node") as e:
            bp.routes_for("SW4", ["E-S"])
        assert e.value.reason == "not-an-edge"


class TestProvisionBatchWiring:
    def test_forced_bulk_equals_per_flow(self, abilene_mesh):
        pairs = full_mesh_pairs(abilene_mesh)
        eng_bulk = ProvisioningEngine(abilene_mesh, validated_pool=True)
        eng_flow = ProvisioningEngine(abilene_mesh, validated_pool=True)
        got = eng_bulk.provision_batch(pairs, bulk=True)
        ref = eng_flow.provision_batch(pairs, bulk=False)
        assert got == ref
        assert eng_bulk.bulk_routes == len(pairs)
        assert eng_flow.bulk_routes == 0

    def test_order_preserved_and_duplicates_allowed(self, abilene_mesh):
        edges = _edge_names(abilene_mesh)
        dst = edges[0]
        pairs = [(s, dst) for s in edges[1:]]
        pairs = pairs + pairs[:3]  # duplicates
        eng = ProvisioningEngine(abilene_mesh, validated_pool=True)
        got = eng.provision_batch(pairs, bulk=True)
        assert [(p.src_edge, p.dst_edge) for p in got] == pairs
        assert eng.provisions == len(pairs)

    def test_auto_threshold_keeps_small_batches_per_flow(self, six):
        eng = ProvisioningEngine(six, validated_pool=True)
        eng.provision_batch([("E-S", "E-D")])
        assert eng.bulk_batches == 0
        assert eng.trees_built == 1  # the per-flow Python tree

    def test_auto_threshold_engages_on_large_groups(self, abilene_mesh):
        eng = ProvisioningEngine(
            abilene_mesh, validated_pool=True, bulk_threshold=4
        )
        pairs = full_mesh_pairs(abilene_mesh)
        eng.provision_batch(pairs)
        assert eng.bulk_batches == len(_edge_names(abilene_mesh))
        assert eng.trees_built == 0  # no Python trees were needed

    def test_bulk_tree_builds_bounded_by_distinct_destinations(
        self, abilene_mesh
    ):
        eng = ProvisioningEngine(abilene_mesh, validated_pool=True)
        pairs = full_mesh_pairs(abilene_mesh) * 2
        eng.provision_batch(pairs, bulk=True)
        distinct = len({d for _, d in pairs})
        assert eng.stats()["bulk"]["trees_built"] <= distinct

    def test_link_change_invalidates_bulk_state(self, abilene_mesh):
        eng = ProvisioningEngine(abilene_mesh, validated_pool=True)
        pairs = full_mesh_pairs(abilene_mesh)
        before = eng.provision_batch(pairs, bulk=True)
        eng.set_link_down("Denver", "KansasCity")
        after = eng.provision_batch(pairs, bulk=True)
        flow = ProvisioningEngine(abilene_mesh, validated_pool=True)
        flow.set_link_down("Denver", "KansasCity")
        assert after == flow.provision_batch(pairs, bulk=False)
        assert before != after  # the failure moved at least one route

    def test_same_edge_rejected_on_bulk_path(self, abilene_mesh):
        edges = _edge_names(abilene_mesh)
        dst = edges[0]
        pairs = [(s, dst) for s in edges]  # includes (dst, dst)
        eng = ProvisioningEngine(abilene_mesh, validated_pool=True)
        with pytest.raises(ProvisionError, match="share the edge") as e:
            eng.provision_batch(pairs, bulk=True)
        assert e.value.reason == "same-edge"

    def test_full_mesh_convenience(self, abilene_mesh):
        eng = ProvisioningEngine(abilene_mesh, validated_pool=True)
        routes = eng.provision_full_mesh(bulk=True)
        pairs = full_mesh_pairs(abilene_mesh)
        assert [(p.src_edge, p.dst_edge) for p in routes] == pairs


class TestPropertyRandomTopologies:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 500),
        n=st.integers(4, 11),
        extra=st.integers(0, 6),
    )
    def test_random_mesh_bit_identical(self, seed, n, extra):
        graph = random_connected(
            n, extra_links=extra, seed=seed, min_switch_id=53
        )
        attach_edges(graph)
        engine = ProvisioningEngine(graph, validated_pool=True)
        bp = BulkProvisioner(graph)
        edges = _edge_names(graph)
        for dst in edges:
            got = bp.routes_for(dst, [s for s in edges if s != dst])
            for src, route in got.items():
                ref = engine.provision(src, dst)
                assert route == ref
                assert route.route.hops == ref.route.hops

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500), n=st.integers(5, 10))
    def test_random_mesh_digest_matches_reference(self, seed, n):
        graph = random_connected(
            n, extra_links=3, seed=seed, min_switch_id=53
        )
        attach_edges(graph)
        engine = ProvisioningEngine(graph, validated_pool=True)
        bp = BulkProvisioner(graph)
        pairs = full_mesh_pairs(graph)
        assert mesh_digest(bp.iter_full_mesh()) == mesh_digest_reference(
            engine, pairs
        )
