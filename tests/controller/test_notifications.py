"""Tests for failure-notification plumbing and the reactive baseline."""

import pytest

from repro.runner import KarSimulation
from repro.topology import UNPROTECTED, fifteen_node


def _sim(deflection="none", reactive=False, delay_s=0.05):
    ks = KarSimulation(
        fifteen_node(rate_mbps=20.0, delay_s=0.0002),
        deflection=deflection, protection=UNPROTECTED, seed=13,
    )
    service = ks.enable_notifications(reactive=reactive, delay_s=delay_s)
    return ks, service


class TestLogging:
    def test_both_endpoints_notify(self):
        ks, service = _sim()
        ks.schedule_failure("SW7", "SW13", at=1.0, repair_at=2.0)
        ks.run(until=3.0)
        events = service.notifications_for("SW7", "SW13")
        downs = [n for n in events if not n.up]
        ups = [n for n in events if n.up]
        assert len(downs) == 2   # SW7 and SW13 both saw carrier loss
        assert len(ups) == 2
        assert {n.switch for n in downs} == {"SW7", "SW13"}

    def test_notification_latency(self):
        ks, service = _sim(delay_s=0.05)
        ks.schedule_failure("SW7", "SW13", at=1.0)
        ks.run(until=2.0)
        first = service.notifications_for("SW7", "SW13")[0]
        assert first.received_at == pytest.approx(1.05)

    def test_ignoring_mode_keeps_routes(self):
        # Paper mode: the controller logs but the ingress entry stays.
        ks, service = _sim(reactive=False)
        ingress = ks.network.node("E-AS1")
        before = ingress.ingress_entry("H-AS3").route_id
        ks.schedule_failure("SW7", "SW13", at=1.0, repair_at=2.0)
        ks.run(until=3.0)
        assert ingress.ingress_entry("H-AS3").route_id == before
        assert service.reroutes == 0
        assert not service.down_links  # repaired

    def test_describe(self):
        ks, service = _sim()
        ks.schedule_failure("SW7", "SW13", at=1.0)
        ks.run(until=2.0)
        text = service.describe()
        assert "ignoring" in text and "2 notifications" in text

    def test_double_wire_rejected(self):
        ks, service = _sim()
        with pytest.raises(RuntimeError, match="already wired"):
            service.wire()

    def test_bad_delay(self):
        ks = KarSimulation(fifteen_node(), seed=0)
        with pytest.raises(ValueError):
            ks.enable_notifications(delay_s=-1.0)


class TestReactiveBaseline:
    def test_reroute_after_notification(self):
        ks, service = _sim(deflection="none", reactive=True, delay_s=0.05)
        ingress = ks.network.node("E-AS1")
        original = ingress.ingress_entry("H-AS3").route_id
        ks.schedule_failure("SW7", "SW13", at=1.0, repair_at=3.0)
        src, sink = ks.add_udp_probe(rate_pps=200, duration_s=1.5)
        src.start(at=0.5)
        ks.run(until=5.0)

        # Packets during the notification window died; the rest flowed
        # over the recomputed detour.
        assert service.reroutes >= 1
        assert service.restores >= 1
        assert 0.8 < sink.delivery_ratio(src.sent) < 1.0
        # After repair, the original route is restored.
        assert ingress.ingress_entry("H-AS3").route_id == original

    def test_reactive_loss_window_scales_with_delay(self):
        def lost(delay_s):
            ks, service = _sim(deflection="none", reactive=True,
                               delay_s=delay_s)
            ks.schedule_failure("SW7", "SW13", at=1.0, repair_at=3.0)
            src, sink = ks.add_udp_probe(rate_pps=500, duration_s=1.5)
            src.start(at=0.5)
            ks.run(until=5.0)
            return src.sent - sink.received

        assert lost(0.2) > lost(0.02)

    def test_kar_deflection_needs_no_notifications(self):
        # The punchline: with NIP deflection and the controller
        # *ignoring* every notification, nothing is lost at all.
        ks, service = _sim(deflection="nip", reactive=False)
        ks.schedule_failure("SW7", "SW13", at=1.0, repair_at=3.0)
        src, sink = ks.add_udp_probe(rate_pps=500, duration_s=1.5)
        src.start(at=0.5)
        ks.run(until=5.0)
        assert sink.received == src.sent
        assert service.reroutes == 0
