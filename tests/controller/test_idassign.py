"""Tests for switch-ID assignment."""

import math

import pytest

from repro.controller import AssignmentError, assign_switch_ids
from repro.rns import pairwise_coprime


class TestAssignment:
    def test_basic(self):
        ids = assign_switch_ids({"A": 2, "B": 3, "C": 4})
        assert pairwise_coprime(ids.values())
        for name, deg in (("A", 2), ("B", 3), ("C", 4)):
            assert ids[name] > deg - 1
            assert ids[name] >= 2

    def test_high_degree_gets_large_enough_id(self):
        ids = assign_switch_ids({"HUB": 20, "leaf1": 1, "leaf2": 1})
        assert ids["HUB"] >= 20

    def test_greedy_product_not_larger_than_prime(self):
        degrees = {f"n{i}": 3 for i in range(12)}
        greedy = math.prod(assign_switch_ids(degrees, "greedy").values())
        prime = math.prod(assign_switch_ids(degrees, "prime").values())
        assert greedy <= prime

    def test_prime_strategy_all_prime(self):
        from repro.rns import is_prime

        ids = assign_switch_ids({f"n{i}": 2 for i in range(8)}, "prime")
        assert all(is_prime(v) for v in ids.values())

    def test_deterministic(self):
        degrees = {"A": 5, "B": 2, "C": 7}
        assert assign_switch_ids(degrees) == assign_switch_ids(degrees)

    def test_empty_rejected(self):
        with pytest.raises(AssignmentError):
            assign_switch_ids({})

    def test_negative_degree_rejected(self):
        with pytest.raises(AssignmentError):
            assign_switch_ids({"A": -1})

    def test_unknown_strategy(self):
        with pytest.raises(AssignmentError, match="unknown strategy"):
            assign_switch_ids({"A": 2}, "fibonacci")

    def test_large_network(self):
        degrees = {f"n{i}": (i % 7) + 1 for i in range(60)}
        ids = assign_switch_ids(degrees)
        assert len(set(ids.values())) == 60
        assert pairwise_coprime(ids.values())


class TestWeightedAssignment:
    def test_heaviest_switch_gets_smallest_feasible_id(self):
        degrees = {"hot": 2, "cold": 2}
        ids = assign_switch_ids(
            degrees, "weighted", weights={"hot": 100.0, "cold": 1.0}
        )
        assert ids["hot"] < ids["cold"]
        # Same pool, opposite pairing under swapped weights.
        swapped = assign_switch_ids(
            degrees, "weighted", weights={"hot": 1.0, "cold": 100.0}
        )
        assert swapped["cold"] < swapped["hot"]
        assert sorted(ids.values()) == sorted(swapped.values())

    def test_defaults_to_degree_weights(self):
        degrees = {"big": 6, "small": 2}
        assert assign_switch_ids(degrees, "weighted") == assign_switch_ids(
            degrees, "weighted", weights={"big": 6.0, "small": 2.0}
        )

    def test_still_respects_port_floor(self):
        # A heavy switch cannot take an ID below its port count.
        ids = assign_switch_ids(
            {"hub": 10, "leaf": 2}, "weighted",
            weights={"hub": 100.0, "leaf": 1.0},
        )
        assert ids["hub"] >= 10
        assert pairwise_coprime(ids.values())

    def test_weighted_never_costs_more_bits_than_greedy(self):
        from repro.rns.bitlength import route_id_bit_length

        degrees = {f"n{i}": (i % 5) + 2 for i in range(20)}
        weights = {f"n{i}": float(20 - i) for i in range(20)}
        greedy = assign_switch_ids(degrees, "greedy")
        weighted = assign_switch_ids(degrees, "weighted", weights=weights)
        # Weighted routes through the heaviest switches are cheaper.
        heavy = [f"n{i}" for i in range(6)]
        w_bits = route_id_bit_length(
            math.prod(weighted[n] for n in heavy)
        )
        g_bits = route_id_bit_length(math.prod(greedy[n] for n in heavy))
        assert w_bits <= g_bits


class TestXsrAssignment:
    def test_pool_is_dual_coprime(self):
        from repro.rns.gf2 import gf2_pairwise_coprime

        degrees = {f"n{i}": (i % 4) + 1 for i in range(16)}
        ids = assign_switch_ids(degrees, "xsr")
        assert pairwise_coprime(ids.values())
        assert gf2_pairwise_coprime(ids.values())

    def test_ids_cover_ports_in_both_rings(self):
        from repro.rns.gf2 import gf2_degree

        degrees = {f"n{i}": i + 1 for i in range(10)}
        ids = assign_switch_ids(degrees, "xsr")
        for name, ports in degrees.items():
            assert ids[name] >= ports
            assert (1 << gf2_degree(ids[name])) >= ports


class TestRouteFrequencyWeights:
    def test_path_graph_middle_is_heaviest(self):
        from repro.controller.idassign import route_frequency_weights
        from repro.topology.graph import PortGraph

        g = PortGraph()
        for n, sid in zip(("A", "B", "C"), (5, 7, 9)):
            g.add_node(n, switch_id=sid)
        g.add_link("A", "B")
        g.add_link("B", "C")
        w = route_frequency_weights(g)
        # B forwards for A<->C pairs on top of its own traffic.
        assert w["B"] > w["A"] == w["C"]


class TestReassign:
    def test_reassign_to_xsr_keeps_graph_valid(self):
        from repro.controller.idassign import reassign_switch_ids
        from repro.rns.gf2 import gf2_pairwise_coprime
        from repro.topology.generators import random_connected

        g = random_connected(12, extra_links=6, seed=3, min_switch_id=23)
        reassign_switch_ids(g, strategy="xsr")
        g.validate()
        assert gf2_pairwise_coprime(g.switch_ids().values())

    def test_reassign_weighted_is_deterministic(self):
        from repro.controller.idassign import reassign_switch_ids
        from repro.topology.generators import random_connected

        a = random_connected(10, extra_links=4, seed=5, min_switch_id=23)
        b = random_connected(10, extra_links=4, seed=5, min_switch_id=23)
        reassign_switch_ids(a, strategy="weighted")
        reassign_switch_ids(b, strategy="weighted")
        assert a.switch_ids() == b.switch_ids()
