"""Tests for switch-ID assignment."""

import math

import pytest

from repro.controller import AssignmentError, assign_switch_ids
from repro.rns import pairwise_coprime


class TestAssignment:
    def test_basic(self):
        ids = assign_switch_ids({"A": 2, "B": 3, "C": 4})
        assert pairwise_coprime(ids.values())
        for name, deg in (("A", 2), ("B", 3), ("C", 4)):
            assert ids[name] > deg - 1
            assert ids[name] >= 2

    def test_high_degree_gets_large_enough_id(self):
        ids = assign_switch_ids({"HUB": 20, "leaf1": 1, "leaf2": 1})
        assert ids["HUB"] >= 20

    def test_greedy_product_not_larger_than_prime(self):
        degrees = {f"n{i}": 3 for i in range(12)}
        greedy = math.prod(assign_switch_ids(degrees, "greedy").values())
        prime = math.prod(assign_switch_ids(degrees, "prime").values())
        assert greedy <= prime

    def test_prime_strategy_all_prime(self):
        from repro.rns import is_prime

        ids = assign_switch_ids({f"n{i}": 2 for i in range(8)}, "prime")
        assert all(is_prime(v) for v in ids.values())

    def test_deterministic(self):
        degrees = {"A": 5, "B": 2, "C": 7}
        assert assign_switch_ids(degrees) == assign_switch_ids(degrees)

    def test_empty_rejected(self):
        with pytest.raises(AssignmentError):
            assign_switch_ids({})

    def test_negative_degree_rejected(self):
        with pytest.raises(AssignmentError):
            assign_switch_ids({"A": -1})

    def test_unknown_strategy(self):
        with pytest.raises(AssignmentError, match="unknown strategy"):
            assign_switch_ids({"A": 2}, "fibonacci")

    def test_large_network(self):
        degrees = {f"n{i}": (i % 7) + 1 for i in range(60)}
        ids = assign_switch_ids(degrees)
        assert len(set(ids.values())) == 60
        assert pairwise_coprime(ids.values())
