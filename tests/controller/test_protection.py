"""Tests for driven-deflection protection planning."""

import pytest

from repro.controller import ProtectionPlanner, segments_to_hops
from repro.rns import bit_length_for_switches
from repro.topology import (
    FULL,
    PARTIAL,
    ProtectionSegment,
    fifteen_node,
    six_node,
)


@pytest.fixture(scope="module")
def fifteen():
    return fifteen_node()


class TestSegmentsToHops:
    def test_paper_sw5_segment(self):
        scn = six_node()
        (hop,) = segments_to_hops(scn.graph, [ProtectionSegment("SW5", "SW11")])
        assert (hop.switch_id, hop.port) == (5, 0)

    def test_uses_topology_ports(self, fifteen):
        hops = segments_to_hops(fifteen.graph, fifteen.segments(PARTIAL))
        by_id = {h.switch_id: h.port for h in hops}
        g = fifteen.graph
        assert by_id[11] == g.port_of("SW11", "SW23")
        assert by_id[23] == g.port_of("SW23", "SW29")
        assert by_id[31] == g.port_of("SW31", "SW29")


class TestPlannerCandidates:
    def test_candidates_are_offroute_core_neighbors(self, fifteen):
        planner = ProtectionPlanner(fifteen.graph)
        cands = planner.deflection_candidates(fifteen.primary_route)
        assert set(cands) == {"SW11", "SW17", "SW37", "SW9", "SW23",
                              "SW31", "SW19", "SW41"}
        # No duplicates, no on-route switches.
        assert len(cands) == len(set(cands))
        assert not set(cands) & set(fifteen.primary_route)


class TestFullPlan:
    def test_full_covers_all_coverable_candidates(self, fifteen):
        planner = ProtectionPlanner(fifteen.graph)
        plan = planner.full(fifteen.primary_route)
        # SW9's only neighbours are route switches: it cannot be chained
        # to the destination and stays uncovered (NIP's forced degree-2
        # rejoin handles it instead — see the coverage analysis tests).
        assert plan.uncovered == ("SW9",)
        assert set(plan.covered) | {"SW9"} == set(
            planner.deflection_candidates(fifteen.primary_route)
        )

    def test_full_chains_terminate_at_destination(self, fifteen):
        planner = ProtectionPlanner(fifteen.graph)
        plan = planner.full(fifteen.primary_route)
        seg_map = {s.at: s.to for s in plan.segments}
        for start in seg_map:
            cur = start
            while cur in seg_map:
                cur = seg_map[cur]
            assert cur == fifteen.primary_route[-1]

    def test_full_plan_segments_form_tree(self, fifteen):
        planner = ProtectionPlanner(fifteen.graph)
        plan = planner.full(fifteen.primary_route)
        seg_map = {s.at: s.to for s in plan.segments}
        on_route = set(fifteen.primary_route)
        for start in seg_map:
            cur, seen = start, {start}
            while cur in seg_map:
                cur = seg_map[cur]
                assert cur not in seen, "protection loop"
                seen.add(cur)
            assert cur in on_route

    def test_one_residue_per_switch(self, fifteen):
        planner = ProtectionPlanner(fifteen.graph)
        plan = planner.full(fifteen.primary_route)
        ats = [s.at for s in plan.segments]
        assert len(ats) == len(set(ats))

    def test_bit_length_reported(self, fifteen):
        planner = ProtectionPlanner(fifteen.graph)
        plan = planner.full(fifteen.primary_route)
        ids = [fifteen.graph.switch_id(sw) for sw in fifteen.primary_route]
        ids += [fifteen.graph.switch_id(s.at) for s in plan.segments]
        assert plan.bit_length == bit_length_for_switches(ids)


class TestPartialPlan:
    def test_budget_respected(self, fifteen):
        planner = ProtectionPlanner(fifteen.graph)
        for budget in (15, 20, 28, 43, 64):
            plan = planner.partial(fifteen.primary_route, budget_bits=budget)
            assert plan.bit_length <= budget

    def test_tiny_budget_covers_nothing(self, fifteen):
        planner = ProtectionPlanner(fifteen.graph)
        plan = planner.partial(fifteen.primary_route, budget_bits=15)
        assert plan.segments == ()
        assert set(plan.uncovered) == set(
            planner.deflection_candidates(fifteen.primary_route)
        )

    def test_larger_budget_covers_more(self, fifteen):
        planner = ProtectionPlanner(fifteen.graph)
        small = planner.partial(fifteen.primary_route, budget_bits=22)
        large = planner.partial(fifteen.primary_route, budget_bits=50)
        assert len(large.covered) >= len(small.covered)

    def test_huge_budget_equals_full(self, fifteen):
        planner = ProtectionPlanner(fifteen.graph)
        assert set(planner.partial(fifteen.primary_route, 10_000).segments) == set(
            planner.full(fifteen.primary_route).segments
        )

    def test_bad_budget(self, fifteen):
        with pytest.raises(ValueError):
            ProtectionPlanner(fifteen.graph).partial(fifteen.primary_route, 0)

    def test_empty_route_rejected(self, fifteen):
        with pytest.raises(ValueError):
            ProtectionPlanner(fifteen.graph).full([])


class TestCachedPlanner:
    def _route(self, fifteen):
        from repro.controller import core_path_between_edges
        from repro.topology.graph import NodeKind

        graph = fifteen.graph
        edges = sorted(n.name for n in graph.nodes(NodeKind.EDGE))
        path = core_path_between_edges(graph, edges[0], edges[1])
        return graph, [n for n in path
                       if graph.node(n).kind == NodeKind.CORE]

    def test_plans_match_uncached_planner(self, fifteen):
        from repro.controller import CachedProtectionPlanner

        graph, route = self._route(fifteen)
        cached = CachedProtectionPlanner(graph)
        plain = ProtectionPlanner(graph)
        assert cached.full(route) == plain.full(route)
        assert cached.partial(route, 16) == plain.partial(route, 16)

    def test_repeat_plans_are_cache_hits(self, fifteen):
        from repro.controller import CachedProtectionPlanner

        graph, route = self._route(fifteen)
        planner = CachedProtectionPlanner(graph)
        first = planner.full(route)
        assert planner.full(route) is first
        assert planner.plan_hits == 1
        # Different budget -> different plan entry, shared tree.
        planner.partial(route, 16)
        assert planner.tree_hits >= 1

    def test_invalidate_clears_and_bumps_epoch(self, fifteen):
        from repro.controller import CachedProtectionPlanner

        graph, route = self._route(fifteen)
        planner = CachedProtectionPlanner(graph)
        first = planner.full(route)
        planner.invalidate()
        assert planner.epoch == 1
        rebuilt = planner.full(route)
        assert rebuilt is not first
        assert rebuilt == first  # same topology -> same plan content
