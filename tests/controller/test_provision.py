"""Tests for the batch provisioning engine (destination trees + pool)."""

import pytest

from repro.controller import (
    DestinationTree,
    ProvisioningEngine,
    RoutingError,
    core_path_between_edges,
    hops_for_path,
)
from repro.rns import RouteEncoder, crt
from repro.topology import NodeKind, fifteen_node, six_node


@pytest.fixture(scope="module")
def six():
    return six_node().graph


@pytest.fixture(scope="module")
def fifteen():
    return fifteen_node().graph


def _edge_names(graph):
    return sorted(n.name for n in graph.nodes(NodeKind.EDGE))


class TestDestinationTree:
    def test_root_must_be_edge(self, six):
        with pytest.raises(RoutingError, match="not an edge node"):
            DestinationTree(six, "SW4", epoch=0)

    def test_depths_are_hop_minimal(self, six):
        tree = DestinationTree(six, "E-D", epoch=0)
        # Fig. 1: SW11 touches E-D, SW5/SW7 sit behind it, SW4 behind SW7.
        assert tree.depth["SW11"] == 1
        assert tree.depth["SW5"] == 2
        assert tree.depth["SW7"] == 2
        assert tree.depth["SW4"] == 3

    def test_branch_follows_parents_to_destination(self, six):
        tree = DestinationTree(six, "E-D", epoch=0)
        assert tree.branch("SW4") == ["SW4", "SW7", "SW11", "E-D"]

    def test_branch_unreachable_rejected(self, six):
        tree = DestinationTree(six, "E-D", epoch=0)
        with pytest.raises(RoutingError, match="cannot reach"):
            tree.branch("NOPE")


class TestProvision:
    def test_paper_route_id_44(self, six):
        eng = ProvisioningEngine(six)
        p = eng.provision("E-S", "E-D")
        assert p.node_path == ("E-S", "SW4", "SW7", "SW11", "E-D")
        assert (p.route.route_id, p.route.modulus) == (44, 308)
        assert p.out_port == six.port_of("E-S", "SW4")

    def test_route_bit_identical_to_reference(self, six):
        eng = ProvisioningEngine(six)
        p = eng.provision("E-S", "E-D")
        hops = hops_for_path(six, list(p.node_path))
        ref = crt([h.port for h in hops], [h.switch_id for h in hops])
        assert (p.route.route_id, p.route.modulus) == ref
        assert p.route == RouteEncoder().encode(hops)

    def test_path_length_matches_per_flow_controller(self, fifteen):
        # The engine may tie-break differently from source-rooted
        # Dijkstra, but never at the cost of a longer path.
        eng = ProvisioningEngine(fifteen)
        edges = _edge_names(fifteen)
        for src in edges:
            for dst in edges:
                if src == dst:
                    continue
                p = eng.provision(src, dst)
                ref = core_path_between_edges(fifteen, src, dst)
                assert len(p.node_path) == len(ref)
                hops = hops_for_path(fifteen, list(p.node_path))
                assert p.route == RouteEncoder().encode(hops)

    def test_same_edge_rejected(self, six):
        eng = ProvisioningEngine(six)
        with pytest.raises(RoutingError, match="share the edge"):
            eng.provision("E-S", "E-S")

    def test_non_edge_source_rejected(self, six):
        eng = ProvisioningEngine(six)
        with pytest.raises(RoutingError, match="not an edge node"):
            eng.provision("SW4", "E-D")

    def test_ingress_entry_mirrors_route(self, six):
        eng = ProvisioningEngine(six, default_ttl=32)
        p = eng.provision("E-S", "E-D")
        entry = p.ingress_entry(ttl=32)
        assert entry.route_id == p.route.route_id
        assert entry.modulus == p.route.modulus
        assert entry.out_port == p.out_port
        assert entry.ttl == 32
        assert entry.residues == p.route.residue_map()


class TestAmortization:
    def test_batch_shares_destination_trees(self, fifteen):
        eng = ProvisioningEngine(fifteen)
        edges = _edge_names(fifteen)
        dst = edges[0]
        pairs = [(src, dst) for src in edges if src != dst] * 3
        eng.provision_batch(pairs)
        assert eng.trees_built == 1
        assert eng.tree_hits == len(pairs) - 1

    def test_batch_uses_pooled_encoder(self, fifteen):
        eng = ProvisioningEngine(fifteen)
        edges = _edge_names(fifteen)
        pairs = [(s, d) for s in edges for d in edges if s != d]
        eng.provision_batch(pairs)
        assert eng.encoder.pooled_encodes == len(pairs)
        assert eng.encoder.fallback_encodes == 0

    def test_protect_hits_plan_cache(self, fifteen):
        eng = ProvisioningEngine(fifteen)
        edges = _edge_names(fifteen)
        p = eng.provision(edges[0], edges[1])
        first = eng.protect(p)
        again = eng.protect(p)
        assert again is first
        assert eng.planner.plan_hits == 1


class TestInvalidation:
    def test_topology_change_rebuilds_everything(self, six):
        eng = ProvisioningEngine(six)
        eng.provision("E-S", "E-D")
        old = (eng.pool, eng.encoder, eng.delta, eng.planner)
        assert eng.trees_built == 1
        eng.note_topology_change()
        assert eng.epoch == 1
        assert all(new is not was for new, was in zip(
            (eng.pool, eng.encoder, eng.delta, eng.planner), old
        ))
        # The tree rebuilds in the new epoch rather than being served
        # from the old one.
        p = eng.provision("E-S", "E-D")
        assert eng.trees_built == 2
        assert (p.route.route_id, p.route.modulus) == (44, 308)

    def test_tree_records_its_epoch(self, six):
        eng = ProvisioningEngine(six)
        assert eng.destination_tree("E-D").epoch == 0
        eng.note_topology_change()
        assert eng.destination_tree("E-D").epoch == 1


class TestRerouteHop:
    def test_reroute_is_bit_identical_to_fresh_encode(self, six):
        eng = ProvisioningEngine(six)
        p = eng.provision("E-S", "E-D")
        # Fig. 1 detour: SW7 exits toward SW5 (port 1) instead of SW11.
        updated = eng.reroute_hop(p.route, "SW7", "SW5")
        hops = [
            h if h.switch_id != 7 else type(h)(7, six.port_of("SW7", "SW5"))
            for h in p.route.hops
        ]
        assert updated == RouteEncoder().encode(hops)
        assert eng.delta.deltas_applied == 1
        assert eng.delta.full_solves == 0

    def test_reroute_rejects_non_link(self, six):
        eng = ProvisioningEngine(six)
        p = eng.provision("E-S", "E-D")
        with pytest.raises(RoutingError, match="not a link"):
            eng.reroute_hop(p.route, "SW4", "SW11")

    def test_reroute_rejects_unknown_node(self, six):
        eng = ProvisioningEngine(six)
        p = eng.provision("E-S", "E-D")
        with pytest.raises(RoutingError, match="unknown node"):
            eng.reroute_hop(p.route, "SW7", "SW4X")


class TestTreeMemoization:
    def test_batch_tree_builds_bounded_by_distinct_destinations(
        self, fifteen
    ):
        # Satellite invariant: however a batch mixes flows, the engine
        # never builds more trees than it has distinct destinations.
        eng = ProvisioningEngine(fifteen)
        edges = _edge_names(fifteen)
        pairs = [
            (s, d) for d in edges for s in edges if s != d
        ] * 4  # heavy repetition across two passes
        eng.provision_batch(pairs)
        eng.provision_batch(pairs)
        assert eng.trees_built <= len({d for _, d in pairs})
        assert eng.tree_hits == len(pairs) * 2 - eng.trees_built

    def test_epoch_bump_resets_the_bound_not_the_counter(self, fifteen):
        eng = ProvisioningEngine(fifteen)
        edges = _edge_names(fifteen)
        pairs = [(s, d) for d in edges for s in edges if s != d]
        eng.provision_batch(pairs)
        built_first = eng.trees_built
        eng.note_link_change()
        eng.provision_batch(pairs)
        distinct = len({d for _, d in pairs})
        assert built_first <= distinct
        assert eng.trees_built <= 2 * distinct  # cumulative across epochs
