"""Shared pytest configuration.

The CI box for this repository is a single-core VM, so the hypothesis
profile is tuned down from the library defaults: enough examples to
exercise the properties, few enough to keep the suite fast.  Export
``HYPOTHESIS_PROFILE=thorough`` for a deeper run.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "fast",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))
