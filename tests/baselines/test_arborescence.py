"""Tests for the arborescence failover baseline."""

import random

import pytest

from repro.baselines import BASELINE_SCHEMES, plan_baseline_strategies
from repro.baselines.arborescence import (
    ArborescenceFailoverStrategy,
    ArborescenceFailoverSwitch,
    ArborescencePlan,
    arborescence_decomposition,
    plan_arborescences,
)
from repro.baselines.fastfailover import FastFailoverStrategy
from repro.sim import Simulator
from repro.topology import NodeKind, attach_host_pair, clique, torus
from repro.topology.graph import PortGraph, TopologyError


def _edges_of(tree):
    return {tuple(sorted((child, parent))) for child, parent in tree.items()}


def _assert_arborescence(tree, root):
    """Every node's parent chain must terminate at the root (no cycles)."""
    for start in tree:
        seen = {start}
        node = start
        while node != root:
            node = tree[node]
            assert node not in seen, f"cycle through {node}"
            seen.add(node)


class TestDecomposition:
    @pytest.mark.parametrize("graph,root,connectivity", [
        (clique(5), "SW0", 4),
        (torus(3, 3), "SW0-0", 4),
    ])
    def test_edge_disjoint_trees_cover_every_switch(self, graph, root,
                                                    connectivity):
        trees = arborescence_decomposition(graph, root)
        cores = {n.name for n in graph.nodes(NodeKind.CORE)}
        assert len(trees) == connectivity
        claimed = set()
        for tree in trees:
            _assert_arborescence(tree, root)
            edges = _edges_of(tree)
            assert not (claimed & edges), "trees share a link"
            claimed |= edges
        # Undirected link-disjointness caps total tree links at the
        # graph's link count, so trees are partial — but together they
        # must still reach every core switch.
        covered = set().union(*trees)
        assert covered == cores - {root}

    def test_k_defaults_to_root_core_degree(self):
        g = clique(4)
        assert len(arborescence_decomposition(g, "SW0")) == 3

    def test_explicit_k_limits_trees(self):
        trees = arborescence_decomposition(clique(5), "SW0", k=2)
        assert len(trees) == 2

    def test_disconnected_component_left_out(self):
        g = PortGraph()
        for name, sid in (("A", 5), ("B", 7), ("C", 11), ("D", 13)):
            g.add_node(name, kind=NodeKind.CORE, switch_id=sid)
        g.add_link("A", "B", rate_mbps=10.0, delay_s=0.001)
        g.add_link("C", "D", rate_mbps=10.0, delay_s=0.001)
        trees = arborescence_decomposition(g, "A")
        assert trees == [{"B": "A"}]

    def test_non_core_root_rejected(self):
        g = clique(4)
        attach_host_pair(g, "SW0", "SW3")
        with pytest.raises(TopologyError, match="core"):
            arborescence_decomposition(g, "E-SRC")

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError, match="arborescence"):
            arborescence_decomposition(clique(4), "SW0", k=0)


class TestPlanArborescences:
    def _planned(self):
        g = torus(3, 3)
        attach_host_pair(g, "SW0-0", "SW1-1")
        return g, plan_arborescences(g, "E-DST")

    def test_every_core_switch_gets_a_plan(self):
        g, plans = self._planned()
        assert set(plans) == {n.name for n in g.nodes(NodeKind.CORE)}

    def test_root_ports_all_point_at_the_edge(self):
        g, plans = self._planned()
        edge_port = g.port_of("SW1-1", "E-DST")
        root_plan = plans["SW1-1"]
        assert all(p == edge_port for p in root_plan.tree_ports)

    def test_tree_ports_follow_the_trees(self):
        g, plans = self._planned()
        trees = arborescence_decomposition(g, "SW1-1")
        for t, tree in enumerate(trees):
            for child, parent in tree.items():
                assert plans[child].tree_ports[t] == g.port_of(child, parent)
                in_port = g.port_of(parent, child)
                assert plans[parent].in_port_tree[in_port] == t

    def test_in_port_tree_well_defined_by_edge_disjointness(self):
        g, plans = self._planned()
        for name, plan in plans.items():
            # Each in-port maps to at most one tree: dict construction
            # would have silently overwritten on conflict, so recount
            # from the trees themselves.
            ports = list(plan.in_port_tree)
            assert len(ports) == len(set(ports))
            for port in ports:
                assert 0 <= port < g.degree(name)

    def test_edge_without_core_neighbor_rejected(self):
        g = PortGraph()
        g.add_node("E", kind=NodeKind.EDGE)
        g.add_node("H", kind=NodeKind.HOST)
        g.add_link("E", "H", rate_mbps=10.0, delay_s=0.001)
        with pytest.raises(TopologyError, match="core neighbor"):
            plan_arborescences(g, "E")


class FakeSwitch:
    def __init__(self, num_ports, down=()):
        self.num_ports, self._down = num_ports, set(down)

    def port_up(self, p):
        return 0 <= p < self.num_ports and p not in self._down

    def healthy_ports(self):
        return [p for p in range(self.num_ports) if self.port_up(p)]


class TestStrategy:
    def _strategy(self):
        return ArborescenceFailoverStrategy(ArborescencePlan(
            tree_ports=(1, 2, 3),
            in_port_tree={5: 1, 6: 2},
        ))

    def test_rides_tree_zero_from_ingress(self):
        d = self._strategy().select_port(FakeSwitch(8), None, 0, 7, None)
        assert (d.port, d.deflected) == (1, False)

    def test_in_port_selects_the_current_tree(self):
        d = self._strategy().select_port(FakeSwitch(8), None, 6, 7, None)
        assert (d.port, d.deflected) == (3, False)

    def test_circular_hop_on_dead_port(self):
        strat = self._strategy()
        d = strat.select_port(FakeSwitch(8, down={1}), None, 0, 7, None)
        assert (d.port, d.deflected) == (2, True)

    def test_hopping_wraps_around(self):
        strat = self._strategy()
        # Current tree 2 (port 3) dead, tree 0 (port 1) dead: wraps to
        # tree 1 (port 2).
        d = strat.select_port(FakeSwitch(8, down={3, 1}), None, 6, 7, None)
        assert (d.port, d.deflected) == (2, True)

    def test_none_slots_are_skipped(self):
        strat = ArborescenceFailoverStrategy(ArborescencePlan(
            tree_ports=(1, None, 3), in_port_tree={},
        ))
        d = strat.select_port(FakeSwitch(8, down={1}), None, 0, 7, None)
        assert (d.port, d.deflected) == (3, True)

    def test_drops_when_every_tree_is_dead(self):
        strat = self._strategy()
        d = strat.select_port(FakeSwitch(8, down={1, 2, 3}), None, 0, 7, None)
        assert d.port is None

    def test_empty_plan_drops(self):
        strat = ArborescenceFailoverStrategy()
        assert strat.select_port(FakeSwitch(4), None, 0, 1, None).port is None
        assert strat.fast_port(FakeSwitch(4), None, 0, 1) is None

    def test_fast_port_matches_select_on_happy_path(self):
        strat = self._strategy()
        assert strat.fast_port(FakeSwitch(8), None, 6, 7) == 3
        assert strat.fast_port(FakeSwitch(8, down={3}), None, 6, 7) is None

    def test_switch_wrapper_install_plan(self):
        sim = Simulator()
        sw = ArborescenceFailoverSwitch("S", sim, 4, 7, random.Random(0))
        sw.install_plan(ArborescencePlan((0, 2), {1: 1}))
        assert sw.strategy.tree_ports == (0, 2)
        assert sw.strategy.in_port_tree == {1: 1}


class TestPlanBaselineStrategies:
    def _scenario(self):
        g = torus(3, 3)
        attach_host_pair(g, "SW0-0", "SW2-2")
        route = ["SW0-0", "SW0-2", "SW2-2"]
        return g, route

    @pytest.mark.parametrize("scheme", BASELINE_SCHEMES)
    def test_covers_every_core_switch(self, scheme):
        g, route = self._scenario()
        strategies = plan_baseline_strategies(scheme, g, route, "E-DST")
        assert set(strategies) == {n.name for n in g.nodes(NodeKind.CORE)}
        expected = {
            "ff": FastFailoverStrategy,
            "arb": ArborescenceFailoverStrategy,
        }[scheme]
        assert all(isinstance(s, expected) for s in strategies.values())

    def test_instances_are_not_shared(self):
        g, route = self._scenario()
        strategies = plan_baseline_strategies("arb", g, route, "E-DST")
        assert len({id(s) for s in strategies.values()}) == len(strategies)

    def test_unknown_scheme_rejected(self):
        g, route = self._scenario()
        with pytest.raises(ValueError, match="unknown baseline scheme"):
            plan_baseline_strategies("teleport", g, route, "E-DST")
