"""Tests for the executable baselines and the Table 2 matrix."""

import random

import pytest

from repro.baselines.fastfailover import (
    FastFailoverStrategy,
    FastFailoverSwitch,
    plan_backup_ports,
    plan_destination_tree,
)
from repro.baselines.feature_matrix import TABLE2_ROWS, render_table2
from repro.baselines.repair import ControllerRepair
from repro.runner import KarSimulation
from repro.sim import Simulator
from repro.topology import (
    UNPROTECTED,
    NodeKind,
    articulation_links,
    attach_host_pair,
    fifteen_node,
    shortest_path,
    six_node,
    torus,
)
from repro.topology.graph import PortGraph


class TestFeatureMatrix:
    def test_nine_rows_ending_with_kar(self):
        # The paper's 8 rows plus our Arborescence Failover addition.
        assert len(TABLE2_ROWS) == 9
        assert TABLE2_ROWS[-1].system == "KAR"

    def test_kar_cell_values(self):
        kar = TABLE2_ROWS[-1]
        assert kar.cells() == ("KAR", "Yes", "Yes", "Stateless", "Yes")

    def test_arborescence_row_is_stateful_and_static(self):
        row = next(
            r for r in TABLE2_ROWS if r.system == "Arborescence Failover"
        )
        assert not row.stateless_core
        assert not row.dynamic_failures

    def test_precomputed_failover_rows_are_static(self):
        # The dynamic-failures column's defining claim: schemes whose
        # resilience is proven against a static failure set don't
        # survive fail+recover churn.
        for system in ("OpenFlow Fast Failover", "Arborescence Failover",
                       "MPLS Fast Reroute"):
            row = next(r for r in TABLE2_ROWS if r.system == system)
            assert not row.dynamic_failures, system

    def test_render_contains_header_and_all_systems(self):
        text = render_table2()
        assert "Support multiple link failures" in text
        assert "Dynamic failures" in text
        for row in TABLE2_ROWS:
            assert row.system in text


class TestFastFailoverStrategy:
    class FakeSwitch:
        def __init__(self, num_ports, down=()):
            self._n, self._down = num_ports, set(down)

        @property
        def num_ports(self):
            return self._n

        def port_up(self, p):
            return 0 <= p < self._n and p not in self._down

        def healthy_ports(self):
            return [p for p in range(self._n) if self.port_up(p)]

    def test_primary_used_when_up(self):
        strat = FastFailoverStrategy({1: 2})
        d = strat.select_port(self.FakeSwitch(3), None, 0, 1, random.Random(0))
        assert (d.port, d.deflected) == (1, False)

    def test_backup_used_when_primary_down(self):
        strat = FastFailoverStrategy({1: 2})
        d = strat.select_port(
            self.FakeSwitch(3, down={1}), None, 0, 1, random.Random(0)
        )
        assert (d.port, d.deflected) == (2, True)

    def test_drop_when_backup_down_too(self):
        strat = FastFailoverStrategy({1: 2})
        d = strat.select_port(
            self.FakeSwitch(3, down={1, 2}), None, 0, 1, random.Random(0)
        )
        assert d.port is None

    def test_drop_without_backup(self):
        strat = FastFailoverStrategy({})
        d = strat.select_port(
            self.FakeSwitch(3, down={1}), None, 0, 1, random.Random(0)
        )
        assert d.port is None

    def test_switch_wrapper_install(self):
        sim = Simulator()
        sw = FastFailoverSwitch("S", sim, 3, 7, random.Random(0))
        sw.install_backup(1, 2)
        assert sw.strategy.backups == {1: 2}


class TestPlanBackupPorts:
    def test_plans_for_each_route_switch(self):
        scn = fifteen_node()
        plans = plan_backup_ports(
            scn.graph, scn.primary_route,
            scn.graph.edge_of_host(scn.dst_host),
        )
        # Every route switch with an alternative path gets a backup.
        # (The egress switch SW29 has none: its link to the edge is the
        # only way to reach the destination.)
        for sw in scn.primary_route[:-1]:
            assert sw in plans, sw
            for primary, backup in plans[sw].items():
                assert primary != backup
                assert backup < scn.graph.degree(sw)
        assert scn.primary_route[-1] not in plans

    def test_backup_avoids_failed_next_hop(self):
        scn = fifteen_node()
        plans = plan_backup_ports(
            scn.graph, scn.primary_route,
            scn.graph.edge_of_host(scn.dst_host),
        )
        g = scn.graph
        primary_port = g.port_of("SW7", "SW13")
        backup_port = plans["SW7"][primary_port]
        assert g.neighbor_on_port("SW7", backup_port) != "SW13"


def _barbell():
    """Two triangles joined by a single bridge link C-D."""
    g = PortGraph()
    for name, sid in (("A", 5), ("B", 7), ("C", 11),
                      ("D", 13), ("E", 17), ("F", 19)):
        g.add_node(name, kind=NodeKind.CORE, switch_id=sid)
    for a, b in (("A", "B"), ("B", "C"), ("A", "C"),
                 ("D", "E"), ("E", "F"), ("D", "F"), ("C", "D")):
        g.add_link(a, b, rate_mbps=10.0, delay_s=0.001)
    attach_host_pair(g, "A", "F")
    return g


class TestFailoverPlanningTopologies:
    def test_bridge_switch_gets_no_backup(self):
        g = _barbell()
        assert ("C", "D") in articulation_links(g)
        route = ["A", "C", "D", "F"]
        plans = plan_backup_ports(g, route, "E-DST")
        # C's primary next hop crosses the bridge; with that link
        # forbidden the destination is unreachable, so C gets no entry.
        assert "C" not in plans
        # Switches inside a triangle have a detour and do get one.
        assert g.port_of("A", "C") in plans["A"]
        assert g.port_of("D", "F") in plans["D"]

    def test_disconnected_switch_absent_from_destination_tree(self):
        g = _barbell()
        g.add_node("Z", kind=NodeKind.CORE, switch_id=23)
        table = plan_destination_tree(g, "E-DST")
        assert "Z" not in table
        assert set(table) == {"A", "B", "C", "D", "E", "F"}

    def test_destination_tree_next_hops_approach_destination(self):
        g = _barbell()
        table = plan_destination_tree(g, "E-DST")
        # Every switch's next hop strictly approaches the destination
        # (the egress switch F points straight at the edge).
        for name, port in table.items():
            nxt = g.neighbor_on_port(name, port)
            here = len(shortest_path(g, name, "E-DST"))
            there = len(shortest_path(g, nxt, "E-DST"))
            assert there == here - 1, (name, nxt)

    def test_torus_destination_tree_covers_every_switch(self):
        g = torus(3, 3)
        attach_host_pair(g, "SW0-0", "SW1-1")
        table = plan_destination_tree(g, "E-DST")
        cores = {n.name for n in g.nodes(NodeKind.CORE)}
        # 4-edge-connected: every switch gets a next hop.
        assert set(table) == cores

    def test_torus_backups_avoid_the_protected_next_hop(self):
        g = torus(3, 3)
        attach_host_pair(g, "SW0-0", "SW1-1")
        route = shortest_path(g, "SW0-0", "SW1-1")
        plans = plan_backup_ports(g, route, "E-DST")
        # The egress switch's link to its edge has no detour; every
        # other route switch is protected.
        assert set(plans) == set(route[:-1])
        for current, nxt in zip(route, route[1:]):
            backup = plans[current][g.port_of(current, nxt)]
            assert g.neighbor_on_port(current, backup) != nxt


class TestControllerRepair:
    def test_repair_installs_detour(self):
        scn = six_node(rate_mbps=50.0, delay_s=0.0002)
        ks = KarSimulation(scn, deflection="none", protection=UNPROTECTED,
                           seed=1)
        repair = ControllerRepair(ks, reaction_delay_s=0.3)
        repair.arm("SW7", "SW11", fail_at=1.0, repair_at=3.0)
        src, sink = ks.add_udp_probe(rate_pps=100, duration_s=3.5)
        src.start(at=0.5)
        ks.run(until=5.0)

        assert repair.repairs_installed == 1
        assert repair.restores_installed == 1
        # Packets during the reaction window (1.0 - 1.3 s) died; before
        # and after they flow.
        ratio = sink.delivery_ratio(src.sent)
        assert 0.7 < ratio < 1.0
        drops = ks.tracer.drop_reasons
        assert drops["no-usable-port(none)"] > 0

    def test_no_deflection_without_repair_loses_everything(self):
        scn = six_node(rate_mbps=50.0, delay_s=0.0002)
        ks = KarSimulation(scn, deflection="none", protection=UNPROTECTED,
                           seed=1)
        ks.schedule_failure("SW7", "SW11", at=1.0, repair_at=3.0)
        src, sink = ks.add_udp_probe(rate_pps=100, duration_s=1.5)
        src.start(at=1.2)  # entirely inside the failure
        ks.run(until=5.0)
        assert sink.received == 0

    def test_validation(self):
        scn = six_node()
        ks = KarSimulation(scn, seed=0)
        with pytest.raises(ValueError):
            ControllerRepair(ks, reaction_delay_s=-1.0)
