"""Tests for the executable baselines and the Table 2 matrix."""

import random

import pytest

from repro.baselines.fastfailover import (
    FastFailoverStrategy,
    FastFailoverSwitch,
    plan_backup_ports,
)
from repro.baselines.feature_matrix import TABLE2_ROWS, render_table2
from repro.baselines.repair import ControllerRepair
from repro.runner import KarSimulation
from repro.sim import Simulator
from repro.topology import UNPROTECTED, fifteen_node, six_node


class TestFeatureMatrix:
    def test_eight_rows_ending_with_kar(self):
        assert len(TABLE2_ROWS) == 8
        assert TABLE2_ROWS[-1].system == "KAR"

    def test_kar_cell_values(self):
        kar = TABLE2_ROWS[-1]
        assert kar.cells() == ("KAR", "Yes", "Yes", "Stateless")

    def test_render_contains_header_and_all_systems(self):
        text = render_table2()
        assert "Support multiple link failures" in text
        for row in TABLE2_ROWS:
            assert row.system in text


class TestFastFailoverStrategy:
    class FakeSwitch:
        def __init__(self, num_ports, down=()):
            self._n, self._down = num_ports, set(down)

        @property
        def num_ports(self):
            return self._n

        def port_up(self, p):
            return 0 <= p < self._n and p not in self._down

        def healthy_ports(self):
            return [p for p in range(self._n) if self.port_up(p)]

    def test_primary_used_when_up(self):
        strat = FastFailoverStrategy({1: 2})
        d = strat.select_port(self.FakeSwitch(3), None, 0, 1, random.Random(0))
        assert (d.port, d.deflected) == (1, False)

    def test_backup_used_when_primary_down(self):
        strat = FastFailoverStrategy({1: 2})
        d = strat.select_port(
            self.FakeSwitch(3, down={1}), None, 0, 1, random.Random(0)
        )
        assert (d.port, d.deflected) == (2, True)

    def test_drop_when_backup_down_too(self):
        strat = FastFailoverStrategy({1: 2})
        d = strat.select_port(
            self.FakeSwitch(3, down={1, 2}), None, 0, 1, random.Random(0)
        )
        assert d.port is None

    def test_drop_without_backup(self):
        strat = FastFailoverStrategy({})
        d = strat.select_port(
            self.FakeSwitch(3, down={1}), None, 0, 1, random.Random(0)
        )
        assert d.port is None

    def test_switch_wrapper_install(self):
        sim = Simulator()
        sw = FastFailoverSwitch("S", sim, 3, 7, random.Random(0))
        sw.install_backup(1, 2)
        assert sw.strategy.backups == {1: 2}


class TestPlanBackupPorts:
    def test_plans_for_each_route_switch(self):
        scn = fifteen_node()
        plans = plan_backup_ports(
            scn.graph, scn.primary_route,
            scn.graph.edge_of_host(scn.dst_host),
        )
        # Every route switch with an alternative path gets a backup.
        # (The egress switch SW29 has none: its link to the edge is the
        # only way to reach the destination.)
        for sw in scn.primary_route[:-1]:
            assert sw in plans, sw
            for primary, backup in plans[sw].items():
                assert primary != backup
                assert backup < scn.graph.degree(sw)
        assert scn.primary_route[-1] not in plans

    def test_backup_avoids_failed_next_hop(self):
        scn = fifteen_node()
        plans = plan_backup_ports(
            scn.graph, scn.primary_route,
            scn.graph.edge_of_host(scn.dst_host),
        )
        g = scn.graph
        primary_port = g.port_of("SW7", "SW13")
        backup_port = plans["SW7"][primary_port]
        assert g.neighbor_on_port("SW7", backup_port) != "SW13"


class TestControllerRepair:
    def test_repair_installs_detour(self):
        scn = six_node(rate_mbps=50.0, delay_s=0.0002)
        ks = KarSimulation(scn, deflection="none", protection=UNPROTECTED,
                           seed=1)
        repair = ControllerRepair(ks, reaction_delay_s=0.3)
        repair.arm("SW7", "SW11", fail_at=1.0, repair_at=3.0)
        src, sink = ks.add_udp_probe(rate_pps=100, duration_s=3.5)
        src.start(at=0.5)
        ks.run(until=5.0)

        assert repair.repairs_installed == 1
        assert repair.restores_installed == 1
        # Packets during the reaction window (1.0 - 1.3 s) died; before
        # and after they flow.
        ratio = sink.delivery_ratio(src.sent)
        assert 0.7 < ratio < 1.0
        drops = ks.tracer.drop_reasons
        assert drops["no-usable-port(none)"] > 0

    def test_no_deflection_without_repair_loses_everything(self):
        scn = six_node(rate_mbps=50.0, delay_s=0.0002)
        ks = KarSimulation(scn, deflection="none", protection=UNPROTECTED,
                           seed=1)
        ks.schedule_failure("SW7", "SW11", at=1.0, repair_at=3.0)
        src, sink = ks.add_udp_probe(rate_pps=100, duration_s=1.5)
        src.start(at=1.2)  # entirely inside the failure
        ks.run(until=5.0)
        assert sink.received == 0

    def test_validation(self):
        scn = six_node()
        ks = KarSimulation(scn, seed=0)
        with pytest.raises(ValueError):
            ControllerRepair(ks, reaction_delay_s=-1.0)
