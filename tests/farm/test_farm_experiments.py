"""The farm produces bit-identical results to the pre-farm code paths.

This is the porting contract from the orchestrator issue: running an
experiment directly, through the farm inline, through the cache, or
with worker processes must all yield the same digest.  A tiny timeline
keeps each simulated run fast while exercising the full failure/repair
cycle.
"""

import pytest

from repro.experiments.chaos_sweep import run_chaos_once
from repro.experiments.common import (
    Timeline,
    run_failure_experiment,
    scenario_factory,
)
from repro.farm import (
    FarmOptions,
    chaos_spec,
    failure_spec,
    outcome_digest,
    run_chaos_specs,
    run_failure_specs,
)
from repro.farm.executor import Farm
from repro.farm.jobs import FailureResult

TINY = Timeline(
    flow_start=0.1,
    fail_at=0.8,
    repair_at=1.6,
    end=2.4,
    baseline_window=(0.4, 0.8),
    failure_window=(1.0, 1.6),
    sample_interval_s=0.2,
)

FAILURE_ARGS = dict(
    scenario="fifteen_node",
    deflection="nip",
    protection="partial",
    failure=("SW7", "SW13"),
    seed=1,
)


def tiny_spec(**overrides):
    args = dict(FAILURE_ARGS, timeline=TINY)
    args.update(overrides)
    return failure_spec(**args)


class TestFailureEquivalence:
    def test_direct_inline_and_cached_digests_match(self, tmp_path):
        direct = run_failure_experiment(
            scenario_factory(FAILURE_ARGS["scenario"])(),
            FAILURE_ARGS["deflection"],
            FAILURE_ARGS["protection"],
            FAILURE_ARGS["failure"],
            FAILURE_ARGS["seed"],
            timeline=TINY,
        )
        opts = FarmOptions(cache_dir=str(tmp_path / "c"), progress=False)
        [fresh] = run_failure_specs([tiny_spec()], opts)
        [hit] = run_failure_specs([tiny_spec()], opts)
        assert fresh.digest == outcome_digest(direct)
        assert hit.digest == fresh.digest
        assert hit == fresh  # full record, not just the digest
        assert fresh.baseline_mbps == direct.baseline_mbps
        assert fresh.failure_mbps == direct.failure_mbps
        assert fresh.intervals == tuple(direct.iperf.intervals)

    def test_result_survives_json_round_trip(self, tmp_path):
        opts = FarmOptions(cache_dir=str(tmp_path / "c"), progress=False)
        [fresh] = run_failure_specs([tiny_spec()], opts)
        # The cache hit has been through json.dumps/json.loads; tuple
        # reconstruction and float repr round-tripping must be exact.
        [hit] = run_failure_specs([tiny_spec()], opts)
        assert isinstance(hit, FailureResult)
        assert isinstance(hit.intervals[0], tuple)
        assert hit == fresh

    def test_changed_seed_and_config_get_distinct_keys(self):
        base = tiny_spec()
        assert base.content_key() != tiny_spec(seed=2).content_key()
        assert base.content_key() != tiny_spec(
            deflection="avp"
        ).content_key()
        assert base.content_key() != tiny_spec(
            failure=None
        ).content_key()
        wider = Timeline(
            flow_start=0.1,
            fail_at=0.8,
            repair_at=1.6,
            end=3.0,
            baseline_window=(0.4, 0.8),
            failure_window=(1.0, 1.6),
            sample_interval_s=0.2,
        )
        assert base.content_key() != tiny_spec(
            timeline=wider
        ).content_key()


class TestChaosEquivalence:
    def test_direct_and_farm_chaos_runs_are_equal(self, tmp_path):
        kwargs = dict(
            scenario_name="fifteen_node",
            technique="nip",
            mode="mtbf",
            seed=7,
            chaos_kwargs={"mtbf_s": 0.5},
            traffic_s=1.0,
        )
        direct = run_chaos_once(**kwargs)
        spec = chaos_spec(
            scenario="fifteen_node",
            technique="nip",
            mode="mtbf",
            seed=7,
            chaos_kwargs={"mtbf_s": 0.5},
            traffic_s=1.0,
        )
        opts = FarmOptions(cache_dir=str(tmp_path / "c"), progress=False)
        [farm_run] = run_chaos_specs([spec], opts)
        assert farm_run == direct  # dataclass equality, every field
        # And again via the cache: the JSON round trip must restore
        # the tuple-typed fields exactly.
        [cached_run] = run_chaos_specs([spec], opts)
        assert cached_run == direct


class TestBench:
    def test_bench_writes_honest_report(self, tmp_path):
        from repro.farm.bench import run_bench

        out = tmp_path / "BENCH_farm.json"
        result = run_bench(
            jobs=2,
            seeds=[1],
            out=str(out),
            cache_dir=str(tmp_path / "bench-cache"),
            progress=False,
        )
        assert out.exists()
        assert result["n_jobs"] == 2  # 2 techniques x 1 seed
        assert result["digests_match_sequential"] is True
        assert result["cache_hit_ratio"] == pytest.approx(1.0)
        assert result["sequential_s"] > 0
        assert result["warm_cache_s"] < result["sequential_s"]

    @staticmethod
    def _short_timeline(monkeypatch):
        from repro.experiments.common import Timeline
        import repro.farm.bench as bench_mod

        monkeypatch.setattr(bench_mod, "BENCH_TIMELINE", Timeline(
            flow_start=0.1, fail_at=0.4, repair_at=0.8, end=1.2,
            baseline_window=(0.15, 0.4), failure_window=(0.5, 0.8),
            sample_interval_s=0.2,
        ))
        return bench_mod

    def test_single_core_demotes_parallel_phase(self, tmp_path,
                                                monkeypatch):
        bench_mod = self._short_timeline(monkeypatch)
        monkeypatch.setattr(bench_mod.os, "cpu_count", lambda: 1)
        result = bench_mod.run_bench(
            jobs=4, seeds=[1], out=None,
            cache_dir=str(tmp_path / "c"), progress=False,
        )
        assert result["skipped_single_core"] is True
        assert result["workers"] == 1  # pool overhead isn't parallelism
        assert result["cpu_count"] == 1
        # The digest and cache checks still ran.
        assert result["digests_match_sequential"] is True
        assert result["cache_hit_ratio"] == pytest.approx(1.0)
        assert "[single core" in bench_mod.render_bench(result)

    def test_multi_core_is_not_annotated(self, tmp_path, monkeypatch):
        bench_mod = self._short_timeline(monkeypatch)
        monkeypatch.setattr(bench_mod.os, "cpu_count", lambda: 4)
        result = bench_mod.run_bench(
            jobs=1, seeds=[1], out=None,
            cache_dir=str(tmp_path / "c"), progress=False,
        )
        assert result["skipped_single_core"] is False
        assert "[single core" not in bench_mod.render_bench(result)
