"""RunSpec content keys: stability, sensitivity, round-trips."""

import pytest

from repro.farm.spec import FORMAT_VERSION, RunSpec, canonical_json


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_compact_and_sorted(self):
        assert canonical_json({"b": [1.5, None], "a": "x"}) == (
            '{"a":"x","b":[1.5,null]}'
        )

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestContentKey:
    def test_stable_across_param_order(self):
        a = RunSpec.make("failure", "fifteen_node", 1,
                         {"deflection": "nip", "protection": "partial"})
        b = RunSpec.make("failure", "fifteen_node", 1,
                         {"protection": "partial", "deflection": "nip"})
        assert a == b
        assert a.content_key() == b.content_key()

    def test_key_is_sha256_hex(self):
        key = RunSpec.make("echo", "none", 0).content_key()
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_seed_changes_key(self):
        base = RunSpec.make("failure", "fifteen_node", 1, {"d": "nip"})
        other = RunSpec.make("failure", "fifteen_node", 2, {"d": "nip"})
        assert base.content_key() != other.content_key()

    def test_param_changes_key(self):
        base = RunSpec.make("failure", "fifteen_node", 1, {"d": "nip"})
        other = RunSpec.make("failure", "fifteen_node", 1, {"d": "avp"})
        assert base.content_key() != other.content_key()

    def test_kind_and_scenario_change_key(self):
        base = RunSpec.make("failure", "fifteen_node", 1)
        assert base.content_key() != RunSpec.make(
            "chaos", "fifteen_node", 1
        ).content_key()
        assert base.content_key() != RunSpec.make(
            "failure", "rnp28", 1
        ).content_key()

    def test_key_is_version_pinned(self):
        # Changing FORMAT_VERSION must invalidate every existing key;
        # this pins the current value so bumps are deliberate.
        assert FORMAT_VERSION == 1


class TestRecordRoundTrip:
    def test_round_trip_preserves_key(self):
        spec = RunSpec.make(
            "failure", "rnp28", 7,
            {"failure": ["SW7", "SW13"], "timeline": {"end": 12.0}},
        )
        clone = RunSpec.from_record(spec.to_record())
        assert clone == spec
        assert clone.content_key() == spec.content_key()

    def test_label_mentions_identity(self):
        spec = RunSpec.make("chaos", "fifteen_node", 42)
        label = spec.label()
        assert "chaos" in label and "fifteen_node" in label
        assert "seed=42" in label
        assert spec.content_key()[:12] in label

    def test_params_property_is_a_copy(self):
        spec = RunSpec.make("echo", "none", 0, {"value": [1, 2]})
        params = spec.params
        params["value"].append(3)
        assert spec.params == {"value": [1, 2]}
