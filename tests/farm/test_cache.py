"""Cache correctness: hits, misses, corruption, invalidation stats."""

import json

from repro.farm.cache import ResultCache
from repro.farm.jobs import echo_spec
from repro.farm.spec import FORMAT_VERSION


def make_cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestGetPut:
    def test_miss_then_hit(self, tmp_path):
        cache = make_cache(tmp_path)
        spec = echo_spec("hello", seed=1)
        assert cache.get(spec) is None
        cache.put(spec, {"value": "hello", "digest": "d1"})
        assert cache.get(spec) == {"value": "hello", "digest": "d1"}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_distinct_specs_distinct_records(self, tmp_path):
        cache = make_cache(tmp_path)
        a, b = echo_spec("a", seed=1), echo_spec("b", seed=2)
        cache.put(a, {"value": "a", "digest": "da"})
        cache.put(b, {"value": "b", "digest": "db"})
        assert cache.get(a)["value"] == "a"
        assert cache.get(b)["value"] == "b"

    def test_sharded_layout(self, tmp_path):
        cache = make_cache(tmp_path)
        spec = echo_spec("x", seed=3)
        cache.put(spec, {"digest": "d"})
        key = spec.content_key()
        path = cache.path_for(key)
        assert path.exists()
        assert path.parent.name == key[:2]
        record = json.loads(path.read_text())
        assert record["key"] == key
        assert record["format"] == FORMAT_VERSION
        assert record["spec"]["seed"] == 3  # self-describing record


class TestCorruption:
    """A bad record is a miss plus an invalidation — never a crash."""

    def put_one(self, tmp_path):
        cache = make_cache(tmp_path)
        spec = echo_spec("v", seed=9)
        cache.put(spec, {"value": "v", "digest": "d"})
        return cache, spec, cache.path_for(spec.content_key())

    def test_truncated_json_is_a_miss(self, tmp_path):
        cache, spec, path = self.put_one(tmp_path)
        path.write_text(path.read_text()[:20])
        assert cache.get(spec) is None
        assert cache.stats.invalidated == 1
        assert not path.exists()  # bad record removed

    def test_wrong_embedded_key_is_a_miss(self, tmp_path):
        cache, spec, path = self.put_one(tmp_path)
        record = json.loads(path.read_text())
        record["key"] = "0" * 64
        path.write_text(json.dumps(record))
        assert cache.get(spec) is None
        assert cache.stats.invalidated == 1

    def test_wrong_format_version_is_a_miss(self, tmp_path):
        cache, spec, path = self.put_one(tmp_path)
        record = json.loads(path.read_text())
        record["format"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(record))
        assert cache.get(spec) is None

    def test_result_without_digest_is_a_miss(self, tmp_path):
        cache, spec, path = self.put_one(tmp_path)
        record = json.loads(path.read_text())
        del record["result"]["digest"]
        path.write_text(json.dumps(record))
        assert cache.get(spec) is None

    def test_non_object_record_is_a_miss(self, tmp_path):
        cache, spec, path = self.put_one(tmp_path)
        path.write_text('["not", "a", "record"]')
        assert cache.get(spec) is None

    def test_overwrite_heals_corruption(self, tmp_path):
        cache, spec, path = self.put_one(tmp_path)
        path.write_text("garbage{{{")
        assert cache.get(spec) is None
        cache.put(spec, {"value": "v", "digest": "d"})
        assert cache.get(spec) == {"value": "v", "digest": "d"}


class TestStats:
    def test_hit_ratio(self, tmp_path):
        cache = make_cache(tmp_path)
        spec = echo_spec("r", seed=4)
        cache.get(spec)
        cache.put(spec, {"digest": "d"})
        cache.get(spec)
        cache.get(spec)
        assert cache.stats.lookups == 3
        assert cache.stats.hit_ratio == 2 / 3
        assert "2 hits / 3 lookups" in cache.stats.describe()
