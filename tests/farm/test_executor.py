"""Executor behaviour: caching, parallelism, crashes, timeouts.

Worker-pool tests use the built-in ``echo`` job kind so they stay fast
(no simulation); the spawn start method means each pool generation
re-imports the package, which is why test-local job kinds only appear
in inline (``jobs=1``) tests.
"""

import pytest

from repro.farm.executor import (
    Farm,
    FarmError,
    FarmJobError,
    FarmOptions,
    WORKER_START_METHOD,
)
from repro.farm.jobs import JOB_KINDS, echo_spec, job_kind
from repro.farm.spec import RunSpec


class TestInline:
    def test_executes_in_order(self):
        farm = Farm(FarmOptions(progress=False))
        records = farm.run([echo_spec(i, seed=i) for i in range(5)])
        assert [r["value"] for r in records] == [0, 1, 2, 3, 4]
        assert farm.stats.executed == 5
        assert farm.stats.cached == 0

    def test_same_spec_twice_is_one_execution_one_hit(self, tmp_path):
        opts = FarmOptions(cache_dir=str(tmp_path / "c"), progress=False)
        spec = echo_spec("once", seed=1)
        first = Farm(opts)
        [r1] = first.run([spec])
        assert (first.stats.executed, first.stats.cached) == (1, 0)
        second = Farm(opts)
        [r2] = second.run([spec])
        assert (second.stats.executed, second.stats.cached) == (0, 1)
        assert r1 == r2
        assert r1["digest"] == r2["digest"]

    def test_refresh_re_executes(self, tmp_path):
        opts = FarmOptions(cache_dir=str(tmp_path / "c"), progress=False)
        spec = echo_spec("again", seed=1)
        Farm(opts).run([spec])
        refresh = Farm(FarmOptions(cache_dir=str(tmp_path / "c"),
                                   refresh=True, progress=False))
        refresh.run([spec])
        assert refresh.stats.executed == 1
        assert refresh.stats.cached == 0

    def test_no_cache_writes_nothing(self, tmp_path):
        root = tmp_path / "c"
        opts = FarmOptions(cache_dir=str(root), no_cache=True,
                           progress=False)
        Farm(opts).run([echo_spec("quiet", seed=1)])
        assert not root.exists()

    def test_unknown_kind_raises_farm_job_error(self):
        bad = RunSpec.make("no-such-kind", "none", 0)
        with pytest.raises(FarmJobError, match="no-such-kind"):
            Farm(FarmOptions(progress=False)).run([bad])

    def test_deterministic_job_error_aborts(self):
        @job_kind("_test_boom")
        def _boom(spec):
            raise ValueError("deterministic failure")

        try:
            with pytest.raises(FarmJobError, match="deterministic"):
                Farm(FarmOptions(progress=False)).run(
                    [RunSpec.make("_test_boom", "none", 0)]
                )
        finally:
            del JOB_KINDS["_test_boom"]


class TestPool:
    def test_start_method_is_spawn(self):
        # Determinism contract: identical digests on Linux (fork
        # default) and macOS/Windows (spawn default).
        assert WORKER_START_METHOD == "spawn"

    def test_parallel_matches_inline(self, tmp_path):
        specs = [echo_spec(i, seed=i) for i in range(4)]
        inline = Farm(FarmOptions(progress=False)).run(specs)
        pool = Farm(FarmOptions(jobs=2, progress=False))
        parallel = pool.run(specs)
        assert parallel == inline
        assert pool.stats.executed == 4

    def test_parallel_reads_and_fills_cache(self, tmp_path):
        cache = str(tmp_path / "c")
        specs = [echo_spec(i, seed=i) for i in range(4)]
        cold = Farm(FarmOptions(jobs=2, cache_dir=cache, progress=False))
        first = cold.run(specs)
        warm = Farm(FarmOptions(jobs=2, cache_dir=cache, progress=False))
        second = warm.run(specs)
        assert first == second
        assert warm.stats.cached == 4
        assert warm.stats.executed == 0

    def test_crashed_worker_is_retried(self, tmp_path):
        marker = tmp_path / "crash-once"
        specs = [
            echo_spec("survivor", seed=1),
            echo_spec("crasher", seed=2, crash_marker=str(marker)),
        ]
        farm = Farm(FarmOptions(jobs=2, progress=False))
        records = farm.run(specs)
        assert [r["value"] for r in records] == ["survivor", "crasher"]
        assert farm.stats.retries >= 1
        assert marker.exists()  # first attempt really did crash

    def test_persistent_crash_exhausts_retries(self, tmp_path):
        # No marker file cleanup: echo crashes only when the marker is
        # absent, so to crash persistently point each attempt at a
        # fresh path via max_retries=0 (one attempt, one crash).
        marker = tmp_path / "always"
        spec = echo_spec("doomed", seed=3, crash_marker=str(marker))
        farm = Farm(FarmOptions(jobs=2, max_retries=0, progress=False))
        marker.unlink(missing_ok=True)
        with pytest.raises(FarmError, match="did not complete"):
            farm.run([spec, echo_spec("bystander", seed=4)])

    def test_stalled_job_times_out(self):
        farm = Farm(FarmOptions(jobs=2, timeout_s=1.0, max_retries=0,
                                progress=False))
        with pytest.raises(FarmError, match="did not complete"):
            farm.run([echo_spec("fast", seed=5),
                      echo_spec("slow", seed=6, sleep_s=60.0)])


class TestStatsSummary:
    def test_summary_line_shape(self):
        farm = Farm(FarmOptions(progress=False))
        farm.run([echo_spec(i, seed=i) for i in range(3)])
        line = farm.stats.summary("demo")
        assert line.startswith("demo: 3 jobs — 3 executed, 0 cached")
