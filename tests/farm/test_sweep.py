"""Sweep driver: checkpoints, resume, stale-checkpoint reset."""

import json

from repro.farm.executor import FarmOptions
from repro.farm.jobs import echo_spec
from repro.farm.sweep import SweepDriver, sweep_key


def opts(tmp_path, **kw):
    kw.setdefault("cache_dir", str(tmp_path / "cache"))
    kw.setdefault("progress", False)
    return FarmOptions(**kw)


class TestSweepKey:
    def test_same_specs_same_key(self):
        specs = [echo_spec(i, seed=i) for i in range(3)]
        assert sweep_key(specs) == sweep_key(list(specs))

    def test_membership_and_order_change_key(self):
        a = [echo_spec(1, seed=1), echo_spec(2, seed=2)]
        assert sweep_key(a) != sweep_key(a[:1])
        assert sweep_key(a) != sweep_key(list(reversed(a)))


class TestCheckpoint:
    def test_checkpoint_written_and_complete(self, tmp_path):
        specs = [echo_spec(i, seed=i) for i in range(3)]
        driver = SweepDriver("smoke", specs, opts(tmp_path))
        driver.run()
        record = json.loads(driver.checkpoint_path.read_text())
        assert record["sweep_key"] == driver.key
        assert record["total"] == 3
        assert record["complete"] is True
        assert len(record["done"]) == 3

    def test_no_cache_means_no_checkpoint(self, tmp_path):
        driver = SweepDriver(
            "nocache", [echo_spec(1, seed=1)],
            FarmOptions(no_cache=True, progress=False),
        )
        assert driver.checkpoint_path is None
        driver.run()  # must not crash

    def test_name_is_sanitized_for_filesystem(self, tmp_path):
        driver = SweepDriver("a/b c!", [echo_spec(1, seed=1)],
                             opts(tmp_path))
        driver.run()
        assert driver.checkpoint_path.name == "a-b-c-.json"
        assert driver.checkpoint_path.exists()


class TestResume:
    def test_killed_then_resumed_runs_only_missing_jobs(self, tmp_path):
        specs = [echo_spec(i, seed=i) for i in range(4)]
        # "Kill" a sweep after half the jobs by only submitting half.
        partial = SweepDriver("resume-me", specs[:2], opts(tmp_path))
        partial.run()
        # Resume with the full job set against the same cache.
        resumed = SweepDriver("resume-me", specs,
                              opts(tmp_path, resume=True))
        records = resumed.run()
        assert [r["value"] for r in records] == [0, 1, 2, 3]
        assert resumed.farm.stats.cached == 2
        assert resumed.farm.stats.executed == 2

    def test_full_resume_is_all_hits(self, tmp_path):
        specs = [echo_spec(i, seed=i) for i in range(3)]
        SweepDriver("twice", specs, opts(tmp_path)).run()
        again = SweepDriver("twice", specs, opts(tmp_path, resume=True))
        records = again.run()
        assert again.farm.stats.executed == 0
        assert again.farm.stats.cached == 3
        assert [r["value"] for r in records] == [0, 1, 2]

    def test_resume_note_reports_banked_jobs(self, tmp_path, capsys):
        specs = [echo_spec(i, seed=i) for i in range(2)]
        SweepDriver("noisy", specs, opts(tmp_path)).run()
        SweepDriver("noisy", specs,
                    opts(tmp_path, resume=True, progress=None)).run()
        err = capsys.readouterr().err
        assert "resuming — 2/2" in err

    def test_stale_checkpoint_resets(self, tmp_path):
        old = SweepDriver("grid", [echo_spec(1, seed=1)], opts(tmp_path))
        old.run()
        # Same sweep name, different job set: the old checkpoint must
        # not claim any of the new jobs as done.
        new_specs = [echo_spec(9, seed=9)]
        new = SweepDriver("grid", new_specs, opts(tmp_path, resume=True))
        new.run()
        assert new.farm.stats.executed == 1
        record = json.loads(new.checkpoint_path.read_text())
        assert record["sweep_key"] == new.key != old.key

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        specs = [echo_spec(5, seed=5)]
        driver = SweepDriver("dented", specs, opts(tmp_path))
        driver.run()
        driver.checkpoint_path.write_text("{ not json")
        again = SweepDriver("dented", specs, opts(tmp_path, resume=True))
        records = again.run()  # cache still serves the result
        assert again.farm.stats.cached == 1
        assert records[0]["value"] == 5
