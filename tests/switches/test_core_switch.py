"""Tests for the KAR core switch dataplane."""

import random

import pytest

from repro.sim import Link, PacketTracer, Packet, KarHeader, Simulator
from repro.sim.node import Node
from repro.switches import KarSwitch, NoDeflection, NotInputPort


class Collector(Node):
    def __init__(self, name, sim):
        super().__init__(name, sim, 1)
        self.received = []

    def receive(self, packet, in_port):
        self.received.append(packet)


def build_switch(strategy=None, tracer=None, switch_id=7):
    """SW with 3 ports: 0 -> X, 1 -> Y, 2 -> Z collectors."""
    sim = Simulator()
    sw = KarSwitch(
        "SW", sim, 3, switch_id,
        strategy or NoDeflection(), random.Random(1), tracer=tracer,
    )
    sinks = []
    for i, name in enumerate(("X", "Y", "Z")):
        sink = Collector(name, sim)
        Link(sim, sw, i, sink, 0, rate_mbps=100.0, delay_s=0.0001)
        sinks.append(sink)
    return sim, sw, sinks


def _pkt(route_id, ttl=64):
    return Packet(src_host="s", dst_host="d", size_bytes=100,
                  kar=KarHeader(route_id=route_id, ttl=ttl))


class TestModuloForwarding:
    def test_forwards_on_residue_port(self):
        sim, sw, sinks = build_switch()
        # 44 mod 7 == 2 -> port 2 (Z).
        sw.receive(_pkt(44), in_port=0)
        sim.run()
        assert len(sinks[2].received) == 1
        assert sw.forwarded == 1

    def test_each_residue_maps_to_its_port(self):
        for route_id, port in ((7, 0), (8, 1), (9, 2)):
            sim, sw, sinks = build_switch()
            sw.receive(_pkt(route_id), in_port=1 if port != 1 else 0)
            sim.run()
            assert len(sinks[port].received) == 1

    def test_hop_count_and_ttl(self):
        sim, sw, sinks = build_switch()
        p = _pkt(44, ttl=10)
        sw.receive(p, in_port=0)
        sim.run()
        assert p.hops == 1
        assert p.kar.ttl == 9

    def test_ttl_expiry_drops(self):
        tracer = PacketTracer()
        sim, sw, sinks = build_switch(tracer=tracer)
        sw.receive(_pkt(44, ttl=0), in_port=0)
        sim.run()
        assert sw.drops == 1
        assert tracer.drop_reasons["ttl-expired"] == 1
        assert all(not s.received for s in sinks)

    def test_packet_without_header_dropped(self):
        tracer = PacketTracer()
        sim, sw, sinks = build_switch(tracer=tracer)
        sw.receive(Packet(src_host="s", dst_host="d", size_bytes=50), 0)
        sim.run()
        assert tracer.drop_reasons["no-kar-header"] == 1

    def test_invalid_residue_drops_without_deflection(self):
        tracer = PacketTracer()
        sim, sw, sinks = build_switch(tracer=tracer)
        # 5 mod 7 == 5 -> no port 5; NoDeflection drops.
        sw.receive(_pkt(5), in_port=0)
        sim.run()
        assert sw.drops == 1
        assert tracer.drop_reasons["no-usable-port(none)"] == 1


def build_chain(tracer=None):
    """Two-switch chain: A(id 7) port 2 -> B(id 11) port 1 -> Z.

    Route 44 walks it end to end (44 mod 7 == 2, 44 mod 11 == 0).
    """
    sim = Simulator()
    a = KarSwitch("A", sim, 3, 7, NoDeflection(), random.Random(1),
                  tracer=tracer)
    b = KarSwitch("B", sim, 3, 11, NoDeflection(), random.Random(2),
                  tracer=tracer)
    Link(sim, a, 2, b, 1, rate_mbps=100.0, delay_s=0.0001)
    z = Collector("Z", sim)
    Link(sim, b, 0, z, 0, rate_mbps=100.0, delay_s=0.0001)
    return sim, a, b, z


class TestTtlOffByOne:
    """Pin the expiry rule: drop when ttl <= 0 *on arrival*, decrement
    after — so a TTL of N buys exactly N core hops, matching the wire
    codec's hop semantics (encode carries the post-decrement value)."""

    @pytest.mark.parametrize("ttl,delivered", [
        (0, False), (1, False), (2, True), (3, True),
    ])
    def test_ttl_n_buys_exactly_n_core_hops(self, ttl, delivered):
        sim, a, b, z = build_chain()
        a.receive(_pkt(44, ttl=ttl), in_port=0)
        sim.run()
        assert bool(z.received) == delivered

    def test_ttl_zero_dies_before_the_first_hop(self):
        tracer = PacketTracer()
        sim, a, b, z = build_chain(tracer=tracer)
        p = _pkt(44, ttl=0)
        a.receive(p, in_port=0)
        sim.run()
        assert (a.drops, a.forwarded) == (1, 0)
        assert tracer.drop_reasons["ttl-expired"] == 1
        # Check-then-decrement: an expired packet is not decremented.
        assert p.kar.ttl == 0
        assert p.hops == 0

    def test_ttl_one_does_one_hop_then_expires(self):
        tracer = PacketTracer()
        sim, a, b, z = build_chain(tracer=tracer)
        p = _pkt(44, ttl=1)
        a.receive(p, in_port=0)
        sim.run()
        assert a.forwarded == 1       # first hop happens...
        assert b.drops == 1           # ...expiry is at the *second* switch
        assert p.kar.ttl == 0
        assert p.hops == 1
        assert not z.received

    def test_delivered_ttl_is_initial_minus_hops(self):
        sim, a, b, z = build_chain()
        a.receive(_pkt(44, ttl=5), in_port=0)
        sim.run()
        [p] = z.received
        assert p.hops == 2
        assert p.kar.ttl == 3

    def test_rule_matches_wire_codec_round_trip(self):
        # A header that just crossed the wire (ttl=1) must behave like
        # the in-memory one: one more hop, then expiry — and the final
        # ttl=0 header is still encodable (0 is a legal wire value).
        from repro.rns.wire import decode_header, encode_header

        decoded, _ = decode_header(
            encode_header(KarHeader(route_id=44, modulus=0, ttl=1))
        )
        sim, a, b, z = build_chain()
        p = Packet(src_host="s", dst_host="d", size_bytes=100, kar=decoded)
        a.receive(p, in_port=0)
        sim.run()
        assert b.drops == 1 and not z.received
        assert p.kar.ttl == 0
        assert encode_header(p.kar)  # ttl=0 still round-trips the wire


class TestDeflectionIntegration:
    def test_nip_deflects_and_flags(self):
        tracer = PacketTracer()
        sim, sw, sinks = build_switch(strategy=NotInputPort(), tracer=tracer)
        p = _pkt(5)  # invalid residue -> random among ports != input
        sw.receive(p, in_port=0)
        sim.run()
        assert p.kar.deflected
        assert sw.deflections == 1
        assert tracer.deflection_count == 1
        delivered = [s for s in sinks if s.received]
        assert len(delivered) == 1
        assert delivered[0].name != "X"  # not the input port

    def test_id_must_exceed_ports(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="cannot address"):
            KarSwitch("SW", sim, 5, 4, NoDeflection(), random.Random(0))

    def test_tracer_records_forward(self):
        tracer = PacketTracer(trace_paths=True)
        sim, sw, sinks = build_switch(tracer=tracer)
        p = _pkt(44)
        sw.receive(p, in_port=0)
        sim.run()
        assert tracer.switch_sequence(p.uid) == ["SW"]
