"""Unit tests for the deflection techniques (Section 2.1 / Algorithm 1)."""

import random

import pytest

from repro.sim.packet import KarHeader, Packet
from repro.switches.deflection import (
    STRATEGY_NAMES,
    AnyValidPort,
    HotPotato,
    NoDeflection,
    NotInputPort,
    strategy_by_name,
)


class FakeSwitch:
    """Minimal PortView: ports 0..n-1 with a configurable down-set."""

    def __init__(self, num_ports, down=()):
        self._n = num_ports
        self._down = set(down)

    @property
    def num_ports(self):
        return self._n

    def port_up(self, port):
        return 0 <= port < self._n and port not in self._down

    def healthy_ports(self):
        return [p for p in range(self._n) if self.port_up(p)]


def _pkt(route_id=44, deflected=False):
    return Packet(
        src_host="s", dst_host="d", size_bytes=100,
        kar=KarHeader(route_id=route_id, deflected=deflected),
    )


@pytest.fixture
def rng():
    return random.Random(7)


class TestNoDeflection:
    def test_forwards_computed(self, rng):
        d = NoDeflection().select_port(FakeSwitch(4), _pkt(), 0, 2, rng)
        assert (d.port, d.deflected) == (2, False)

    def test_drops_on_down_port(self, rng):
        d = NoDeflection().select_port(FakeSwitch(4, down={2}), _pkt(), 0, 2, rng)
        assert d.port is None

    def test_drops_on_invalid_port(self, rng):
        d = NoDeflection().select_port(FakeSwitch(3), _pkt(), 0, 7, rng)
        assert d.port is None


class TestHotPotato:
    def test_undeflected_follows_route(self, rng):
        d = HotPotato().select_port(FakeSwitch(4), _pkt(), 0, 2, rng)
        assert (d.port, d.deflected) == (2, False)

    def test_first_deflection_random(self, rng):
        sw = FakeSwitch(4, down={2})
        d = HotPotato().select_port(sw, _pkt(), 0, 2, rng)
        assert d.deflected and d.port in {0, 1, 3}

    def test_flagged_packet_random_walks_even_on_valid_port(self):
        # Once deflected, HP ignores the computed port entirely.
        sw = FakeSwitch(4)
        seen = set()
        for seed in range(40):
            d = HotPotato().select_port(
                sw, _pkt(deflected=True), 0, 2, random.Random(seed)
            )
            assert d.deflected
            seen.add(d.port)
        assert seen == {0, 1, 2, 3}  # includes the input port

    def test_no_ports_drops(self, rng):
        sw = FakeSwitch(2, down={0, 1})
        assert HotPotato().select_port(sw, _pkt(deflected=True), 0, 0, rng).port is None


class TestAnyValidPort:
    def test_computed_port_even_if_input(self, rng):
        # AVP may send a packet back out the port it came in on.
        d = AnyValidPort().select_port(FakeSwitch(4), _pkt(), 2, 2, rng)
        assert (d.port, d.deflected) == (2, False)

    def test_random_includes_input(self):
        sw = FakeSwitch(3, down={1})
        seen = set()
        for seed in range(40):
            d = AnyValidPort().select_port(
                sw, _pkt(), 0, 1, random.Random(seed)
            )
            assert d.deflected
            seen.add(d.port)
        assert seen == {0, 2}

    def test_deflected_flag_does_not_randomize(self, rng):
        # Unlike HP, AVP keeps using the modulo even after a deflection.
        d = AnyValidPort().select_port(FakeSwitch(4), _pkt(deflected=True), 0, 2, rng)
        assert (d.port, d.deflected) == (2, False)


class TestNotInputPort:
    def test_computed_equal_input_rejected(self):
        # Algorithm 1 line 4: output == in_port forces a re-pick.
        sw = FakeSwitch(3)
        seen = set()
        for seed in range(40):
            d = NotInputPort().select_port(sw, _pkt(), 2, 2, random.Random(seed))
            assert d.deflected
            assert d.port != 2
            seen.add(d.port)
        assert seen == {0, 1}

    def test_random_excludes_input(self):
        sw = FakeSwitch(3, down={1})
        for seed in range(40):
            d = NotInputPort().select_port(sw, _pkt(), 0, 1, random.Random(seed))
            assert d.port == 2  # only non-input healthy port

    def test_no_candidates_drops(self, rng):
        sw = FakeSwitch(2, down={1})
        d = NotInputPort().select_port(sw, _pkt(), 0, 1, rng)
        assert d.port is None

    def test_valid_non_input_forwarded(self, rng):
        d = NotInputPort().select_port(FakeSwitch(4), _pkt(), 0, 2, rng)
        assert (d.port, d.deflected) == (2, False)


class MinimalRng:
    """A random.Random stand-in exposing only the documented API.

    No ``_randbelow``: the fast path's indexing shortcut must detect
    its absence and fall back to ``choice(list(...))`` instead of
    raising AttributeError (regression test for exactly that bug).
    """

    def __init__(self, seed):
        self._inner = random.Random(seed)

    def choice(self, seq):
        return self._inner.choice(seq)

    def random(self):
        return self._inner.random()

    def getstate(self):
        return self._inner.getstate()


class TestRandomFromSeqFallback:
    def test_minimal_rng_uses_choice_fallback(self):
        sw = FakeSwitch(4, down={2})
        for seed in range(20):
            port, deflected = HotPotato().fast_fallback(
                sw, _pkt(), 0, 2, MinimalRng(seed)
            )
            assert deflected and port in {0, 1, 3}

    def test_minimal_rng_is_stream_identical_to_random(self):
        # The fallback must make the same single draw from the same
        # candidate list, so a full Random and the minimal wrapper stay
        # in lockstep — the property the strategy oracle checks.
        sw = FakeSwitch(5, down={1})
        for seed in range(20):
            minimal = MinimalRng(seed)
            full = random.Random(seed)
            got = NotInputPort().fast_fallback(sw, _pkt(), 0, 1, minimal)
            want = NotInputPort().fast_fallback(sw, _pkt(), 0, 1, full)
            assert got == want
            assert minimal.getstate() == full.getstate()

    def test_empty_candidates_never_touch_the_rng(self):
        class ExplodingRng:
            def __getattr__(self, name):
                raise AssertionError("RNG consulted for an empty draw")

        sw = FakeSwitch(2, down={0, 1})
        port, deflected = HotPotato().fast_fallback(
            sw, _pkt(deflected=True), 0, 0, ExplodingRng()
        )
        assert (port, deflected) == (None, False)


class TestRegistry:
    def test_names(self):
        assert STRATEGY_NAMES == ("none", "hp", "avp", "nip")

    @pytest.mark.parametrize("name,cls", [
        ("none", NoDeflection), ("hp", HotPotato),
        ("avp", AnyValidPort), ("nip", NotInputPort),
        ("NIP", NotInputPort),
    ])
    def test_lookup(self, name, cls):
        assert isinstance(strategy_by_name(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown"):
            strategy_by_name("magic")
