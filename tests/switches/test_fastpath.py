"""Unit tests for the fast datapath: flag snapshots, the residue
cache, encode-time hints, and the strategy fast/reference split."""

import random

import pytest

from repro.rns.encoder import Hop, RouteEncoder
from repro.sim import KarHeader, Link, Packet, Simulator
from repro.sim.fastpath import fastpath_enabled, set_fastpath, use_fastpath
from repro.sim.node import Node
from repro.switches import KarSwitch, NoDeflection, NotInputPort
from repro.switches.core import RESIDUE_CACHE_SIZE
from repro.switches.deflection import (
    AnyValidPort,
    HotPotato,
    STRATEGY_NAMES,
    strategy_by_name,
)


class Collector(Node):
    def __init__(self, name, sim):
        super().__init__(name, sim, 1)
        self.received = []

    def receive(self, packet, in_port):
        self.received.append(packet)


def build_switch(strategy=None, switch_id=7):
    sim = Simulator()
    sw = KarSwitch(
        "SW", sim, 3, switch_id,
        strategy or NoDeflection(), random.Random(1),
    )
    sinks = []
    for i, name in enumerate(("X", "Y", "Z")):
        sink = Collector(name, sim)
        Link(sim, sw, i, sink, 0, rate_mbps=100.0, delay_s=0.0001)
        sinks.append(sink)
    return sim, sw, sinks


def _pkt(route_id, residues=None, ttl=64):
    return Packet(src_host="s", dst_host="d", size_bytes=100,
                  kar=KarHeader(route_id=route_id, ttl=ttl,
                                residues=residues))


class TestFlag:
    def test_default_is_fast(self):
        assert fastpath_enabled() is True

    def test_set_and_restore(self):
        set_fastpath(False)
        try:
            assert fastpath_enabled() is False
        finally:
            set_fastpath(True)
        assert fastpath_enabled() is True

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_fastpath(False):
                assert fastpath_enabled() is False
                raise RuntimeError("boom")
        assert fastpath_enabled() is True

    def test_switch_snapshots_flag_at_construction(self):
        with use_fastpath(False):
            _, sw_ref, _ = build_switch()
        _, sw_fast, _ = build_switch()
        assert sw_ref._fastpath is False
        assert sw_fast._fastpath is True


class TestResidueCache:
    def test_shared_route_id_object_hits(self):
        sim, sw, sinks = build_switch()
        rid = 7 * 10**20 + 2  # % 7 == 2, and big enough not to be interned
        sw.receive(_pkt(rid), in_port=0)
        sw.receive(_pkt(rid), in_port=0)
        sim.run()
        assert len(sinks[2].received) == 2
        assert sw.residue_misses == 1
        assert sw.residue_hits == 1

    def test_hint_bypasses_cache_and_modulo(self):
        sim, sw, sinks = build_switch()
        sw.receive(_pkt(7 * 10**20 + 2, residues={7: 2}), in_port=0)
        sim.run()
        assert len(sinks[2].received) == 1
        assert sw.residue_misses == 0 and sw.residue_hits == 0

    def test_off_hint_switch_falls_back_to_cache(self):
        # A hint for *other* switch IDs (a deflected packet visiting an
        # off-path switch) must not be trusted for this one.
        sim, sw, sinks = build_switch()
        sw.receive(_pkt(7 * 10**20 + 2, residues={11: 0}), in_port=0)
        sim.run()
        assert len(sinks[2].received) == 1
        assert sw.residue_misses == 1

    def test_cache_is_bounded(self):
        sim, sw, _ = build_switch()
        extra = 10
        for k in range(RESIDUE_CACHE_SIZE + extra):
            sw.receive(_pkt(7 * (10**6 + k) + 2), in_port=0)
        sim.run()
        assert len(sw._residue_cache) <= RESIDUE_CACHE_SIZE
        # Clear-on-overflow: the cache restarted once, then refilled.
        assert len(sw._residue_cache) == extra
        assert sw.residue_misses == RESIDUE_CACHE_SIZE + extra

    def test_stale_identity_is_rejected(self):
        # The cache key is id(route_id); CPython may reuse an id after
        # the original object dies, so a hit also requires the *stored*
        # object to be identical.  Forge a stale entry and check it is
        # recomputed, not trusted.
        sim, sw, sinks = build_switch()
        rid = 7 * 10**20 + 2
        other = 7 * 10**19 + 1
        sw._residue_cache[id(rid)] = (other, 0)  # wrong port on purpose
        sw.receive(_pkt(rid), in_port=0)
        sim.run()
        assert len(sinks[2].received) == 1  # recomputed: port 2, not 0
        assert sw.residue_misses == 1 and sw.residue_hits == 0

    def test_reference_mode_leaves_cache_untouched(self):
        with use_fastpath(False):
            sim, sw, sinks = build_switch()
        sw.receive(_pkt(7 * 10**20 + 2, residues={7: 2}), in_port=0)
        sim.run()
        assert len(sinks[2].received) == 1
        assert sw._residue_cache == {}
        assert sw.residue_misses == 0 and sw.residue_hits == 0


class TestEncoderResidueMap:
    def test_residue_map_matches_crt(self):
        hops = [Hop(11, 1), Hop(13, 0), Hop(17, 2)]
        route = RouteEncoder().encode(hops)
        residues = route.residue_map()
        assert residues == {11: 1, 13: 0, 17: 2}
        for sid, port in residues.items():
            assert route.route_id % sid == port

    def test_residue_map_is_memoized(self):
        route = RouteEncoder().encode([Hop(11, 1), Hop(13, 0)])
        assert route.residue_map() is route.residue_map()

    def test_with_hop_and_without_switch_keep_maps_consistent(self):
        encoder = RouteEncoder()
        route = encoder.encode([Hop(11, 1), Hop(13, 0)])
        grown = encoder.with_hop(route, Hop(17, 2))
        assert grown.residue_map() == {11: 1, 13: 0, 17: 2}
        shrunk = encoder.without_switch(grown, 13)
        assert 13 not in shrunk.residue_map()
        for sid, port in shrunk.residue_map().items():
            assert shrunk.route_id % sid == port


class _View:
    """Minimal PortView stub with some ports down."""

    def __init__(self, num_ports, down=()):
        self._num = num_ports
        self._down = set(down)

    @property
    def num_ports(self):
        return self._num

    def port_up(self, port):
        return port not in self._down

    def healthy_ports(self):
        return tuple(p for p in range(self._num) if p not in self._down)


class TestStrategySplitEquivalence:
    """fast_port/fast_fallback must equal select_port, draw for draw."""

    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    @pytest.mark.parametrize("deflected", [False, True])
    def test_same_ports_flags_and_rng_consumption(self, name, deflected):
        strategy = strategy_by_name(name)
        view = _View(4, down={1})
        for computed in range(5):  # includes an out-of-range residue
            for in_port in range(4):
                packet = _pkt(44)
                packet.kar.deflected = deflected
                rng_ref = random.Random(901)
                rng_fast = random.Random(901)
                ref = strategy.select_port(
                    view, packet, in_port, computed, rng_ref
                )
                packet.kar.deflected = deflected  # select_port never writes
                port = strategy.fast_port(view, packet, in_port, computed)
                if port is not None:
                    fast = (port, False)
                else:
                    fast = strategy.fast_fallback(
                        view, packet, in_port, computed, rng_fast
                    )
                case = f"{name} computed={computed} in={in_port}"
                assert (ref.port, ref.deflected) == fast, case
                assert rng_ref.getstate() == rng_fast.getstate(), case

    def test_all_ports_down_drops(self):
        strategy = AnyValidPort()
        view = _View(2, down={0, 1})
        assert strategy.fast_port(view, _pkt(44), 0, 0) is None
        assert strategy.fast_fallback(
            view, _pkt(44), 0, 0, random.Random(1)
        ) == (None, False)

    def test_hot_potato_deflected_always_falls_back(self):
        packet = _pkt(44)
        packet.kar.deflected = True
        view = _View(3)
        # Computed port is healthy, but a deflected HP packet must
        # random-walk — the happy path may not capture it.
        assert HotPotato().fast_port(view, packet, 0, 2) is None

    def test_nip_never_returns_input_port(self):
        view = _View(3)
        assert NotInputPort().fast_port(view, _pkt(44), 2, 2) is None
