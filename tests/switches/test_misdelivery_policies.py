"""Tests for the two misdelivery policies (Section 2.1's design choice)."""

import pytest

from repro.runner import KarSimulation
from repro.sim import KarHeader, Link, PacketTracer, Packet, Simulator
from repro.sim.node import Node
from repro.switches.edge import BOUNCE, MISDELIVERY_POLICIES, REENCODE, EdgeNode
from repro.topology import FULL, fifteen_node


class Collector(Node):
    def __init__(self, name, sim):
        super().__init__(name, sim, 1)
        self.received = []

    def receive(self, packet, in_port):
        self.received.append(packet)


class TestPolicyValidation:
    def test_policies_exposed(self):
        assert MISDELIVERY_POLICIES == (BOUNCE, REENCODE)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="misdelivery"):
            EdgeNode("E", Simulator(), 1, misdelivery_policy="teleport")


class TestBounce:
    def _rig(self):
        sim = Simulator()
        tracer = PacketTracer()
        edge = EdgeNode("E", sim, 2, tracer=tracer,
                        misdelivery_policy=BOUNCE)
        core = Collector("CORE", sim)
        host = Collector("H1", sim)
        Link(sim, edge, 0, core, 0, delay_s=0.0001)
        Link(sim, edge, 1, host, 0, delay_s=0.0001)
        edge.serve_host("H1", 1)
        return sim, edge, core, host, tracer

    def test_stray_packet_bounced_unchanged(self):
        sim, edge, core, host, tracer = self._rig()
        p = Packet(src_host="x", dst_host="H-ELSEWHERE", size_bytes=100,
                   kar=KarHeader(route_id=77, deflected=True, ttl=20))
        edge.receive(p, in_port=0)
        sim.run()
        assert len(core.received) == 1
        bounced = core.received[0]
        # "without any change": same route ID, flag and TTL preserved.
        assert bounced.kar.route_id == 77
        assert bounced.kar.deflected is True
        assert bounced.kar.ttl == 20
        assert edge.bounces == 1
        assert edge.reencode_requests == 0

    def test_bounce_never_uses_host_ports(self):
        sim, edge, core, host, tracer = self._rig()
        p = Packet(src_host="x", dst_host="H-ELSEWHERE", size_bytes=100,
                   kar=KarHeader(route_id=77, ttl=20))
        edge.receive(p, in_port=0)
        sim.run()
        assert host.received == []

    def test_bounce_expired_ttl_drops(self):
        sim, edge, core, host, tracer = self._rig()
        p = Packet(src_host="x", dst_host="H-ELSEWHERE", size_bytes=100,
                   kar=KarHeader(route_id=77, ttl=0))
        edge.receive(p, in_port=0)
        sim.run()
        assert tracer.drop_reasons["ttl-expired"] == 1
        assert core.received == []

    def test_bounce_no_port_drops(self):
        sim = Simulator()
        tracer = PacketTracer()
        edge = EdgeNode("E", sim, 1, tracer=tracer,
                        misdelivery_policy=BOUNCE)
        host = Collector("H1", sim)
        Link(sim, edge, 0, host, 0, delay_s=0.0001)
        edge.serve_host("H1", 0)
        p = Packet(src_host="x", dst_host="H-X", size_bytes=100,
                   kar=KarHeader(route_id=7, ttl=10))
        edge.receive(p, in_port=0)
        sim.run()
        assert tracer.drop_reasons["bounce-no-port"] == 1


class TestPoliciesEndToEnd:
    @pytest.mark.parametrize("policy", [BOUNCE, REENCODE])
    def test_both_policies_survive_failure(self, policy):
        # AVP deflects packets into edges; both policies must keep the
        # system live (reencode converges faster, bounce needs the TTL).
        ks = KarSimulation(
            fifteen_node(rate_mbps=20.0, delay_s=0.0002),
            deflection="avp", protection=FULL, seed=11,
            misdelivery_policy=policy,
        )
        ks.schedule_failure("SW10", "SW7", at=0.5)
        src, sink = ks.add_udp_probe(rate_pps=200, duration_s=1.5)
        src.start(at=1.0)
        ks.run(until=8.0)
        accounted = sink.received + sum(ks.tracer.drop_reasons.values())
        assert accounted == src.sent
        assert sink.received >= 0.9 * src.sent
