"""Tests for edge-node encapsulation, delivery and misdelivery handling."""

import pytest

from repro.sim import Link, PacketTracer, Packet, KarHeader, Simulator
from repro.sim.node import Node
from repro.switches import EdgeNode, IngressEntry


class Collector(Node):
    def __init__(self, name, sim):
        super().__init__(name, sim, 1)
        self.received = []

    def receive(self, packet, in_port):
        self.received.append(packet)


class FakeController:
    def __init__(self, entry=None, rtt=0.01):
        self.entry = entry
        self.requests = []
        self._rtt = rtt

    @property
    def control_rtt_s(self):
        return self._rtt

    def reencode(self, edge_name, dst_host):
        self.requests.append((edge_name, dst_host))
        return self.entry


@pytest.fixture
def rig():
    """Edge with port 0 -> core collector, port 1 -> host collector."""
    sim = Simulator()
    tracer = PacketTracer()
    edge = EdgeNode("E", sim, 2, tracer=tracer)
    core = Collector("CORE", sim)
    host = Collector("H1", sim)
    Link(sim, edge, 0, core, 0, delay_s=0.0001)
    Link(sim, edge, 1, host, 0, delay_s=0.0001)
    edge.serve_host("H1", 1)
    return sim, edge, core, host, tracer


class TestIngress:
    def test_encapsulates_and_sends(self, rig):
        sim, edge, core, host, tracer = rig
        edge.install_ingress("H2", IngressEntry(route_id=44, modulus=308,
                                                out_port=0, ttl=32))
        p = Packet(src_host="H1", dst_host="H2", size_bytes=100)
        edge.receive(p, in_port=1)
        sim.run()
        assert len(core.received) == 1
        assert p.kar.route_id == 44
        assert p.kar.ttl == 32
        assert edge.encapsulated == 1

    def test_no_route_drops(self, rig):
        sim, edge, core, host, tracer = rig
        p = Packet(src_host="H1", dst_host="H9", size_bytes=100)
        edge.receive(p, in_port=1)
        sim.run()
        assert tracer.drop_reasons["no-ingress-route"] == 1
        assert not core.received


class TestEgress:
    def test_strips_header_and_delivers(self, rig):
        sim, edge, core, host, tracer = rig
        p = Packet(src_host="H9", dst_host="H1", size_bytes=100,
                   kar=KarHeader(route_id=77))
        edge.receive(p, in_port=0)
        sim.run()
        assert len(host.received) == 1
        assert host.received[0].kar is None
        assert edge.delivered == 1
        assert tracer.delivered_count == 1


class TestMisdelivery:
    def _stray(self):
        return Packet(src_host="H9", dst_host="H-ELSEWHERE", size_bytes=100,
                      kar=KarHeader(route_id=77, deflected=True, ttl=20))

    def test_reencode_and_reinject(self, rig):
        sim, edge, core, host, tracer = rig
        ctrl = FakeController(IngressEntry(route_id=99, modulus=500, out_port=0))
        edge.set_controller(ctrl)
        p = self._stray()
        edge.receive(p, in_port=0)
        sim.run()
        assert ctrl.requests == [("E", "H-ELSEWHERE")]
        assert len(core.received) == 1
        assert p.kar.route_id == 99
        assert p.kar.deflected is False       # fresh route, fresh flag
        assert p.kar.ttl == 20                # TTL carries over

    def test_reinjection_is_delayed_by_control_rtt(self, rig):
        sim, edge, core, host, tracer = rig
        ctrl = FakeController(IngressEntry(route_id=99, modulus=500, out_port=0),
                              rtt=0.05)
        edge.set_controller(ctrl)
        edge.receive(self._stray(), in_port=0)
        sim.run_until(0.04)
        assert not core.received
        sim.run_until(0.06)
        assert len(core.received) == 1

    def test_no_controller_drops(self, rig):
        sim, edge, core, host, tracer = rig
        edge.receive(self._stray(), in_port=0)
        sim.run()
        assert tracer.drop_reasons["misdelivered-no-controller"] == 1

    def test_controller_without_route_drops(self, rig):
        sim, edge, core, host, tracer = rig
        edge.set_controller(FakeController(entry=None))
        edge.receive(self._stray(), in_port=0)
        sim.run()
        assert tracer.drop_reasons["misdelivered-no-route"] == 1

    def test_expired_ttl_dropped_at_reinjection(self, rig):
        sim, edge, core, host, tracer = rig
        ctrl = FakeController(IngressEntry(route_id=99, modulus=500, out_port=0))
        edge.set_controller(ctrl)
        p = Packet(src_host="H9", dst_host="H-X", size_bytes=100,
                   kar=KarHeader(route_id=77, ttl=0))
        edge.receive(p, in_port=0)
        sim.run()
        assert tracer.drop_reasons["ttl-expired"] == 1
        assert not core.received
