"""Tests for network assembly and failure scheduling."""

import pytest

from repro.sim import FailureSchedule, Network, Packet, Simulator
from repro.sim.node import Node
from repro.topology import NodeKind, PortGraph


class Sink(Node):
    def __init__(self, name, sim, num_ports):
        super().__init__(name, sim, num_ports)
        self.received = []

    def receive(self, packet, in_port):
        self.received.append((packet, in_port))


def _factories():
    def make(info, sim):
        return Sink(info.name, sim, info.degree)

    return {NodeKind.CORE: make, NodeKind.EDGE: make, NodeKind.HOST: make}


@pytest.fixture
def triangle():
    g = PortGraph()
    for name, sid in (("A", 5), ("B", 7), ("C", 11)):
        g.add_node(name, switch_id=sid)
    g.add_link("A", "B")
    g.add_link("B", "C")
    g.add_link("C", "A")
    sim = Simulator()
    return g, sim, Network(g, sim, _factories())


class TestAssembly:
    def test_nodes_built_with_correct_ports(self, triangle):
        g, sim, net = triangle
        for name in ("A", "B", "C"):
            assert net.node(name).num_ports == 2

    def test_port_numbering_preserved(self, triangle):
        g, sim, net = triangle
        # Topology: A port0->B; sending there must arrive at B.
        net.node("A").send(g.port_of("A", "B"), Packet(
            src_host="x", dst_host="y", size_bytes=100))
        sim.run()
        b = net.node("B")
        assert len(b.received) == 1
        assert b.received[0][1] == g.port_of("B", "A")

    def test_link_lookup(self, triangle):
        g, sim, net = triangle
        assert net.link_between("A", "B") is net.link_between("B", "A")
        with pytest.raises(KeyError):
            net.link_between("A", "Z")

    def test_unknown_node(self, triangle):
        g, sim, net = triangle
        with pytest.raises(KeyError):
            net.node("Z")

    def test_missing_factory(self):
        g = PortGraph()
        g.add_node("E", kind=NodeKind.EDGE)
        with pytest.raises(ValueError, match="no factory"):
            Network(g, Simulator(), {})

    def test_factory_port_mismatch(self, triangle):
        g, sim, _ = triangle

        def bad(info, s):
            return Sink(info.name, s, info.degree + 1)

        with pytest.raises(ValueError, match="ports"):
            Network(g, Simulator(), {NodeKind.CORE: bad})


class TestFailureSchedule:
    def test_fail_and_repair(self, triangle):
        g, sim, net = triangle
        schedule = FailureSchedule().fail_between("A", "B", 1.0, 2.0)
        schedule.install(net)
        link = net.link_between("A", "B")
        assert link.up
        sim.run_until(1.5)
        assert not link.up
        sim.run_until(2.5)
        assert link.up

    def test_events_sorted(self):
        s = FailureSchedule().repair(2.0, "A", "B").fail(1.0, "A", "B")
        assert [e.time for e in s.events] == [1.0, 2.0]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            FailureSchedule().fail_between("A", "B", 2.0, 1.0)

    def test_describe(self):
        s = FailureSchedule().fail_between("A", "B", 1.0, 2.0)
        text = s.describe()
        assert "fail A-B" in text and "repair A-B" in text
        assert FailureSchedule().describe() == "no failures"
