"""Tests for the dynamic link-failure adversary and worst-case search."""

import pytest

from repro import KarSimulation, fifteen_node
from repro.sim.adversary import DynamicLinkChaos, search_worst_schedule
from repro.sim.chaos import CHAOS_MODES

HORIZON = 2.0


def _run(seed=42, schedule_seed=0, **kwargs):
    ks = KarSimulation(fifteen_node(), deflection="nip", seed=seed)
    injector = ks.add_chaos(
        "dynamic", until=HORIZON, schedule_seed=schedule_seed,
        strikes=12, min_down_s=0.01, max_down_s=0.05, **kwargs,
    )
    src, sink = ks.add_udp_probe(rate_pps=200, duration_s=HORIZON)
    src.start(at=0.05)
    ks.run(until=HORIZON + 1.0)
    return ks, injector, src, sink


class TestDynamicLinkChaos:
    def test_registered_as_chaos_mode(self):
        assert CHAOS_MODES["dynamic"] is DynamicLinkChaos

    def test_seed_reproducible_event_log(self):
        _, a, _, _ = _run(seed=7)
        _, b, _, _ = _run(seed=7)
        assert a.events == b.events
        assert a.digest() == b.digest()
        assert a.events

    def test_schedule_seed_changes_the_trajectory(self):
        _, a, _, _ = _run(seed=7, schedule_seed=0)
        _, b, _, _ = _run(seed=7, schedule_seed=1)
        assert a.digest() != b.digest()

    def test_links_recover_during_the_run(self):
        # The defining property of the dynamic adversary: every strike
        # is a fail+repair pair with a sub-horizon down window, so
        # links come back while traffic is still flowing.
        ks, injector, _, _ = _run()
        fails = {}
        windows = []
        for ev in injector.events:
            if ev.kind == "fail":
                fails[(ev.link, ev.cause)] = ev.time
            else:
                start = fails.pop((ev.link, ev.cause))
                windows.append(ev.time - start)
        assert not fails, "every applied strike must be repaired"
        assert windows
        for window in windows:
            assert 0.01 <= window <= 0.05 + 1e-9
        assert ks.network.down_link_keys() == []

    def test_budget_caps_concurrent_down(self):
        _, injector, _, _ = _run(max_down=1)
        down = set()
        for ev in injector.events:
            if ev.kind == "fail":
                down.add(ev.link)
            else:
                down.discard(ev.link)
            assert len(down) <= 1

    def test_oblivious_to_traffic(self):
        # Unlike the adversarial injector, the schedule is drawn up
        # front: an idle network sees the same strikes as a busy one.
        ks = KarSimulation(fifteen_node(), deflection="nip", seed=7)
        idle = ks.add_chaos("dynamic", until=HORIZON, strikes=12,
                            min_down_s=0.01, max_down_s=0.05)
        ks.run(until=HORIZON + 1.0)
        _, busy, _, _ = _run(seed=7)
        assert idle.digest() == busy.digest()

    def test_bad_parameters_rejected(self):
        ks = KarSimulation(fifteen_node(), deflection="nip", seed=0)
        with pytest.raises(ValueError, match="strikes"):
            DynamicLinkChaos(ks.network, ks.rng, until=1.0, strikes=0)
        with pytest.raises(ValueError, match="down window"):
            DynamicLinkChaos(ks.network, ks.rng, until=1.0,
                             min_down_s=0.2, max_down_s=0.1)
        with pytest.raises(ValueError, match="down window"):
            DynamicLinkChaos(ks.network, ks.rng, until=1.0,
                             min_down_s=0.0)


class TestWorstScheduleSearch:
    def test_ranked_worst_first_and_reproducible(self):
        cells = search_worst_schedule(
            "clique", "nip", seed=1, schedules=3, budget=2,
            adversary={"strikes": 16},
        )
        assert len(cells) == 3
        ratios = [c.delivery_ratio for c in cells]
        assert ratios == sorted(ratios)
        assert {c.schedule_seed for c in cells} == {0, 1, 2}
        for cell in cells:
            assert cell.mode == "dynamic"
            assert cell.violation_count == 0
        again = search_worst_schedule(
            "clique", "nip", seed=1, schedules=3, budget=2,
            adversary={"strikes": 16},
        )
        assert [c.digest for c in again] == [c.digest for c in cells]

    def test_validation(self):
        with pytest.raises(ValueError, match="schedule"):
            search_worst_schedule("clique", "nip", schedules=0)
        with pytest.raises(ValueError, match="budget"):
            search_worst_schedule("clique", "nip", budget=0)
