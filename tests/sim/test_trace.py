"""Tests for the packet tracer."""

import pytest

from repro.sim import PacketTracer, Packet


def _pkt(uid_payload=None):
    return Packet(src_host="a", dst_host="b", size_bytes=100)


class TestAggregates:
    def test_forward_and_deflection_counts(self):
        tr = PacketTracer()
        p = _pkt()
        tr.on_forward(0.1, "SW1", p, 0, 1, deflected=False)
        tr.on_forward(0.2, "SW2", p, 0, 2, deflected=True)
        assert tr.forward_count == 2
        assert tr.deflection_count == 1

    def test_drop_reasons(self):
        tr = PacketTracer()
        tr.on_drop(0.1, "SW1", _pkt(), "ttl-expired")
        tr.on_drop(0.2, "SW2", _pkt(), "ttl-expired")
        tr.on_drop(0.3, "SW3", _pkt(), "queue-overflow")
        assert tr.drop_reasons["ttl-expired"] == 2
        assert tr.total_drops == 3

    def test_delivery_hop_histogram(self):
        tr = PacketTracer()
        for hops in (4, 4, 6):
            p = _pkt()
            p.hops = hops
            tr.on_deliver(1.0, "hb", p)
        assert tr.delivered_count == 3
        assert tr.mean_hops() == pytest.approx(14 / 3)
        assert tr.max_hops() == 6

    def test_empty_stats(self):
        tr = PacketTracer()
        assert tr.mean_hops() is None
        assert tr.max_hops() is None


class TestPathTracing:
    def test_paths_disabled_by_default(self):
        tr = PacketTracer()
        tr.on_forward(0.1, "SW1", _pkt(), 0, 1, False)
        with pytest.raises(RuntimeError):
            tr.path_of(1)

    def test_per_packet_path(self):
        tr = PacketTracer(trace_paths=True)
        p = _pkt()
        tr.on_forward(0.1, "SW1", p, 0, 1, False)
        tr.on_forward(0.2, "SW2", p, 1, 0, True)
        tr.on_deliver(0.3, "hb", p)
        assert tr.switch_sequence(p.uid) == ["SW1", "SW2"]
        assert tr.path_of(p.uid)[1].deflected
        assert tr.deliveries[p.uid][1] == "hb"

    def test_unknown_packet_has_empty_path(self):
        tr = PacketTracer(trace_paths=True)
        assert tr.path_of(999999) == []
