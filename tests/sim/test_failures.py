"""Tests for the declarative failure schedule (validation & messages)."""

import pytest

from repro.sim import FailureSchedule, Network, Simulator
from repro.sim.node import Node
from repro.topology import NodeKind, PortGraph


class Sink(Node):
    def receive(self, packet, in_port):
        pass


def _triangle_network():
    g = PortGraph()
    for name, sid in (("A", 5), ("B", 7), ("C", 11)):
        g.add_node(name, switch_id=sid)
    g.add_link("A", "B")
    g.add_link("B", "C")
    g.add_link("C", "A")
    sim = Simulator()

    def make(info, sim):
        return Sink(info.name, sim, info.degree)

    factories = {k: make for k in (NodeKind.CORE, NodeKind.EDGE, NodeKind.HOST)}
    return sim, Network(g, sim, factories)


class TestEventValidation:
    def test_negative_fail_time_rejected(self):
        with pytest.raises(ValueError, match="A-B.*non-negative"):
            FailureSchedule().fail(-1.0, "A", "B")

    def test_negative_repair_time_rejected(self):
        with pytest.raises(ValueError, match="B-C.*non-negative"):
            FailureSchedule().repair(-0.5, "B", "C")

    def test_fail_between_rejects_inverted_window(self):
        # The message must name the link and both times.
        with pytest.raises(ValueError) as exc:
            FailureSchedule().fail_between("A", "B", start=5.0, end=2.0)
        msg = str(exc.value)
        assert "A-B" in msg
        assert "t=2.0" in msg and "t=5.0" in msg

    def test_fail_between_rejects_zero_width_window(self):
        with pytest.raises(ValueError):
            FailureSchedule().fail_between("A", "B", start=3.0, end=3.0)

    def test_fail_between_valid_window_produces_pair(self):
        sched = FailureSchedule().fail_between("A", "B", 1.0, 2.0)
        kinds = [(ev.time, ev.up) for ev in sched.events]
        assert kinds == [(1.0, False), (2.0, True)]


class TestInstallValidation:
    def test_install_rejects_unknown_link(self):
        sim, net = _triangle_network()
        sched = FailureSchedule().fail(1.0, "A", "Z")
        with pytest.raises(ValueError) as exc:
            sched.install(net)
        msg = str(exc.value)
        assert "A-Z" in msg
        assert "does not exist" in msg
        # The offending event is spelled out too.
        assert "t=1" in msg and "fail" in msg

    def test_install_validates_before_scheduling_anything(self):
        # One bad event poisons the whole install: nothing runs.
        sim, net = _triangle_network()
        sched = (
            FailureSchedule()
            .fail(0.5, "A", "B")
            .fail(1.0, "B", "Q")  # typo'd endpoint
        )
        with pytest.raises(ValueError, match="B-Q"):
            sched.install(net)
        sim.run()
        assert net.link_between("A", "B").up  # good event never scheduled

    def test_install_applies_valid_schedule(self):
        sim, net = _triangle_network()
        FailureSchedule().fail_between("A", "B", 1.0, 2.0).install(net)
        sim.run_until(1.5)
        assert not net.link_between("A", "B").up
        sim.run_until(2.5)
        assert net.link_between("A", "B").up
