"""Tests for the runtime invariant checker (unit level, fake switches)."""

import pytest

from repro.sim.invariants import InvariantChecker, InvariantViolation
from repro.sim.packet import KarHeader, Packet


class FakeSwitch:
    """Just enough of the Node surface for on_switch_forward."""

    def __init__(self, name="SW1", dead_ports=()):
        self.name = name
        self._dead = set(dead_ports)

    def port_up(self, port):
        return port not in self._dead

    def peer_name(self, port):
        return f"peer{port}"

    def link_on(self, port):
        return object()  # every port is cabled


def _pkt(ttl=16):
    return Packet(src_host="S", dst_host="D", size_bytes=100,
                  kar=KarHeader(route_id=7, modulus=5, ttl=ttl))


class TestConservationLedger:
    def test_clean_lifecycle_balances(self):
        inv = InvariantChecker()
        p = _pkt()
        inv.on_encapsulate(0.0, "E1", p)
        inv.on_switch_forward(0.1, FakeSwitch(), p, in_port=0, out_port=1)
        inv.on_deliver(0.2, "E2", p)
        assert (inv.injected, inv.delivered, inv.dropped) == (1, 1, 0)
        assert inv.in_flight == 0
        inv.check_conservation(1.0)
        assert inv.violations == []

    def test_drop_resolves_the_ledger(self):
        inv = InvariantChecker()
        p = _pkt()
        inv.on_encapsulate(0.0, "E1", p)
        inv.on_drop(0.5, "SW3", p, "link-down")
        assert inv.dropped == 1
        inv.check_conservation(1.0)
        assert inv.violations == []

    def test_unresolved_packet_is_a_conservation_violation(self):
        inv = InvariantChecker()
        p = _pkt()
        inv.on_encapsulate(0.0, "E1", p)
        inv.check_conservation(1.0)
        assert inv.violation_counts["conservation"] == 1
        v = inv.violations[0]
        assert f"{p.uid}" in v.detail
        assert "injected=1 delivered=0 dropped=0" in v.detail

    def test_expected_in_flight_suppresses_the_violation(self):
        inv = InvariantChecker()
        inv.on_encapsulate(0.0, "E1", _pkt())
        inv.check_conservation(1.0, expect_in_flight=1)
        assert inv.violations == []


class TestForwardChecks:
    def test_dead_port_forward_flagged_with_trace(self):
        inv = InvariantChecker()
        p = _pkt()
        inv.on_encapsulate(0.0, "E1", p)
        inv.on_switch_forward(0.1, FakeSwitch("SW1"), p, 0, 1)
        inv.on_switch_forward(0.2, FakeSwitch("SW2", dead_ports={3}), p, 0, 3)
        assert inv.violation_counts["dead-port-forward"] == 1
        v = inv.violations[0]
        assert v.node == "SW2"
        assert v.trace == ("E1", "SW1", "SW2")
        assert "peer3" in v.detail

    def test_live_port_forward_is_clean(self):
        inv = InvariantChecker()
        inv.on_switch_forward(0.1, FakeSwitch(), _pkt(), 0, 1)
        assert inv.violations == []

    def test_return_to_sender_only_when_enabled(self):
        relaxed = InvariantChecker(forbid_return_to_sender=False)
        relaxed.on_switch_forward(0.1, FakeSwitch(), _pkt(), 2, 2)
        assert relaxed.violations == []

        nip = InvariantChecker(forbid_return_to_sender=True)
        nip.on_switch_forward(0.1, FakeSwitch(), _pkt(), 2, 2)
        assert nip.violation_counts["return-to-sender"] == 1

    def test_negative_ttl_flagged(self):
        inv = InvariantChecker()
        inv.on_switch_forward(0.1, FakeSwitch(), _pkt(ttl=-1), 0, 1)
        assert inv.violation_counts["negative-ttl"] == 1

    def test_reencode_resets_the_trace(self):
        inv = InvariantChecker()
        p = _pkt()
        inv.on_encapsulate(0.0, "E1", p)
        inv.on_switch_forward(0.1, FakeSwitch("SW1"), p, 0, 1)
        inv.on_reencode(0.2, "E9", p)
        inv.on_switch_forward(0.3, FakeSwitch("SW2", dead_ports={0}), p, 1, 0)
        assert inv.violations[0].trace == ("E9", "SW2")


class TestStrictMode:
    def test_strict_raises_structured_error(self):
        inv = InvariantChecker(strict=True)
        with pytest.raises(InvariantViolation) as exc:
            inv.on_switch_forward(
                0.1, FakeSwitch(dead_ports={1}), _pkt(), 0, 1)
        assert exc.value.violation.kind == "dead-port-forward"
        assert "SW1" in str(exc.value)

    def test_collect_mode_keeps_going(self):
        inv = InvariantChecker(strict=False)
        sw = FakeSwitch(dead_ports={1})
        inv.on_switch_forward(0.1, sw, _pkt(), 0, 1)
        inv.on_switch_forward(0.2, sw, _pkt(), 0, 1)
        assert len(inv.violations) == 2
        assert inv.violation_counts["dead-port-forward"] == 2

    def test_summary_tallies(self):
        inv = InvariantChecker()
        inv.on_switch_forward(0.1, FakeSwitch(dead_ports={1}), _pkt(), 0, 1)
        assert "dead-port-forward=1" in inv.summary()
        assert "none" in InvariantChecker().summary()
