"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_during_run(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run_until(10.0)
        assert seen == [5.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimError):
            sim.schedule_at(0.5, lambda: None)


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run_until(2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run_until(6.0)
        assert fired == [1, 5]

    def test_boundary_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, 1)
        sim.run_until(2.0)
        assert fired == [1]

    def test_clock_reaches_end_even_when_idle(self):
        sim = Simulator()
        sim.run_until(7.0)
        assert sim.now == 7.0

    def test_backwards_run_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimError):
            sim.run_until(3.0)

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def reenter():
            with pytest.raises(SimError):
                sim.run_until(10.0)

        sim.schedule(1.0, reenter)
        sim.run_until(2.0)


class TestPostFastPath:
    """post()/post_at(): the handle-free path for uncancellable events."""

    def test_post_fires_with_args(self):
        sim = Simulator()
        seen = []
        sim.post(1.0, seen.append, "a")
        sim.post(0.5, seen.append, "b")
        sim.run()
        assert seen == ["b", "a"]
        assert sim.now == 1.0

    def test_post_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.post_at(5.0, lambda: seen.append(sim.now))
        sim.run_until(10.0)
        assert seen == [5.0]

    def test_post_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.post(-0.1, lambda: None)

    def test_post_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimError):
            sim.post_at(0.5, lambda: None)

    def test_post_and_schedule_interleave_fifo(self):
        # Both paths consume one sequence number per call, so mixing
        # them preserves scheduling order among same-time events — the
        # property that makes post() digest-neutral.
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "s1")
        sim.post(1.0, order.append, "p1")
        sim.schedule(1.0, order.append, "s2")
        sim.post(1.0, order.append, "p2")
        sim.run()
        assert order == ["s1", "p1", "s2", "p2"]

    def test_post_counts_in_pending_and_processed(self):
        sim = Simulator()
        sim.post(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        sim.run()
        assert sim.pending() == 0
        assert sim.events_processed == 2

    def test_cancelled_events_not_counted_as_processed(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(1.5, lambda: None).cancel()
        sim.post(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_pending_counts_live_events(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        h1.cancel()
        assert sim.pending() == 1

    def test_cancel_after_fire_does_not_corrupt_pending(self):
        # Regression: cancelling a handle whose event already fired
        # used to decrement the live counter a second time, driving
        # pending() negative and corrupting later accounting.
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.pending() == 0
        handle.cancel()
        assert sim.pending() == 0
        handle.cancel()  # still idempotent after firing
        assert sim.pending() == 0
        # The counter must stay coherent for events scheduled later.
        sim.schedule(1.0, lambda: None)
        assert sim.pending() == 1
        sim.run()
        assert sim.pending() == 0

    def test_cancel_after_fire_inside_run(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        # A later event cancels the earlier, already-fired one: the
        # cancel must be a no-op, not a second live-counter decrement.
        sim.schedule(2.0, handle.cancel)
        sim.run()
        assert fired == [1]
        assert handle.cancelled  # fired handles read as cancelled
        assert sim.pending() == 0
        assert sim.events_processed == 2


class TestStop:
    def test_stop_halts_processing(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, fired.append, 3)
        sim.run()
        assert fired == [1]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4
