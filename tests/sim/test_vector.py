"""The vectorized epoch engine against the reference oracle.

Every test here is a bit-for-bit equality claim: the numpy batch
forwarder must reproduce the reference engine's *decisions* (output
ports, deflected flags, drop reasons) and its *RNG stream positions*,
not just aggregate counts.
"""

import pytest

from repro.farm.jobs import execute_spec, simvector_spec
from repro.sim.vector import (
    EpochTopology,
    build_workload,
    iter_injections,
    run_epoch_reference,
    run_epoch_vector,
    synthetic_spec,
)

STRATEGIES = ("none", "hp", "avp", "nip")


def small_spec(strategy="nip", seed=3, **overrides):
    base = dict(
        num_switches=6, extra_links=2, min_switch_id=23, seed=seed,
        strategy=strategy, flows=3, ttl=24, inject_per_epoch=2,
        inject_epochs=4, link_failures=1, fail_epoch=2, repair_epoch=5,
    )
    base.update(overrides)
    return synthetic_spec(**base)


class TestWorkloadBuild:
    def test_build_is_deterministic(self):
        a = build_workload(small_spec())
        b = build_workload(small_spec())
        assert a.flows == b.flows
        assert a.flips == b.flips
        assert a.topo.names == b.topo.names

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            build_workload({"kind": "no-such-kind"})

    def test_topology_port_tables_are_inverses(self):
        topo = build_workload(small_spec()).topo
        for u in range(topo.n):
            for p in range(topo.degree[u]):
                v = int(topo.peer[u][p])
                back = int(topo.peer_port[u][p])
                assert int(topo.peer[v][back]) == u
                assert int(topo.peer_port[v][back]) == p

    def test_canonical_uids_are_dense_and_epoch_major(self):
        wl = build_workload(small_spec())
        uids = [
            uid
            for epoch in range(wl.inject_epochs)
            for uid, _ in iter_injections(wl, epoch)
        ]
        assert uids == list(range(wl.injected_total))

    def test_epoch_topology_matches_graph_names(self):
        wl = build_workload(small_spec())
        assert wl.topo.names == tuple(sorted(wl.topo.names))
        assert isinstance(wl.topo, EpochTopology)


class TestEngineEquality:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_record_identical_per_strategy(self, strategy):
        wl = build_workload(small_spec(strategy=strategy))
        ref = run_epoch_reference(wl)
        vec = run_epoch_vector(wl)
        assert ref.record == vec.record
        assert ref.digest == vec.digest

    @pytest.mark.parametrize("seed", [1, 7, 19])
    def test_record_identical_across_seeds(self, seed):
        wl = build_workload(small_spec(seed=seed, strategy="hp"))
        assert run_epoch_reference(wl).record == run_epoch_vector(wl).record

    def test_rng_fingerprint_included_and_equal(self):
        # A matching fingerprint means both engines drew the same
        # values from the same per-switch streams in the same order.
        wl = build_workload(small_spec(strategy="nip", link_failures=2))
        ref = run_epoch_reference(wl)
        vec = run_epoch_vector(wl)
        assert ref.record["rng_fingerprint"] == vec.record["rng_fingerprint"]
        assert len(ref.record["rng_fingerprint"]) == 16

    def test_per_packet_traces_identical(self):
        wl = build_workload(small_spec(strategy="avp"))
        ref = run_epoch_reference(wl, trace=True)
        vec = run_epoch_vector(wl, trace=True)
        assert ref.traces is not None and vec.traces is not None
        assert set(ref.traces) == set(vec.traces)
        for uid in ref.traces:
            assert ref.traces[uid] == vec.traces[uid], uid
        assert ref.fates == vec.fates

    def test_every_injection_has_a_fate(self):
        wl = build_workload(small_spec())
        ref = run_epoch_reference(wl, trace=True)
        assert ref.fates is not None
        r = ref.record
        terminal = (
            r["delivered"]
            + sum(r["misdelivered"].values())
            + sum(r["drop_reasons"].values())
        )
        assert len(ref.fates) == terminal
        assert r["injected"] == terminal + r["live_at_end"]

    def test_no_failures_no_deflections(self):
        wl = build_workload(small_spec(strategy="nip", link_failures=0))
        ref = run_epoch_reference(wl)
        vec = run_epoch_vector(wl)
        assert ref.record == vec.record
        assert all(c[1] == 0 for c in ref.record["switches"].values())
        assert ref.record["delivered"] == ref.record["injected"]

    def test_flips_change_the_outcome(self):
        healthy = run_epoch_vector(
            build_workload(small_spec(link_failures=0))
        )
        failed = run_epoch_vector(
            build_workload(small_spec(link_failures=1, repair_epoch=None))
        )
        assert healthy.digest != failed.digest


class TestSimvectorJob:
    def test_all_modes_same_digest_via_farm(self):
        wl_spec = small_spec(strategy="hp")
        digests = set()
        for mode in ("reference", "vector", "sharded"):
            spec = simvector_spec(wl_spec, mode=mode)
            record = execute_spec(spec)
            assert record["mode"] == mode
            digests.add(record["sim"]["digest"])
        assert len(digests) == 1

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            simvector_spec(small_spec(), mode="warp")
