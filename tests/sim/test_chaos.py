"""Tests for the generative chaos injectors.

The contract under test: every injector is a pure function of
(topology, config, seed) — bit-identical event logs across runs — and
none of them may exceed the concurrent-down budget or touch host access
links.
"""

import pytest

from repro import KarSimulation, fifteen_node
from repro.sim.chaos import (
    CHAOS_MODES,
    ControllerOutageChaos,
    MtbfMttrChaos,
    events_digest,
)
from repro.topology import NodeKind

HORIZON = 3.0


def _sim(seed=42):
    return KarSimulation(fifteen_node(), deflection="nip", seed=seed)


def _mode_kwargs(mode):
    # Parameters aggressive enough that every mode fires within HORIZON.
    return {
        "mtbf": {"mtbf_s": 0.5, "mttr_s": 0.2},
        "flap": {"flap_count": 2, "period_s": 0.5},
        "srlg": {"group_mtbf_s": 0.5, "mttr_s": 0.2},
        "regional": {"strike_mtbf_s": 0.5, "mttr_s": 0.2},
        "adversarial": {"interval_s": 0.5, "hold_s": 0.2},
        "dynamic": {"strikes": 16, "min_down_s": 0.05, "max_down_s": 0.2},
    }[mode]


def _run_mode(mode, seed, with_traffic=False):
    ks = _sim(seed)
    injector = ks.add_chaos(mode, until=HORIZON, **_mode_kwargs(mode))
    if with_traffic:
        src, _ = ks.add_udp_probe(rate_pps=200, duration_s=HORIZON)
        src.start(at=0.05)
    ks.run(until=HORIZON + 1.0)
    return injector


class TestReproducibility:
    @pytest.mark.parametrize("mode", sorted(CHAOS_MODES))
    def test_same_seed_same_event_log(self, mode):
        # Adversarial chaos reacts to traffic, so drive identical traffic.
        a = _run_mode(mode, seed=42, with_traffic=True)
        b = _run_mode(mode, seed=42, with_traffic=True)
        assert a.events == b.events
        assert a.digest() == b.digest()
        assert a.events, f"{mode} produced no events; params too tame"

    def test_different_seed_different_trajectory(self):
        a = _run_mode("mtbf", seed=1)
        b = _run_mode("mtbf", seed=2)
        assert a.digest() != b.digest()

    def test_digest_reflects_event_content(self):
        a = _run_mode("mtbf", seed=1)
        assert events_digest(a.events) == a.digest()
        assert events_digest(a.events[:-1]) != a.digest()


class TestBudgetAndEligibility:
    def test_eligible_defaults_to_core_core_links(self):
        ks = _sim()
        injector = ks.add_chaos("mtbf", until=HORIZON)
        graph = ks.network.graph
        for a, b in injector.eligible:
            assert graph.node(a).kind == NodeKind.CORE
            assert graph.node(b).kind == NodeKind.CORE

    @pytest.mark.parametrize("mode", sorted(CHAOS_MODES))
    def test_concurrent_down_never_exceeds_budget(self, mode):
        ks = _sim()
        injector = ks.add_chaos(mode, until=HORIZON, **_mode_kwargs(mode))
        if mode == "adversarial":
            src, _ = ks.add_udp_probe(rate_pps=200, duration_s=HORIZON)
            src.start(at=0.05)
        ks.run(until=HORIZON + 1.0)
        down = set()
        for ev in injector.events:
            if ev.kind == "fail":
                down.add(ev.link)
            elif ev.kind == "repair":
                down.discard(ev.link)
            assert len(down) <= injector.max_down

    def test_everything_repaired_after_quiesce(self):
        ks = _sim()
        ks.add_chaos("mtbf", until=HORIZON, mtbf_s=0.3, mttr_s=0.1)
        ks.run(until=HORIZON + 5.0)
        assert ks.network.down_link_keys() == []

    def test_bad_link_rejected_early(self):
        ks = _sim()
        with pytest.raises(KeyError):
            ks.add_chaos("mtbf", until=HORIZON,
                         links=[("SW1", "NOPE")])

    def test_unknown_mode(self):
        ks = _sim()
        with pytest.raises(ValueError, match="teleport"):
            ks.add_chaos("teleport", until=HORIZON)

    def test_nonpositive_horizon_rejected(self):
        ks = _sim()
        with pytest.raises(ValueError, match="horizon"):
            ks.add_chaos("mtbf", until=0.0)

    def test_double_install_rejected(self):
        ks = _sim()
        injector = ks.add_chaos("mtbf", until=HORIZON)
        with pytest.raises(RuntimeError, match="already installed"):
            injector.install()


class TestMtbfMttr:
    def test_per_link_events_alternate_fail_repair(self):
        injector = _run_mode("mtbf", seed=42)
        by_link = {}
        for ev in injector.events:
            by_link.setdefault(ev.link, []).append(ev.kind)
        assert by_link
        for link, kinds in by_link.items():
            assert kinds[0] == "fail"
            for first, second in zip(kinds, kinds[1:]):
                assert first != second, f"{link}: {kinds}"

    def test_bad_parameters_rejected(self):
        ks = _sim()
        with pytest.raises(ValueError, match="mtbf/mttr"):
            MtbfMttrChaos(ks.network, ks.rng, until=1.0, mtbf_s=-1.0)


class TestFlapping:
    def test_down_windows_match_configured_fraction(self):
        ks = _sim()
        injector = ks.add_chaos("flap", until=HORIZON, flap_count=1,
                                period_s=1.0, down_fraction=0.3)
        ks.run(until=HORIZON + 1.0)
        events = injector.events
        assert len(events) >= 4
        # fail/repair pairs; each down window is period * down_fraction.
        for fail, repair in zip(events[0::2], events[1::2]):
            assert fail.kind == "fail" and repair.kind == "repair"
            assert repair.time - fail.time == pytest.approx(0.3)
        # Consecutive failures keep the period cadence.
        fails = [e.time for e in events if e.kind == "fail"]
        for a, b in zip(fails, fails[1:]):
            assert b - a == pytest.approx(1.0)

    def test_bad_fraction_rejected(self):
        ks = _sim()
        with pytest.raises(ValueError, match="fraction"):
            ks.add_chaos("flap", until=HORIZON, down_fraction=1.5)


class TestSrlg:
    def test_group_members_fail_and_repair_together(self):
        ks = _sim()
        group = ks.network.core_link_keys()[:3]
        injector = ks.add_chaos(
            "srlg", until=HORIZON, groups=[group],
            group_mtbf_s=0.5, mttr_s=0.2, max_down=len(group),
        )
        ks.run(until=HORIZON + 2.0)
        assert injector.events
        by_time = {}
        for ev in injector.events:
            by_time.setdefault((ev.time, ev.kind), set()).add(ev.link)
        for (_, kind), links in by_time.items():
            # Every strike/repair lands on the whole group at one instant.
            assert links == set(group), (kind, links)

    def test_empty_explicit_groups_rejected(self):
        ks = _sim()
        with pytest.raises(ValueError, match="empty"):
            ks.add_chaos("srlg", until=HORIZON, groups=[[]])


class TestRegional:
    def test_victims_touch_the_named_center(self):
        ks = _sim()
        injector = ks.add_chaos("regional", until=HORIZON, radius=0,
                                strike_mtbf_s=0.3, mttr_s=0.2)
        ks.run(until=HORIZON + 2.0)
        fails = [e for e in injector.events if e.kind == "fail"]
        assert fails
        for ev in fails:
            center = ev.cause.removeprefix("region-")
            assert center in ev.link, (center, ev.link)


class TestAdversarial:
    def test_targets_the_hottest_link(self):
        ks = _sim()
        injector = ks.add_chaos("adversarial", until=1.0,
                                interval_s=0.5, hold_s=0.2)
        hot = injector.eligible[3]
        # Synthesize traffic on one link after the baseline snapshot.
        ks.network.link_between(*hot).stats_ab.tx_packets += 100
        ks.run(until=1.0)
        fails = [e for e in injector.events if e.kind == "fail"]
        assert fails and fails[0].link == hot
        assert fails[0].cause == "hot:100pkts"

    def test_idle_network_is_left_alone(self):
        injector = _run_mode("adversarial", seed=42, with_traffic=False)
        assert injector.events == []


class TestFlipOrdering:
    """Same-instant link flips must apply in one canonical order.

    Regression for the old ``_set_link`` behaviour, where simultaneous
    events applied in scheduler insertion order — the final link state
    and the event digest depended on which injector armed first.
    """

    def _injector(self):
        ks = _sim()
        # Constructed but never install()ed: no events of its own, so
        # the test fully controls what gets staged.
        return ks, MtbfMttrChaos(ks.network, ks.rng, until=HORIZON)

    def _collide(self, order):
        ks, inj = self._injector()
        link = inj.eligible[0]
        flips = [(link, False, "strike"), (link, True, "rescue")]
        if order == "repair-first":
            flips.reverse()
        for key, up, cause in flips:
            ks.sim.schedule_at(1.0, inj._set_link, key, up, cause)
        ks.run(until=2.0)
        return ks, inj, link

    @pytest.mark.parametrize("order", ["fail-first", "repair-first"])
    def test_fail_beats_simultaneous_repair(self, order):
        ks, inj, link = self._collide(order)
        # Canonical outcome regardless of insertion order: the link
        # ends DOWN and only the fail is logged (the repair is a no-op
        # against the staged state).
        assert not ks.network.link_between(*link).up
        assert [(e.kind, e.link) for e in inj.events] == [("fail", link)]

    def test_colliding_orders_produce_identical_digests(self):
        _, a, _ = self._collide("fail-first")
        _, b, _ = self._collide("repair-first")
        assert a.events == b.events
        assert a.digest() == b.digest()

    @pytest.mark.parametrize("reverse", [False, True])
    def test_same_instant_fails_sort_by_link_key(self, reverse):
        ks, inj = self._injector()
        links = sorted(inj.eligible[:3])
        staged = list(reversed(links)) if reverse else list(links)
        for key in staged:
            ks.sim.schedule_at(1.0, inj._set_link, key, False, "strike")
        ks.run(until=2.0)
        assert [e.link for e in inj.events] == links

    def test_repair_applies_before_fail_on_distinct_links(self):
        ks, inj = self._injector()
        l1, l2 = sorted(inj.eligible[:2])
        ks.network.link_between(*l1).set_up(False)
        # Same instant: fail l2 (staged first) and repair l1.
        ks.sim.schedule_at(1.0, inj._set_link, l2, False, "strike")
        ks.sim.schedule_at(1.0, inj._set_link, l1, True, "rescue")
        ks.run(until=2.0)
        # Canonical order: repairs first, then fails.
        assert [(e.kind, e.link) for e in inj.events] == [
            ("repair", l1), ("fail", l2),
        ]

    def test_duplicate_fail_requests_collapse(self):
        ks, inj = self._injector()
        link = inj.eligible[0]
        ks.sim.schedule_at(1.0, inj._set_link, link, False, "first")
        ks.sim.schedule_at(1.0, inj._set_link, link, False, "second")
        ks.run(until=2.0)
        assert [e.cause for e in inj.events] == ["first"]


class _FakeController:
    def __init__(self):
        self.reachable = True
        self.toggles = []

    def set_reachable(self, up):
        self.reachable = up
        self.toggles.append(up)


class TestControllerOutage:
    def test_outage_windows_toggle_reachability(self):
        ks = _sim()
        ctrl = _FakeController()
        injector = ControllerOutageChaos(
            ks.network, ks.rng, until=HORIZON, controller=ctrl,
            outage_mtbf_s=0.5, outage_s=0.2,
        ).install()
        ks.run(until=HORIZON + 2.0)
        assert injector.events
        kinds = [e.kind for e in injector.events]
        assert kinds[0] == "ctrl-down"
        for first, second in zip(kinds, kinds[1:]):
            assert first != second
        # Every outage ends: the controller is reachable at quiesce.
        assert ctrl.reachable
        assert ctrl.toggles[0] is False

    def test_requires_set_reachable(self):
        ks = _sim()
        with pytest.raises(ValueError, match="set_reachable"):
            ControllerOutageChaos(ks.network, ks.rng, until=1.0,
                                  controller=object())
