"""Property suite: decision-by-decision engine equivalence.

Hypothesis draws random topologies, strategies and failure schedules;
for every draw the three epoch engines must agree on each packet's
output ports, per-hop deflected flags and final fate, and on every
switch's RNG stream position — not merely on aggregate counters.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.shard import partition, run_epoch_sharded
from repro.sim.vector import (
    build_workload,
    run_epoch_reference,
    run_epoch_vector,
    synthetic_spec,
)

specs = st.builds(
    synthetic_spec,
    num_switches=st.integers(min_value=4, max_value=9),
    extra_links=st.integers(min_value=0, max_value=4),
    min_switch_id=st.sampled_from([17, 23, 29]),
    seed=st.integers(min_value=0, max_value=2**16),
    strategy=st.sampled_from(["none", "hp", "avp", "nip"]),
    flows=st.integers(min_value=1, max_value=4),
    ttl=st.integers(min_value=4, max_value=32),
    inject_per_epoch=st.integers(min_value=1, max_value=3),
    inject_epochs=st.integers(min_value=1, max_value=4),
    link_failures=st.integers(min_value=0, max_value=2),
    fail_epoch=st.integers(min_value=0, max_value=4),
    repair_epoch=st.one_of(
        st.none(), st.integers(min_value=1, max_value=12)
    ),
)


@settings(max_examples=15, deadline=None)
@given(spec=specs)
def test_vector_reproduces_reference_decisions(spec):
    wl = build_workload(spec)
    ref = run_epoch_reference(wl, trace=True)
    vec = run_epoch_vector(wl, trace=True)
    assert vec.record == ref.record
    assert vec.traces == ref.traces  # ports + per-hop deflected flags
    assert vec.fates == ref.fates
    assert (
        vec.record["rng_fingerprint"] == ref.record["rng_fingerprint"]
    )  # identical stream positions on every switch


@settings(max_examples=10, deadline=None)
@given(spec=specs, shards=st.integers(min_value=1, max_value=3))
def test_sharded_reproduces_reference_decisions(spec, shards):
    wl = build_workload(spec)
    shards = min(shards, len(wl.topo.core_indices))
    ref = run_epoch_reference(wl, trace=True)
    shd = run_epoch_sharded(wl, shards=shards, trace=True)
    assert shd.record == ref.record
    assert shd.traces == ref.traces
    assert shd.fates == ref.fates


@settings(max_examples=10, deadline=None)
@given(spec=specs, shards=st.integers(min_value=1, max_value=4))
def test_shard_boundaries_conserve_packets(spec, shards):
    # Reuses the same conservation identity sim/invariants.py enforces
    # for the DES engine: nothing lost or duplicated at any boundary.
    wl = build_workload(spec)
    shards = min(shards, len(wl.topo.core_indices))
    r = run_epoch_sharded(wl, shards=shards).record
    assert r["injected"] == wl.injected_total
    assert r["injected"] == (
        r["delivered"]
        + sum(r["misdelivered"].values())
        + sum(r["drop_reasons"].values())
        + r["live_at_end"]
    )
    assert sum(c[0] for c in r["switches"].values()) == r["hops"]


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    shards=st.integers(min_value=1, max_value=8),
)
def test_partition_covers_exactly(n, shards):
    indices = list(range(100, 100 + n))
    if shards > n:
        shards = n
    blocks = partition(indices, shards)
    assert [u for b in blocks for u in b] == indices
    sizes = [len(b) for b in blocks]
    assert max(sizes) - min(sizes) <= 1
