"""Tests for seeded named RNG streams."""

from repro.sim import RngRegistry


class TestRngRegistry:
    def test_same_name_same_stream(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_reproducible_across_registries(self):
        a = RngRegistry(42).stream("deflect:SW7")
        b = RngRegistry(42).stream("deflect:SW7")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_independent(self):
        reg = RngRegistry(42)
        s1 = [reg.stream("x").random() for _ in range(5)]
        reg2 = RngRegistry(42)
        # Drawing from another stream first must not perturb "x".
        reg2.stream("y").random()
        s2 = [reg2.stream("x").random() for _ in range(5)]
        assert s1 == s2

    def test_different_names_differ(self):
        reg = RngRegistry(0)
        assert reg.stream("a").random() != reg.stream("b").random()

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(2).stream("x").random()
        assert a != b

    def test_spawn_derives_new_seed(self):
        root = RngRegistry(7)
        child1 = root.spawn(1)
        child2 = root.spawn(2)
        assert child1.root_seed != child2.root_seed
        assert child1.stream("x").random() != child2.stream("x").random()
