"""Tests for link serialization, queueing, propagation and failure."""

import pytest

from repro.sim import Link, Packet, Simulator
from repro.sim.node import Node


class Recorder(Node):
    """Test node that records arrivals."""

    def __init__(self, name, sim, num_ports=1):
        super().__init__(name, sim, num_ports)
        self.received = []

    def receive(self, packet, in_port):
        self.received.append((self.sim.now, packet, in_port))


@pytest.fixture
def pair():
    sim = Simulator()
    a = Recorder("A", sim)
    b = Recorder("B", sim)
    # 8 Mbit/s -> a 1000-byte packet serializes in 1 ms; 2 ms propagation.
    link = Link(sim, a, 0, b, 0, rate_mbps=8.0, delay_s=0.002, queue_packets=2)
    return sim, a, b, link


def _pkt(size=1000):
    return Packet(src_host="ha", dst_host="hb", size_bytes=size)


class TestDelivery:
    def test_serialization_plus_propagation(self, pair):
        sim, a, b, link = pair
        assert a.send(0, _pkt()) is True
        sim.run()
        assert len(b.received) == 1
        # 1 ms serialization + 2 ms propagation.
        assert b.received[0][0] == pytest.approx(0.003)
        assert b.received[0][2] == 0

    def test_bidirectional(self, pair):
        sim, a, b, link = pair
        a.send(0, _pkt())
        b.send(0, _pkt())
        sim.run()
        assert len(a.received) == 1 and len(b.received) == 1

    def test_back_to_back_serialize(self, pair):
        sim, a, b, link = pair
        a.send(0, _pkt())
        a.send(0, _pkt())
        sim.run()
        times = [t for t, _, _ in b.received]
        assert times == [pytest.approx(0.003), pytest.approx(0.004)]

    def test_pipelining_under_propagation(self, pair):
        # Propagation (2 ms) exceeds serialization (1 ms): packets overlap
        # on the wire and arrive 1 ms apart.
        sim, a, b, link = pair
        for _ in range(3):
            a.send(0, _pkt())
        sim.run()
        arrive = [t for t, _, _ in b.received]
        assert arrive == [pytest.approx(0.003), pytest.approx(0.004),
                          pytest.approx(0.005)]


class TestQueueing:
    def test_queue_overflow_drops(self, pair):
        sim, a, b, link = pair
        # 1 transmitting + 2 queued fit; the 4th and 5th drop.
        results = [a.send(0, _pkt()) for _ in range(5)]
        assert results == [True, True, True, False, False]
        sim.run()
        assert len(b.received) == 3
        assert link.stats_ab.queue_drops == 2

    def test_stats_counters(self, pair):
        sim, a, b, link = pair
        a.send(0, _pkt())
        sim.run()
        assert link.stats_ab.tx_packets == 1
        assert link.stats_ab.tx_bytes == 1000
        assert link.stats_ab.delivered_packets == 1
        assert link.stats_ba.tx_packets == 0


class TestFailure:
    def test_down_link_refuses_packets(self, pair):
        sim, a, b, link = pair
        link.set_up(False)
        assert a.send(0, _pkt()) is False
        sim.run()
        assert b.received == []
        assert link.stats_ab.failure_drops == 1

    def test_down_drops_queued_and_inflight(self, pair):
        sim, a, b, link = pair
        for _ in range(3):
            a.send(0, _pkt())
        # Fail mid-transfer: first packet is mid-flight at 1.5 ms.
        sim.schedule(0.0015, link.set_up, False)
        sim.run()
        assert b.received == []

    def test_repair_restores_service(self, pair):
        sim, a, b, link = pair
        link.set_up(False)
        link.set_up(True)
        a.send(0, _pkt())
        sim.run()
        assert len(b.received) == 1

    def test_endpoints_notified(self, pair):
        sim, a, b, link = pair
        events = []
        a.on_link_state = lambda port, up: events.append(("A", port, up))
        b.on_link_state = lambda port, up: events.append(("B", port, up))
        link.set_up(False)
        assert ("A", 0, False) in events and ("B", 0, False) in events

    def test_port_up_reflects_state(self, pair):
        sim, a, b, link = pair
        assert a.port_up(0)
        link.set_up(False)
        assert not a.port_up(0)
        assert a.healthy_ports() == ()

    def test_set_up_idempotent(self, pair):
        sim, a, b, link = pair
        link.set_up(True)  # already up: no-op
        link.set_up(False)
        link.set_up(False)
        assert not link.up


class TestNodeWiring:
    def test_double_attach_rejected(self, pair):
        sim, a, b, link = pair
        with pytest.raises(Exception, match="already attached"):
            Link(sim, a, 0, b, 0)

    def test_send_on_uncabled_port(self):
        sim = Simulator()
        lone = Recorder("L", sim, num_ports=2)
        assert lone.send(1, _pkt()) is False

    def test_peer_name(self, pair):
        sim, a, b, link = pair
        assert a.peer_name(0) == "B"
        assert b.peer_name(0) == "A"
