"""Sharded epoch engine: partitioning, digest gates, conservation.

The sharded runner must be indistinguishable (record, traces, fates)
from the single-core engines, and every epoch-barrier handoff must be
integrity-checked — a tampered batch is rejected, never silently
forwarded.
"""

import pytest

from repro.sim.invariants import InvariantChecker
from repro.sim.shard import (
    HandoffError,
    ShardRunner,
    batch_to_rows,
    handoff_digest,
    partition,
    rows_to_batch,
    run_epoch_sharded,
)
from repro.sim.vector import (
    build_workload,
    iter_injections,
    run_epoch_reference,
    run_epoch_vector,
    synthetic_spec,
)


def small_spec(strategy="nip", seed=5, **overrides):
    base = dict(
        num_switches=7, extra_links=2, min_switch_id=23, seed=seed,
        strategy=strategy, flows=3, ttl=24, inject_per_epoch=2,
        inject_epochs=4, link_failures=1, fail_epoch=2, repair_epoch=5,
    )
    base.update(overrides)
    return synthetic_spec(**base)


class TestPartition:
    def test_blocks_are_contiguous_and_cover(self):
        indices = list(range(10, 21))
        blocks = partition(indices, 3)
        assert [u for b in blocks for u in b] == indices
        assert len(blocks) == 3
        assert all(len(b) >= 1 for b in blocks)

    def test_sizes_balanced(self):
        blocks = partition(list(range(10)), 3)
        sizes = sorted(len(b) for b in blocks)
        assert max(sizes) - min(sizes) <= 1

    def test_too_many_shards_rejected(self):
        with pytest.raises(ValueError):
            partition([1, 2], 3)
        with pytest.raises(ValueError):
            partition([1, 2], 0)


class TestHandoffRows:
    def test_rows_round_trip(self):
        wl = build_workload(small_spec())
        from repro.sim.vector import injection_batch

        batch = injection_batch(wl, iter_injections(wl, 0))
        rows = batch_to_rows(batch)
        back = rows_to_batch(rows)
        assert batch_to_rows(back) == rows
        assert handoff_digest(rows) == handoff_digest(batch_to_rows(back))

    def test_digest_sensitive_to_order_and_content(self):
        rows = [[0, 5, False, 2, 1, 7], [1, 5, True, 3, 0, 8]]
        assert handoff_digest(rows) != handoff_digest(rows[::-1])
        tampered = [list(r) for r in rows]
        tampered[0][1] -= 1
        assert handoff_digest(rows) != handoff_digest(tampered)


class TestDigestGate:
    def test_tampered_handoff_rejected(self):
        wl = build_workload(small_spec())
        blocks = partition(wl.topo.core_indices, 2)
        runner = ShardRunner(wl, 0, blocks)
        rows = [[0, 10, False, int(blocks[0][0]), 0, 99]]
        good = handoff_digest(rows)
        rows[0][1] = 9  # TTL mutated in transit
        with pytest.raises(HandoffError, match="digest mismatch"):
            runner.step((), (), [(rows, good)])

    def test_clean_handoff_accepted_and_counted(self):
        wl = build_workload(small_spec())
        blocks = partition(wl.topo.core_indices, 2)
        runner = ShardRunner(wl, 0, blocks)
        owned = set(blocks[0])
        mine = [
            (uid, f) for uid, f in iter_injections(wl, 0)
            if wl.flows[f].ingress in owned
        ]
        out = runner.step((), mine, [([], handoff_digest([]))])
        assert runner.handoff_checks == 1
        assert set(out) == {0, 1}
        for rows, digest in out.values():
            assert handoff_digest(rows) == digest


class TestShardedEquality:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_record_matches_reference(self, shards):
        wl = build_workload(small_spec(strategy="hp"))
        ref = run_epoch_reference(wl)
        shd = run_epoch_sharded(wl, shards=shards)
        assert shd.record == ref.record
        assert shd.meta["shards"] == shards
        assert shd.meta["handoff_checks"] > 0

    @pytest.mark.parametrize("strategy", ["none", "avp", "nip"])
    def test_all_strategies_match_vector(self, strategy):
        wl = build_workload(small_spec(strategy=strategy))
        assert (
            run_epoch_sharded(wl, shards=2).record
            == run_epoch_vector(wl).record
        )

    def test_traces_and_fates_match_reference(self):
        wl = build_workload(small_spec(strategy="nip"))
        ref = run_epoch_reference(wl, trace=True)
        shd = run_epoch_sharded(wl, shards=2, trace=True)
        assert shd.fates == ref.fates
        assert shd.traces == ref.traces

    def test_spawn_workers_match_in_process(self):
        wl = build_workload(
            small_spec(flows=2, inject_epochs=2, ttl=12)
        )
        local = run_epoch_sharded(wl, shards=2, processes=False)
        procs = run_epoch_sharded(wl, shards=2, processes=True)
        assert procs.record == local.record
        assert procs.meta["processes"] is True


class TestConservation:
    def test_reference_engine_conserves_packets(self):
        wl = build_workload(small_spec(strategy="nip"))
        inv = InvariantChecker(strict=True, forbid_return_to_sender=True)
        ref = run_epoch_reference(wl, invariants=inv)
        assert inv.injected == ref.record["injected"]
        inv.check_conservation(0.0, expect_in_flight=ref.record["live_at_end"])
        assert inv.violations == []

    def test_sharded_totals_conserve(self):
        # Cross-shard handoffs must neither drop nor duplicate packets:
        # every injection ends delivered, misdelivered, dropped, or live.
        wl = build_workload(small_spec(strategy="hp", link_failures=2))
        r = run_epoch_sharded(wl, shards=3).record
        assert r["injected"] == wl.injected_total
        assert r["injected"] == (
            r["delivered"]
            + sum(r["misdelivered"].values())
            + sum(r["drop_reasons"].values())
            + r["live_at_end"]
        )
