"""Tests for link/network monitors."""

import pytest

from repro.runner import KarSimulation
from repro.sim.monitors import InvariantSampler, LinkMonitor, NetworkMonitor
from repro.topology import PARTIAL, fifteen_node


class TestNetworkMonitor:
    def test_deflection_shifts_traffic_to_protection_links(self):
        ks = KarSimulation(
            fifteen_node(rate_mbps=20.0, delay_s=0.0002),
            deflection="nip", protection=PARTIAL, seed=7,
        )
        monitor = NetworkMonitor(ks.network, interval_s=0.25,
                                 links=[("SW7", "SW13"), ("SW11", "SW23"),
                                        ("SW7", "SW11"), ("SW7", "SW9")])
        monitor.start()
        ks.schedule_failure("SW7", "SW13", at=1.0, repair_at=3.0)
        src, sink = ks.add_udp_probe(rate_pps=500, duration_s=3.5)
        src.start(at=0.5)
        ks.run(until=4.5)

        primary = monitor.monitor("SW7", "SW13")
        protection = monitor.monitor("SW11", "SW23")

        # Before the failure the primary link carries the probe...
        pre = [s for s in primary.samples if s.time <= 1.0]
        assert max(s.mbps_ab + s.mbps_ba for s in pre) > 1.0
        # ...during the failure it carries nothing...
        mid = [s for s in primary.samples if 1.3 < s.time <= 3.0]
        assert max((s.mbps_ab + s.mbps_ba for s in mid), default=0.0) < 0.1
        # ...and the partial-protection branch lights up instead.
        prot_mid = [s for s in protection.samples if 1.3 < s.time <= 3.0]
        assert max(s.mbps_ab + s.mbps_ba for s in prot_mid) > 0.5

    def test_busiest_links_ranking(self):
        ks = KarSimulation(
            fifteen_node(rate_mbps=20.0, delay_s=0.0002),
            deflection="nip", protection=PARTIAL, seed=7,
        )
        monitor = NetworkMonitor(ks.network, interval_s=0.5)
        monitor.start()
        src, sink = ks.add_udp_probe(rate_pps=400, duration_s=2.0)
        src.start()
        ks.run(until=3.0)
        busiest = monitor.busiest_links(top=6)
        assert len(busiest) == 6
        values = [v for _, v in busiest]
        assert values == sorted(values, reverse=True)
        # The primary-route links must be among the busiest.
        names = [set(name) for name, _ in busiest]
        assert {"SW10", "SW7"} in names or {"SW7", "SW13"} in names

    def test_queue_drop_accounting(self):
        ks = KarSimulation(
            fifteen_node(rate_mbps=5.0, delay_s=0.0002),
            deflection="nip", protection=PARTIAL, seed=7,
        )
        monitor = NetworkMonitor(ks.network, interval_s=0.25)
        monitor.start()
        # Overdrive a 5 Mbit/s path with an 11 Mbit/s probe.
        src, sink = ks.add_udp_probe(rate_pps=1000, duration_s=1.0)
        src.start()
        ks.run(until=2.0)
        assert monitor.total_queue_drops() > 0
        assert sink.received < src.sent

    def test_interval_drop_deltas_sum_to_cumulative(self):
        # drops_ab/drops_ba are per-interval deltas: summing them over
        # a monitor's samples must equal the cumulative counters, never
        # double-count (the bug the per-interval fields replaced), and
        # the cumulative fields must be non-decreasing.
        ks = KarSimulation(
            fifteen_node(rate_mbps=5.0, delay_s=0.0002),
            deflection="nip", protection=PARTIAL, seed=7,
        )
        monitor = NetworkMonitor(ks.network, interval_s=0.25)
        monitor.start()
        src, sink = ks.add_udp_probe(rate_pps=1000, duration_s=1.0)
        src.start()
        ks.run(until=2.0)

        saw_dropping_link = False
        for m in monitor.monitors.values():
            total_ab = sum(s.drops_ab for s in m.samples)
            total_ba = sum(s.drops_ba for s in m.samples)
            assert (total_ab, total_ba) == m.cumulative_drops()
            cum = [s.cum_drops for s in m.samples]
            assert cum == sorted(cum)
            assert all(s.drops_ab >= 0 and s.drops_ba >= 0
                       for s in m.samples)
            if total_ab + total_ba > 0:
                saw_dropping_link = True
                # At least one interval actually localizes the drops.
                assert any(s.drops_ab > 0 or s.drops_ba > 0
                           for s in m.samples)
        assert saw_dropping_link

    def test_link_stats_match_monitor_totals(self):
        ks = KarSimulation(
            fifteen_node(rate_mbps=5.0, delay_s=0.0002),
            deflection="nip", protection=PARTIAL, seed=7,
        )
        monitor = NetworkMonitor(ks.network, interval_s=0.25)
        monitor.start()
        src, sink = ks.add_udp_probe(rate_pps=1000, duration_s=1.0)
        src.start()
        ks.run(until=2.0)
        truth = 0
        for a, b in ks.network.links():
            link = ks.network.link_between(a, b)
            truth += link.stats_ab.queue_drops + link.stats_ba.queue_drops
        assert monitor.total_queue_drops() == truth


class TestLinkMonitor:
    def test_validation(self):
        ks = KarSimulation(fifteen_node(), seed=0)
        link = ks.network.link_between("SW7", "SW13")
        with pytest.raises(ValueError):
            LinkMonitor(link, ("SW7", "SW13"), interval_s=0)

    def test_idle_link_reports_zero(self):
        ks = KarSimulation(fifteen_node(), seed=0,
                           install_primary_flow=False)
        monitor = NetworkMonitor(ks.network, interval_s=0.5,
                                 links=[("SW43", "SW47")])
        monitor.start()
        ks.run(until=2.0)
        m = monitor.monitor("SW43", "SW47")
        assert m.peak_mbps() == 0.0
        assert m.peak_queue() == 0


class TestInvariantSampler:
    def test_validation(self):
        ks = KarSimulation(fifteen_node(), seed=0, invariants=True)
        with pytest.raises(ValueError):
            InvariantSampler(ks.network, ks.invariants, interval_s=0)

    def test_samples_track_chaos_and_health(self):
        ks = KarSimulation(fifteen_node(), deflection="nip",
                           protection=PARTIAL, seed=42, invariants=True)
        ks.add_chaos("mtbf", until=2.0, mtbf_s=0.5, mttr_s=0.3)
        sampler = InvariantSampler(ks.network, ks.invariants,
                                   interval_s=0.25)
        sampler.start()
        src, sink = ks.add_udp_probe(rate_pps=200, duration_s=2.0)
        src.start(at=0.1)
        ks.run(until=4.0)
        assert sampler.samples
        assert sampler.peak_links_down() >= 1
        assert sampler.peak_in_flight() >= 0
        last = sampler.samples[-1]
        assert last.injected == src.sent
        assert last.delivered + last.dropped + last.in_flight == last.injected
