"""Tests for the KarSimulation facade API."""

import pytest

from repro import FULL, PARTIAL, UNPROTECTED, KarSimulation, fifteen_node, six_node
from repro.switches.deflection import NotInputPort


class TestConstruction:
    def test_strategy_object_accepted(self):
        ks = KarSimulation(six_node(), deflection=NotInputPort(), seed=0)
        assert ks.strategy.name == "nip"

    def test_unknown_strategy_name(self):
        with pytest.raises(ValueError):
            KarSimulation(six_node(), deflection="teleport", seed=0)

    def test_unknown_protection_level(self):
        with pytest.raises(Exception, match="protection level"):
            KarSimulation(six_node(), protection="mega", seed=0)

    def test_primary_flow_optional(self):
        ks = KarSimulation(six_node(), seed=0, install_primary_flow=False)
        assert ks.primary_forward is None
        ingress = ks.network.node("E-S")
        assert ingress.ingress_entry("D") is None

    def test_every_core_switch_built_with_strategy(self):
        ks = KarSimulation(fifteen_node(), deflection="avp", seed=0)
        from repro.switches import KarSwitch

        switches = [n for n in ks.network.nodes.values()
                    if isinstance(n, KarSwitch)]
        assert len(switches) == 15
        assert all(sw.strategy.name == "avp" for sw in switches)

    def test_ttl_propagates_to_entries(self):
        ks = KarSimulation(six_node(), seed=0, ttl=17)
        entry = ks.network.node("E-S").ingress_entry("D")
        assert entry.ttl == 17


class TestFlows:
    def test_host_accessor_type_checks(self):
        ks = KarSimulation(six_node(), seed=0)
        assert ks.host("S").name == "S"
        with pytest.raises(TypeError):
            ks.host("SW4")

    def test_install_flow_arbitrary_pair(self):
        ks = KarSimulation(fifteen_node(), seed=0)
        fwd, rev = ks.install_flow("H-AS2", "H-AS1")
        assert fwd.route_id >= 0 and rev.route_id >= 0
        egress = ks.network.node("E-AS2")
        assert egress.ingress_entry("H-AS1") is not None

    def test_add_iperf_default_pair_uses_protection(self):
        ks = KarSimulation(fifteen_node(), protection=FULL, seed=0)
        # Protected forward route encodes 10 switches (Table 1).
        assert len(ks.primary_forward.hops) == 10

    def test_flow_ids_unique(self):
        ks = KarSimulation(fifteen_node(), seed=0)
        f1 = ks.add_iperf()
        f2 = ks.add_iperf(src_host="H-AS2", dst_host="H-AS3")
        assert f1.flow_id != f2.flow_id

    def test_udp_probe_custom_pair(self):
        ks = KarSimulation(fifteen_node(), seed=0)
        src, sink = ks.add_udp_probe(rate_pps=100, duration_s=0.2,
                                     src_host="H-AS2", dst_host="H-AS3")
        src.start()
        ks.run(until=1.0)
        assert sink.received == src.sent


class TestProtectionLevels:
    @pytest.mark.parametrize("level,count", [
        (UNPROTECTED, 4), (PARTIAL, 7), (FULL, 10),
    ])
    def test_encoded_switch_counts_match_table1(self, level, count):
        ks = KarSimulation(fifteen_node(), protection=level, seed=0)
        assert len(ks.primary_forward.hops) == count
