"""Pseudocode transcriptions vs the real strategy implementations.

The strategy oracle samples this space randomly; these tests sweep it
*exhaustively* for small switches — every up-set, input port, computed
port (including out-of-range) and deflected flag for 2..4 ports — so
any semantic gap between :mod:`repro.verify.pseudocode` and
:mod:`repro.switches.deflection` fails deterministically here.
"""

import itertools
import random

import pytest

from repro.sim.packet import KarHeader, Packet
from repro.switches.deflection import STRATEGY_NAMES, strategy_by_name
from repro.verify.pseudocode import PSEUDOCODE


class PortView:
    def __init__(self, num_ports, up):
        self.num_ports = num_ports
        self._up = frozenset(up)

    def port_up(self, port):
        return port in self._up

    def healthy_ports(self):
        return tuple(p for p in range(self.num_ports) if p in self._up)


def _pkt(deflected):
    return Packet(
        src_host="H-SRC", dst_host="H-DST", size_bytes=100,
        kar=KarHeader(route_id=1, deflected=deflected, ttl=32),
    )


def _small_states():
    """Every (num_ports, up, in_port, computed, deflected) for n<=4."""
    for num_ports in (2, 3, 4):
        ports = range(num_ports)
        for r in range(num_ports + 1):
            for up in itertools.combinations(ports, r):
                for in_port in ports:
                    for computed in range(num_ports + 2):
                        for deflected in (False, True):
                            yield num_ports, up, in_port, computed, deflected


class TestPseudocodeRegistry:
    def test_covers_every_strategy(self):
        assert tuple(sorted(PSEUDOCODE)) == tuple(sorted(STRATEGY_NAMES))


@pytest.mark.parametrize("name", STRATEGY_NAMES)
class TestExhaustiveAgreement:
    def test_select_port_matches_pseudocode(self, name):
        impl = strategy_by_name(name)
        spec = PSEUDOCODE[name]
        for num_ports, up, in_port, computed, deflected in _small_states():
            rng_spec = random.Random(99)
            want = spec(
                num_ports, frozenset(up), in_port, computed, deflected,
                rng_spec,
            )
            rng_impl = random.Random(99)
            decision = impl.select_port(
                PortView(num_ports, up), _pkt(deflected), in_port,
                computed, rng_impl,
            )
            state = (num_ports, up, in_port, computed, deflected)
            assert (decision.port, decision.deflected) == want, state
            assert rng_impl.getstate() == rng_spec.getstate(), state

    def test_fast_split_matches_pseudocode(self, name):
        impl = strategy_by_name(name)
        spec = PSEUDOCODE[name]
        for num_ports, up, in_port, computed, deflected in _small_states():
            rng_spec = random.Random(7)
            want = spec(
                num_ports, frozenset(up), in_port, computed, deflected,
                rng_spec,
            )
            view = PortView(num_ports, up)
            packet = _pkt(deflected)
            rng_fast = random.Random(7)
            hit = impl.fast_port(view, packet, in_port, computed)
            if hit is not None:
                got = (hit, False)
            else:
                got = impl.fast_fallback(
                    view, packet, in_port, computed, rng_fast
                )
            state = (num_ports, up, in_port, computed, deflected)
            assert got == want, state
            assert rng_fast.getstate() == rng_spec.getstate(), state


class TestAlgorithmOneSpecifics:
    """Pin the Algorithm 1 lines the NIP transcription encodes."""

    def test_computed_equal_input_forces_repick(self):
        want = PSEUDOCODE["nip"](3, {0, 1, 2}, 2, 2, False, random.Random(1))
        assert want[1] is True and want[0] != 2

    def test_random_candidates_exclude_input(self):
        # Only non-input healthy port left: the draw is forced.
        port, deflected = PSEUDOCODE["nip"](
            3, {0, 2}, 0, 1, False, random.Random(1)
        )
        assert (port, deflected) == (2, True)

    def test_empty_candidate_set_drops(self):
        assert PSEUDOCODE["nip"](
            2, {1}, 1, 0, False, random.Random(1)
        ) == (None, False)
