"""Divergence artifacts, including the harness's acceptance story:
an injected strategy mutation is caught, shrunk to a minimal case, and
the written artifact replays the divergence on a fresh load."""

import json

import pytest

from repro.verify.artifact import (
    ARTIFACT_FORMAT,
    artifact_record,
    load_artifact,
    replay_artifact,
    write_artifact,
)
from repro.verify.cases import FuzzCase, generate_case
from repro.verify.oracles import check_strategy
from repro.verify.shrink import shrink_case

from tests.verify.test_oracles import SMALL_CASE, BrokenNip


class TestArtifactRecord:
    def test_minimal_record(self):
        case = generate_case(1)
        rec = artifact_record("wire", case, ["detail-1"])
        assert rec["format"] == ARTIFACT_FORMAT
        assert rec["oracle"] == "wire"
        assert FuzzCase.from_record(rec["case"]) == case
        assert rec["details"] == ["detail-1"]
        assert "unshrunk_case" not in rec

    def test_unshrunk_case_included_when_different(self):
        case = generate_case(1)
        shrunk = case.with_(ttl=4)
        rec = artifact_record("wire", shrunk, [], original_case=case)
        assert FuzzCase.from_record(rec["unshrunk_case"]) == case

    def test_unshrunk_case_omitted_when_identical(self):
        case = generate_case(1)
        rec = artifact_record("wire", case, [], original_case=case)
        assert "unshrunk_case" not in rec


class TestReadWrite:
    def test_round_trip(self, tmp_path):
        rec = artifact_record("strategy", generate_case(2), ["d"])
        path = write_artifact(str(tmp_path / "deep" / "a.json"), rec)
        assert load_artifact(path) == rec

    def test_file_is_canonical_json(self, tmp_path):
        rec = artifact_record("strategy", generate_case(2), [])
        path = write_artifact(str(tmp_path / "a.json"), rec)
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        assert text.endswith("\n")
        assert json.loads(text) == rec

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99, "oracle": "wire",
                                    "case": {}}))
        with pytest.raises(ValueError, match="unsupported artifact format"):
            load_artifact(str(path))

    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": ARTIFACT_FORMAT,
                                    "oracle": "wire"}))
        with pytest.raises(ValueError, match="missing 'case'"):
            load_artifact(str(path))

    def test_replay_clean_case_is_ok(self, tmp_path):
        rec = artifact_record("strategy", SMALL_CASE, [])
        path = write_artifact(str(tmp_path / "a.json"), rec)
        assert replay_artifact(load_artifact(path)).ok


class TestInjectedMutationEndToEnd:
    """ISSUE acceptance: a broken strategy subclass is caught, shrunk
    to a minimal case, and the JSON artifact replays the divergence."""

    def test_caught_shrunk_archived_and_replayed(self, tmp_path):
        broken = BrokenNip()

        # 1. The mutation is caught on a stock fuzz case.
        case = SMALL_CASE
        first = check_strategy(case, strategy=broken)
        assert not first.ok

        # 2. Shrinking keeps the divergence while minimizing the case.
        def still_fails(candidate):
            return bool(
                check_strategy(candidate, strategy=broken).divergences
            )

        shrunk = shrink_case(case, still_fails, budget=120)
        assert still_fails(shrunk)
        # The strategy oracle ignores topology/traffic, so the shrinker
        # must have ground those fields down to their floors.
        assert shrunk.num_switches < case.num_switches
        assert shrunk.ttl == 4
        assert shrunk.rate_pps == 5.0

        # 3. The divergence round-trips through a JSON artifact file.
        details = [
            d.detail
            for d in check_strategy(shrunk, strategy=broken).divergences
        ]
        rec = artifact_record("strategy", shrunk, details,
                              original_case=case)
        path = write_artifact(str(tmp_path / "repro.json"), rec)
        loaded = load_artifact(path)
        assert FuzzCase.from_record(loaded["case"]) == shrunk
        assert FuzzCase.from_record(loaded["unshrunk_case"]) == case
        assert loaded["details"]

        # 4. Replaying with the mutation injected still diverges ...
        replayed = replay_artifact(loaded, strategy=broken)
        assert not replayed.ok
        assert any(
            "disagrees with pseudocode" in d.detail
            for d in replayed.divergences
        )
        # ... and without it (the fixed code) the same artifact is clean.
        assert replay_artifact(loaded).ok
