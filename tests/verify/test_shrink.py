"""The greedy shrinker, driven by synthetic predicates."""

from repro.verify.cases import FuzzCase, case_is_buildable, generate_case
from repro.verify.shrink import shrink_case


def _base_case(**overrides):
    fields = dict(
        seed=12, num_switches=8, extra_links=3, min_switch_id=79,
        id_strategy="prime", strategy="nip", ttl=64, rate_pps=120.0,
        traffic_s=0.4, failures=(),
    )
    fields.update(overrides)
    return FuzzCase(**fields)


class TestShrinkCase:
    def test_ttl_shrinks_to_predicate_threshold(self):
        case = _base_case()
        shrunk = shrink_case(case, lambda c: c.ttl >= 8)
        assert shrunk.ttl == 8  # 64 -> 32 -> 16 -> 8; 4 no longer fails

    def test_always_failing_case_reaches_the_floor(self):
        shrunk = shrink_case(_base_case(), lambda c: True, budget=200)
        assert shrunk.num_switches == 3
        assert shrunk.extra_links == 0
        assert shrunk.min_switch_id == 11
        assert shrunk.ttl == 4
        assert shrunk.rate_pps == 5.0
        assert shrunk.traffic_s == 0.05

    def test_never_failing_candidates_leave_case_unchanged(self):
        case = _base_case()
        assert shrink_case(case, lambda c: False) == case

    def test_zero_budget_returns_input(self):
        case = _base_case()
        calls = []
        shrunk = shrink_case(case, lambda c: calls.append(c) or True,
                             budget=0)
        assert shrunk == case
        assert calls == []  # predicate never consulted

    def test_predicate_exception_is_not_a_failure(self):
        case = _base_case()

        def explode(candidate):
            raise RuntimeError("oracle crashed")

        assert shrink_case(case, explode) == case

    def test_result_is_always_buildable(self):
        case = generate_case(9)
        shrunk = shrink_case(case, lambda c: True, budget=200)
        assert case_is_buildable(shrunk)

    def test_relevant_failure_is_kept(self):
        # A predicate that needs one failure: the shrinker may simplify
        # everything else but must keep a failing case failing.  Some
        # shrink steps regenerate the topology and invalidate the stored
        # link (unbuildable candidates), which exercises the skip path.
        case = generate_case(4)
        assert len(case.failures) == 1  # seed chosen for this shape
        shrunk = shrink_case(
            case, lambda c: len(c.failures) >= 1, budget=100
        )
        assert len(shrunk.failures) >= 1
        assert case_is_buildable(shrunk)

    def test_repaired_failures_simplify_to_unrepaired(self):
        case = generate_case(4)
        assert case.failures[0][3] is not None  # repaired failure
        shrunk = shrink_case(
            case, lambda c: len(c.failures) == 1, budget=100
        )
        assert all(repair is None for _, _, _, repair in shrunk.failures)
