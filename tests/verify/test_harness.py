"""The verify driver: trial records, aggregation, rendering."""

import pytest

from repro.farm.executor import FarmOptions
from repro.farm.jobs import execute_spec, verify_spec
from repro.verify.cases import FuzzCase, generate_case
from repro.verify.harness import (
    TrialDivergence,
    VerifyOutcome,
    render_verify,
    run_trial_record,
    run_verify,
    trial_seed,
)

#: Fast oracle subset for smoke runs (no simulations).
FAST_ORACLES = ("strategy", "wire")


class TestTrialSeed:
    def test_stable_across_trial_counts(self):
        # Trial 7 must mean the same case whether --trials is 25 or 100.
        assert trial_seed(3, 7) == trial_seed(3, 7)

    def test_roots_do_not_collide(self):
        seeds = {trial_seed(s, i) for s in range(4) for i in range(200)}
        assert len(seeds) == 4 * 200


class TestRunTrialRecord:
    def test_record_shape(self):
        rec = run_trial_record(5, oracles=FAST_ORACLES)
        assert rec["trial_seed"] == 5
        assert FuzzCase.from_record(rec["case"]) == generate_case(5)
        assert sorted(rec["oracles"]) == sorted(FAST_ORACLES)
        for oracle_rec in rec["oracles"].values():
            assert oracle_rec["checks"] > 0
            assert oracle_rec["divergences"] == []

    def test_matches_farm_job_kind(self):
        # The "verify" farm kind runs the same body (plus the digest).
        spec = verify_spec(5, oracles=FAST_ORACLES)
        farmed = execute_spec(spec)
        direct = run_trial_record(5, oracles=FAST_ORACLES)
        assert {k: v for k, v in farmed.items() if k != "digest"} == direct


class TestRunVerify:
    def test_smoke_clean(self, tmp_path):
        outcome = run_verify(
            trials=3, seed=0, oracles=FAST_ORACLES,
            artifact_dir=str(tmp_path / "artifacts"),
            farm=FarmOptions(jobs=1, progress=False, label="verify"),
        )
        assert outcome.ok
        assert outcome.trials == 3
        assert sorted(outcome.checks) == sorted(FAST_ORACLES)
        assert outcome.total_checks == sum(outcome.checks.values()) > 0
        # Clean runs leave no artifact directory behind.
        assert not (tmp_path / "artifacts").exists()

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="trials must be positive"):
            run_verify(trials=0)
        with pytest.raises(ValueError, match="unknown oracle"):
            run_verify(trials=1, oracles=("vibes",))


class TestRenderVerify:
    def test_clean_run(self, tmp_path):
        outcome = run_verify(
            trials=2, seed=1, oracles=FAST_ORACLES,
            artifact_dir=str(tmp_path),
            farm=FarmOptions(jobs=1, progress=False, label="verify"),
        )
        text = render_verify(outcome)
        assert "2 trials (seed 1)" in text
        assert "no divergences" in text
        for name in FAST_ORACLES:
            assert name in text

    def test_divergent_outcome(self):
        case = generate_case(8)
        outcome = VerifyOutcome(
            trials=1, seed=8, checks={"strategy": 600},
            divergences=[TrialDivergence(
                oracle="strategy",
                case=case,
                shrunk_case=case.with_(ttl=4, failures=()),
                details=("impl=1 paper=2", "impl=3 paper=4",
                         "a", "b", "c"),
                artifact_path="out/divergence.json",
            )],
        )
        text = render_verify(outcome)
        assert "1 DIVERGENT" in text
        assert "DIVERGENCE [strategy] trial seed" in text
        assert "shrunk to:" in text and "ttl 4" in text
        assert "impl=1 paper=2" in text
        assert "... and 2 more" in text  # details beyond the first 3
        assert "artifact: out/divergence.json" in text
        assert "no divergences" not in text
