"""Fuzz-case generation: determinism, records, buildability."""

import pytest

from repro.switches.deflection import STRATEGY_NAMES
from repro.topology import NodeKind
from repro.verify.cases import (
    FuzzCase,
    build_graph,
    build_scenario,
    case_is_buildable,
    generate_case,
)


class TestGenerateCase:
    def test_deterministic_in_seed(self):
        assert generate_case(17) == generate_case(17)

    def test_distinct_seeds_differ(self):
        cases = {generate_case(i) for i in range(20)}
        assert len(cases) > 1

    def test_fields_in_range(self):
        for seed in range(30):
            case = generate_case(seed)
            assert 6 <= case.num_switches <= 14
            assert 0 <= case.extra_links <= 5
            assert case.min_switch_id in (23, 41, 79)
            assert case.id_strategy in ("prime", "greedy")
            assert case.strategy in STRATEGY_NAMES
            assert case.ttl in (8, 16, 32, 64)
            assert len(case.failures) <= 3

    def test_failures_reference_real_core_links(self):
        # The draw happens against the generated topology, so every
        # stored failure link must exist between core switches.
        for seed in range(30):
            case = generate_case(seed)
            graph = build_graph(case)
            core = set(graph.node_names(NodeKind.CORE))
            for a, b, at, repair in case.failures:
                assert graph.has_link(a, b)
                assert a in core and b in core
                assert at > 0
                assert repair is None or repair > at

    def test_every_generated_case_is_buildable(self):
        for seed in range(30):
            assert case_is_buildable(generate_case(seed))


class TestRecordRoundTrip:
    def test_round_trip(self):
        case = generate_case(5)
        assert FuzzCase.from_record(case.to_record()) == case

    def test_round_trip_through_json(self):
        import json

        case = generate_case(6)
        rec = json.loads(json.dumps(case.to_record()))
        assert FuzzCase.from_record(rec) == case

    def test_with_replaces_fields(self):
        case = generate_case(7)
        other = case.with_(ttl=4, failures=())
        assert other.ttl == 4 and other.failures == ()
        assert other.num_switches == case.num_switches
        assert case.ttl != 4 or case.failures != ()  # original intact


class TestBuildScenario:
    def test_scenario_shape(self):
        scenario = build_scenario(generate_case(3))
        assert scenario.src_host == "H-SRC"
        assert scenario.dst_host == "H-DST"
        assert len(scenario.primary_route) >= 2

    def test_unknown_failure_link_rejected(self):
        case = generate_case(3).with_(
            failures=(("SW998", "SW999", 0.1, None),)
        )
        with pytest.raises(ValueError, match="not in topology"):
            build_scenario(case)
        assert not case_is_buildable(case)
