"""The four differential oracles: clean on healthy code, bookkeeping,
and the mutation-detection hook the harness self-test relies on."""

import pytest

from repro.switches.deflection import Decision, NotInputPort
from repro.verify.cases import FuzzCase, generate_case
from repro.verify.oracles import (
    ORACLE_NAMES,
    Divergence,
    OracleResult,
    check_datapaths,
    check_strategy,
    check_walk,
    check_wire,
    run_case,
    run_oracle,
)

#: A small, fast case for the simulation-backed oracles.
SMALL_CASE = FuzzCase(
    seed=2, num_switches=6, extra_links=1, min_switch_id=23,
    id_strategy="prime", strategy="nip", ttl=16, rate_pps=40.0,
    traffic_s=0.3, failures=(),
)


class BrokenNip(NotInputPort):
    """Algorithm 1 with line 5 mutated: the input port is *not*
    excluded from the random fallback candidates — the exact bug NIP
    exists to prevent.  Used to prove the strategy oracle catches a
    plausible implementation slip."""

    def select_port(self, switch, packet, in_port, computed_port, rng):
        if (
            self._computed_usable(switch, computed_port)
            and computed_port != in_port
        ):
            return Decision(port=computed_port)
        return self._random_from(switch.healthy_ports(), rng)

    def fast_fallback(self, switch, packet, in_port, computed_port, rng):
        return self._random_from_seq(switch.healthy_ports(), rng)


class TestBookkeeping:
    def test_check_counts_and_records(self):
        result = OracleResult("demo")
        assert result.check(True, lambda: "unused")
        assert not result.check(False, lambda: "boom")
        assert result.checks == 2
        assert not result.ok
        assert result.divergences == [Divergence("demo", "boom")]

    def test_to_record_round_trips_through_json(self):
        import json

        result = OracleResult("demo")
        result.check(False, lambda: "boom")
        rec = json.loads(json.dumps(result.to_record()))
        assert rec == {
            "oracle": "demo",
            "checks": 1,
            "divergences": [{"oracle": "demo", "detail": "boom"}],
        }


class TestDispatch:
    def test_oracle_names(self):
        assert ORACLE_NAMES == (
            "backend", "datapath", "encoder", "strategy", "vector",
            "walk", "wire",
        )

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            run_oracle("vibes", SMALL_CASE)

    def test_run_case_subset(self):
        results = run_case(SMALL_CASE, oracles=("strategy", "wire"))
        assert sorted(results) == ["strategy", "wire"]
        assert all(r.ok for r in results.values())


class TestOraclesCleanOnHealthyCode:
    def test_strategy_and_wire(self):
        for seed in range(4):
            case = generate_case(seed)
            assert check_strategy(case).ok, case
            assert check_wire(case).ok, case

    def test_datapath(self):
        result = check_datapaths(SMALL_CASE)
        assert result.ok, result.divergences[:3]
        assert result.checks > 5

    def test_walk(self):
        result = check_walk(SMALL_CASE)
        assert result.ok, result.divergences[:3]
        assert result.checks > 10

    def test_vector(self):
        # The epoch-model oracle: vectorized and sharded engines are
        # decision-identical to the scalar reference on a fuzz case.
        result = run_oracle("vector", SMALL_CASE)
        assert result.ok, result.divergences[:3]
        assert result.checks > 10

    def test_vector_with_failures(self):
        case = generate_case(0)
        result = run_oracle("vector", case)
        assert result.ok, result.divergences[:3]

    def test_full_generated_case(self):
        # One all-oracle pass over a generated case with failures.
        case = generate_case(0)
        results = run_case(case)
        assert all(r.ok for r in results.values()), {
            name: r.divergences[:2]
            for name, r in results.items() if not r.ok
        }


class TestMutationDetection:
    def test_broken_nip_is_caught(self):
        case = SMALL_CASE  # strategy="nip"
        result = check_strategy(case, strategy=BrokenNip())
        assert not result.ok
        assert any(
            "disagrees with pseudocode" in d.detail
            for d in result.divergences
        )

    def test_broken_nip_caught_through_run_oracle(self):
        result = run_oracle("strategy", SMALL_CASE, strategy=BrokenNip())
        assert not result.ok

    def test_strategy_override_ignored_by_other_oracles(self):
        # Injecting into a non-strategy oracle must not crash it.
        assert run_oracle("wire", SMALL_CASE, strategy=BrokenNip()).ok

    def test_rng_stream_drift_is_caught(self):
        class ExtraDraw(NotInputPort):
            """Right answer, wrong number of RNG draws."""

            def select_port(self, switch, packet, in_port, computed, rng):
                decision = super().select_port(
                    switch, packet, in_port, computed, rng
                )
                if decision.port is None:
                    rng.random()  # stray draw desyncs the stream
                return decision

        result = check_strategy(SMALL_CASE, strategy=ExtraDraw())
        assert any(
            "different RNG stream" in d.detail for d in result.divergences
        )
