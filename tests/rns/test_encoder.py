"""Unit tests for route encoding/decoding and incremental updates."""

import pytest

from repro.rns import (
    CrtError,
    DuplicateSwitchError,
    EncodedRoute,
    Hop,
    NotCoprimeError,
    RouteEncoder,
)


@pytest.fixture
def encoder():
    return RouteEncoder()


class TestHop:
    def test_valid(self):
        h = Hop(7, 2)
        assert (h.switch_id, h.port) == (7, 2)

    def test_port_must_fit_modulus(self):
        with pytest.raises(CrtError):
            Hop(7, 7)
        with pytest.raises(CrtError):
            Hop(7, -1)

    def test_bad_switch_id(self):
        with pytest.raises(CrtError):
            Hop(1, 0)


class TestEncode:
    def test_paper_route(self, encoder):
        route = encoder.encode_path([4, 7, 11], [0, 2, 0])
        assert route.route_id == 44
        assert route.modulus == 308

    def test_paper_protected_route(self, encoder):
        route = encoder.encode_path([4, 7, 11, 5], [0, 2, 0, 0])
        assert route.route_id == 660
        assert route.modulus == 1540

    def test_port_at_on_and_off_route(self, encoder):
        route = encoder.encode_path([4, 7, 11], [0, 2, 0])
        assert route.port_at(4) == 0
        assert route.port_at(7) == 2
        assert route.port_at(11) == 0
        # Off-route switches still get *a* port — pseudo-random residue.
        assert route.port_at(13) == 44 % 13

    def test_encodes_and_contains(self, encoder):
        route = encoder.encode_path([4, 7], [1, 2])
        assert route.encodes(4)
        assert 7 in route
        assert 11 not in route

    def test_residue_map(self, encoder):
        route = encoder.encode_path([4, 7, 11], [0, 2, 0])
        assert route.residue_map() == {4: 0, 7: 2, 11: 0}

    def test_duplicate_switch_rejected(self, encoder):
        with pytest.raises(DuplicateSwitchError):
            encoder.encode([Hop(7, 1), Hop(7, 2)])

    def test_length_mismatch(self, encoder):
        with pytest.raises(CrtError):
            encoder.encode_path([4, 7], [0])

    def test_not_coprime(self, encoder):
        with pytest.raises(NotCoprimeError):
            encoder.encode_path([4, 6], [0, 0])


class TestDecode:
    def test_roundtrip(self, encoder):
        switches, ports = [9, 11, 13, 29], [5, 3, 12, 17]
        route = encoder.encode_path(switches, ports)
        assert encoder.decode(route.route_id, switches) == ports

    def test_negative_route_id(self, encoder):
        with pytest.raises(CrtError):
            encoder.decode(-1, [7])


class TestIncremental:
    def test_with_hop_matches_paper(self, encoder):
        # Start from the unprotected example (R=44) and fold in the SW5
        # protection hop; must land on R=660 like the full re-encode.
        base = encoder.encode_path([4, 7, 11], [0, 2, 0])
        protected = encoder.with_hop(base, Hop(5, 0))
        assert protected.route_id == 660
        assert protected.modulus == 1540
        assert protected.encodes(5)

    def test_with_hop_preserves_existing_residues(self, encoder):
        base = encoder.encode_path([9, 11, 13], [4, 7, 2])
        extended = encoder.with_hop(base, Hop(29, 21))
        for sid, port in base.residue_map().items():
            assert extended.port_at(sid) == port
        assert extended.port_at(29) == 21

    def test_with_hop_equals_full_encode(self, encoder):
        full = encoder.encode_path([9, 11, 13, 29], [4, 7, 2, 21])
        base = encoder.encode_path([9, 11, 13], [4, 7, 2])
        inc = encoder.with_hop(base, Hop(29, 21))
        assert inc.route_id == full.route_id
        assert inc.modulus == full.modulus

    def test_with_hop_duplicate(self, encoder):
        base = encoder.encode_path([4, 7], [0, 1])
        with pytest.raises(DuplicateSwitchError):
            encoder.with_hop(base, Hop(7, 0))

    def test_with_hop_noncoprime(self, encoder):
        base = encoder.encode_path([4, 7], [0, 1])
        with pytest.raises(NotCoprimeError):
            encoder.with_hop(base, Hop(6, 0))

    def test_without_switch_reverses_with_hop(self, encoder):
        base = encoder.encode_path([4, 7, 11], [0, 2, 0])
        protected = encoder.with_hop(base, Hop(5, 0))
        stripped = encoder.without_switch(protected, 5)
        assert stripped.route_id == base.route_id
        assert stripped.modulus == base.modulus
        assert not stripped.encodes(5)

    def test_without_unknown_switch(self, encoder):
        base = encoder.encode_path([4, 7], [0, 1])
        with pytest.raises(CrtError):
            encoder.without_switch(base, 13)

    def test_without_last_hop_rejected(self, encoder):
        base = encoder.encode_path([7], [3])
        with pytest.raises(CrtError):
            encoder.without_switch(base, 7)


class TestBitLengthProperty:
    def test_paper_bit_lengths(self, encoder):
        assert encoder.encode_path([4, 7, 11], [0, 2, 0]).bit_length == 9
        assert encoder.encode_path([4, 7, 11, 5], [0, 2, 0, 0]).bit_length == 11
