"""Tests for the KAR shim-header wire codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rns.wire import (
    FIXED_HEADER_BYTES,
    WIRE_VERSION,
    WireError,
    decode_header,
    encode_header,
    header_wire_size,
)
from repro.sim.packet import KarHeader


class TestRoundTrip:
    def test_paper_route_44(self):
        header = KarHeader(route_id=44, modulus=308, ttl=64)
        data = encode_header(header)
        decoded, consumed = decode_header(data)
        assert consumed == len(data)
        assert decoded.route_id == 44
        assert decoded.ttl == 64
        assert decoded.deflected is False

    def test_deflected_flag(self):
        header = KarHeader(route_id=660, modulus=1540, deflected=True, ttl=9)
        decoded, _ = decode_header(encode_header(header))
        assert decoded.deflected is True
        assert decoded.ttl == 9

    def test_trailing_payload_untouched(self):
        header = KarHeader(route_id=44, modulus=308)
        data = encode_header(header) + b"payload-bytes"
        decoded, consumed = decode_header(data)
        assert decoded.route_id == 44
        assert data[consumed:] == b"payload-bytes"

    @given(
        route_id=st.integers(0, 2**120 - 1),
        ttl=st.integers(0, 255),
        deflected=st.booleans(),
    )
    def test_roundtrip_property(self, route_id, ttl, deflected):
        header = KarHeader(route_id=route_id, modulus=0,
                           deflected=deflected, ttl=ttl)
        decoded, consumed = decode_header(encode_header(header))
        assert decoded.route_id == route_id
        assert decoded.ttl == ttl
        assert decoded.deflected == deflected
        assert consumed == len(encode_header(header))


class TestSizing:
    def test_fixed_overhead(self):
        assert header_wire_size(2) == FIXED_HEADER_BYTES + 1

    def test_table1_sizes(self):
        # Table 1's routes: 15/28/43 bits -> 2/4/6 payload bytes.
        m4 = 10 * 7 * 13 * 29
        m7 = m4 * 11 * 23 * 31
        m10 = m7 * 17 * 37 * 41
        assert header_wire_size(m4) == FIXED_HEADER_BYTES + 2
        assert header_wire_size(m7) == FIXED_HEADER_BYTES + 4
        assert header_wire_size(m10) == FIXED_HEADER_BYTES + 6

    def test_modulus_sized_field(self):
        # Small route ID in a big-modulus route still gets the
        # modulus-sized field (the field width is per-route, not
        # per-value — switches on the path expect a fixed offset).
        header = KarHeader(route_id=1, modulus=2**40)  # 40-bit route IDs
        assert len(encode_header(header)) == FIXED_HEADER_BYTES + 5

    def test_invalid_modulus(self):
        with pytest.raises(WireError):
            header_wire_size(1)


class TestValidation:
    def test_route_id_exceeds_modulus(self):
        with pytest.raises(WireError, match="out of range"):
            encode_header(KarHeader(route_id=400, modulus=308))

    def test_negative_route_id(self):
        with pytest.raises(WireError):
            encode_header(KarHeader(route_id=-1, modulus=308))

    def test_ttl_range(self):
        with pytest.raises(WireError):
            encode_header(KarHeader(route_id=1, modulus=308, ttl=256))

    def test_truncated_fixed_part(self):
        with pytest.raises(WireError, match="truncated"):
            decode_header(b"\x10")

    def test_truncated_route_id(self):
        data = encode_header(KarHeader(route_id=44, modulus=308))
        with pytest.raises(WireError, match="truncated route ID"):
            decode_header(data[:-1])

    def test_bad_version(self):
        data = bytearray(encode_header(KarHeader(route_id=44, modulus=308)))
        data[0] = (WIRE_VERSION + 1) << 4
        with pytest.raises(WireError, match="version"):
            decode_header(bytes(data))

    def test_zero_length_field(self):
        with pytest.raises(WireError, match="zero-length"):
            decode_header(bytes([WIRE_VERSION << 4, 64, 0, 0]))
