"""Tests for the KAR shim-header wire codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rns.wire import (
    FIXED_HEADER_BYTES,
    MAX_ROUTE_ID_BYTES,
    WIRE_VERSION,
    WireError,
    decode_header,
    encode_header,
    header_wire_size,
)
from repro.sim.packet import KarHeader


class TestRoundTrip:
    def test_paper_route_44(self):
        header = KarHeader(route_id=44, modulus=308, ttl=64)
        data = encode_header(header)
        decoded, consumed = decode_header(data)
        assert consumed == len(data)
        assert decoded.route_id == 44
        assert decoded.ttl == 64
        assert decoded.deflected is False

    def test_deflected_flag(self):
        header = KarHeader(route_id=660, modulus=1540, deflected=True, ttl=9)
        decoded, _ = decode_header(encode_header(header))
        assert decoded.deflected is True
        assert decoded.ttl == 9

    def test_trailing_payload_untouched(self):
        header = KarHeader(route_id=44, modulus=308)
        data = encode_header(header) + b"payload-bytes"
        decoded, consumed = decode_header(data)
        assert decoded.route_id == 44
        assert data[consumed:] == b"payload-bytes"

    @given(
        route_id=st.integers(0, 2**120 - 1),
        ttl=st.integers(0, 255),
        deflected=st.booleans(),
    )
    def test_roundtrip_property(self, route_id, ttl, deflected):
        header = KarHeader(route_id=route_id, modulus=0,
                           deflected=deflected, ttl=ttl)
        decoded, consumed = decode_header(encode_header(header))
        assert decoded.route_id == route_id
        assert decoded.ttl == ttl
        assert decoded.deflected == deflected
        assert consumed == len(encode_header(header))


class TestSizing:
    def test_fixed_overhead(self):
        assert header_wire_size(2) == FIXED_HEADER_BYTES + 1

    def test_table1_sizes(self):
        # Table 1's routes: 15/28/43 bits -> 2/4/6 payload bytes.
        m4 = 10 * 7 * 13 * 29
        m7 = m4 * 11 * 23 * 31
        m10 = m7 * 17 * 37 * 41
        assert header_wire_size(m4) == FIXED_HEADER_BYTES + 2
        assert header_wire_size(m7) == FIXED_HEADER_BYTES + 4
        assert header_wire_size(m10) == FIXED_HEADER_BYTES + 6

    def test_canonical_minimal_field(self):
        # A small route ID in a big-modulus route gets the *canonical*
        # minimal field, not the modulus-sized worst case — the width
        # is constant along a path anyway (route IDs never change hop
        # to hop), and canonical width is what makes decode->encode
        # byte-identical.
        header = KarHeader(route_id=1, modulus=2**40)  # 40-bit route IDs
        assert len(encode_header(header)) == FIXED_HEADER_BYTES + 1

    @given(route_id=st.integers(0, 2**60 - 1))
    def test_never_exceeds_worst_case(self, route_id):
        modulus = 2**60
        header = KarHeader(route_id=route_id, modulus=modulus)
        assert len(encode_header(header)) <= header_wire_size(modulus)

    def test_invalid_modulus(self):
        with pytest.raises(WireError):
            header_wire_size(1)


class TestValidation:
    def test_route_id_exceeds_modulus(self):
        with pytest.raises(WireError, match="out of range"):
            encode_header(KarHeader(route_id=400, modulus=308))

    def test_negative_route_id(self):
        with pytest.raises(WireError):
            encode_header(KarHeader(route_id=-1, modulus=308))

    def test_ttl_range(self):
        with pytest.raises(WireError):
            encode_header(KarHeader(route_id=1, modulus=308, ttl=256))

    def test_truncated_fixed_part(self):
        with pytest.raises(WireError, match="truncated"):
            decode_header(b"\x10")

    def test_truncated_route_id(self):
        data = encode_header(KarHeader(route_id=44, modulus=308))
        with pytest.raises(WireError, match="truncated route ID"):
            decode_header(data[:-1])

    def test_bad_version(self):
        data = bytearray(encode_header(KarHeader(route_id=44, modulus=308)))
        data[0] = (WIRE_VERSION + 1) << 4
        with pytest.raises(WireError, match="version"):
            decode_header(bytes(data))

    def test_zero_length_field(self):
        with pytest.raises(WireError, match="zero-length"):
            decode_header(bytes([WIRE_VERSION << 4, 64, 0, 0]))

    def test_truncation_detected_at_every_byte_offset(self):
        data = encode_header(
            KarHeader(route_id=0xABCDEF, modulus=0, deflected=True, ttl=7)
        )
        for cut in range(len(data)):
            with pytest.raises(WireError):
                decode_header(data[:cut])

    def test_unknown_flag_bits_rejected(self):
        data = bytearray(encode_header(KarHeader(route_id=44, modulus=308)))
        data[0] |= 0x02  # a flag this version never emits
        with pytest.raises(WireError, match="unknown flag bits"):
            decode_header(bytes(data))

    def test_noncanonical_padded_field_rejected(self):
        # length=2 carrying 0x002c: encode would emit length=1, so a
        # padded field is bytes the encoder can never produce.
        data = bytes([WIRE_VERSION << 4, 64, 0, 2, 0x00, 0x2C])
        with pytest.raises(WireError, match="non-canonical"):
            decode_header(data)

    def test_zero_route_id_is_one_canonical_zero_byte(self):
        data = encode_header(KarHeader(route_id=0, modulus=0, ttl=5))
        assert data[FIXED_HEADER_BYTES - 2:] == b"\x00\x01\x00"
        decoded, consumed = decode_header(data)
        assert decoded.route_id == 0
        assert consumed == FIXED_HEADER_BYTES + 1


class TestTtlEdges:
    @pytest.mark.parametrize("ttl", [0, 1, 255])
    def test_ttl_survives_round_trip(self, ttl):
        decoded, _ = decode_header(
            encode_header(KarHeader(route_id=44, modulus=308, ttl=ttl))
        )
        assert decoded.ttl == ttl

    def test_ttl_never_negative_on_wire(self):
        with pytest.raises(WireError, match="ttl"):
            encode_header(KarHeader(route_id=1, modulus=0, ttl=-1))


class TestModulusLessHeaders:
    def test_decoded_header_reencodes_without_modulus(self):
        # Decoded headers have modulus=0 (the wire never carries it);
        # they must re-encode without any range validation tripping.
        original = encode_header(KarHeader(route_id=44, modulus=308))
        decoded, _ = decode_header(original)
        assert decoded.modulus == 0
        assert encode_header(decoded) == original


class TestLengthCap:
    def test_max_length_route_id_round_trips(self):
        route_id = (1 << (8 * MAX_ROUTE_ID_BYTES)) - 1  # all-ones field
        data = encode_header(KarHeader(route_id=route_id, modulus=0, ttl=1))
        assert len(data) == FIXED_HEADER_BYTES + MAX_ROUTE_ID_BYTES
        decoded, consumed = decode_header(data)
        assert decoded.route_id == route_id
        assert consumed == len(data)

    def test_oversized_route_id_rejected(self):
        too_big = 1 << (8 * MAX_ROUTE_ID_BYTES)
        with pytest.raises(WireError, match="16-bit length"):
            encode_header(KarHeader(route_id=too_big, modulus=0))


class TestInversePair:
    """decode accepts a byte string iff encode could have produced it,
    and then encode(decode(b)[0]) == b[:consumed] exactly."""

    @given(
        route_id=st.integers(0, 2**80 - 1),
        ttl=st.integers(0, 255),
        deflected=st.booleans(),
        trailer=st.binary(max_size=6),
    )
    def test_encode_then_decode_then_encode(self, route_id, ttl,
                                            deflected, trailer):
        data = encode_header(
            KarHeader(route_id=route_id, modulus=0,
                      deflected=deflected, ttl=ttl)
        )
        decoded, consumed = decode_header(data + trailer)
        assert consumed == len(data)
        assert encode_header(decoded) == data

    @given(data=st.binary(max_size=12))
    def test_accepted_bytes_always_reencode_to_themselves(self, data):
        try:
            header, consumed = decode_header(data)
        except WireError:
            return
        assert encode_header(header) == data[:consumed]
