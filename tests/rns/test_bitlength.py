"""Unit tests for route-ID size analysis (Eq. 9, Table 1)."""

import math

import pytest

from repro.rns import (
    bit_length_for_switches,
    bit_length_growth,
    max_hops_within_budget,
    route_id_bit_length,
)


class TestRouteIdBitLength:
    def test_matches_float_formula(self):
        # Eq. 9: ceil(log2(M - 1)) — cross-check against floating point
        # on moduli small enough for exact float logs.
        for m in range(3, 5000):
            assert route_id_bit_length(m) == math.ceil(math.log2(m - 1))

    def test_degenerate_modulus_two(self):
        assert route_id_bit_length(2) == 1

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            route_id_bit_length(1)

    def test_huge_modulus_exact(self):
        # Power-of-two boundaries where float log2 goes wrong.
        m = 2**300
        assert route_id_bit_length(m) == 300
        assert route_id_bit_length(m + 1) == 300
        assert route_id_bit_length(m + 2) == 301


class TestTableOne:
    """Table 1 of the paper, from the raw switch-ID sets."""

    def test_unprotected_row(self):
        assert bit_length_for_switches([10, 7, 13, 29]) == 15

    def test_partial_row(self):
        assert bit_length_for_switches([10, 7, 13, 29, 11, 23, 31]) == 28

    def test_full_row(self):
        assert bit_length_for_switches(
            [10, 7, 13, 29, 11, 23, 31, 17, 37, 41]
        ) == 43

    def test_six_node_examples(self):
        assert bit_length_for_switches([4, 7, 11]) == 9
        assert bit_length_for_switches([4, 7, 11, 5]) == 11


class TestGrowth:
    def test_monotone_nondecreasing(self):
        growth = bit_length_growth([10, 7, 13, 29, 11, 23, 31, 17, 37, 41])
        assert growth == sorted(growth)
        assert growth[3] == 15 and growth[6] == 28 and growth[9] == 43

    def test_empty(self):
        assert bit_length_growth([]) == []

    def test_rejects_bad_id(self):
        with pytest.raises(ValueError):
            bit_length_growth([7, 1])


class TestBudget:
    def test_exact_fit(self):
        route = [10, 7, 13, 29]
        assert max_hops_within_budget(route, budget_bits=15) == 4

    def test_partial_fit(self):
        route = [10, 7, 13, 29, 11, 23, 31]
        assert max_hops_within_budget(route, budget_bits=15) == 4
        assert max_hops_within_budget(route, budget_bits=28) == 7

    def test_nothing_fits(self):
        assert max_hops_within_budget([1000], budget_bits=5) == 0

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            max_hops_within_budget([7], budget_bits=0)
