"""Unit tests for the CRT arithmetic core."""

import math

import pytest

from repro.rns import (
    CrtError,
    NotCoprimeError,
    crt,
    egcd,
    first_noncoprime_pair,
    modular_inverse,
    pairwise_coprime,
)


class TestEgcd:
    def test_identity(self):
        g, x, y = egcd(240, 46)
        assert g == math.gcd(240, 46)
        assert 240 * x + 46 * y == g

    def test_coprime_pair(self):
        g, x, y = egcd(44, 7)
        assert g == 1
        assert 44 * x + 7 * y == 1

    def test_zero_left(self):
        assert egcd(0, 5)[0] == 5

    def test_zero_right(self):
        assert egcd(5, 0)[0] == 5

    def test_equal_values(self):
        g, x, y = egcd(12, 12)
        assert g == 12
        assert 12 * x + 12 * y == 12

    def test_large_values(self):
        a, b = 2**200 + 1, 2**100 + 1
        g, x, y = egcd(a, b)
        assert a * x + b * y == g


class TestModularInverse:
    @pytest.mark.parametrize(
        "a,mod,expected",
        [
            (77, 4, 1),   # paper, unprotected example: L_1
            (44, 7, 4),   # L_2
            (28, 11, 2),  # L_3
            (385, 4, 1),  # paper, protected example
            (220, 7, 5),
            (140, 11, 7),
            (308, 5, 2),
        ],
    )
    def test_paper_inverses(self, a, mod, expected):
        assert modular_inverse(a, mod) == expected

    def test_inverse_property(self):
        for a in range(1, 50):
            for mod in (7, 11, 13, 29):
                if math.gcd(a, mod) == 1:
                    inv = modular_inverse(a, mod)
                    assert (inv * a) % mod == 1
                    assert 0 <= inv < mod

    def test_not_coprime_raises(self):
        with pytest.raises(NotCoprimeError) as exc:
            modular_inverse(6, 4)
        assert exc.value.gcd == 2

    def test_negative_a_normalised(self):
        assert (modular_inverse(-3, 7) * -3) % 7 == 1

    def test_bad_modulus(self):
        with pytest.raises(CrtError):
            modular_inverse(3, 0)
        with pytest.raises(CrtError):
            modular_inverse(3, -5)


class TestPairwiseCoprime:
    def test_paper_pool(self):
        assert pairwise_coprime([4, 5, 7, 11])

    def test_four_is_fine_with_odd(self):
        # Paper: "Even though 4 is not a prime number, it can be used".
        assert pairwise_coprime([4, 7, 11, 9, 25])

    def test_shared_factor_detected(self):
        assert not pairwise_coprime([4, 6, 7])
        assert first_noncoprime_pair([4, 6, 7]) == (4, 6)

    def test_empty_and_singleton(self):
        assert pairwise_coprime([])
        assert pairwise_coprime([12])

    def test_first_pair_order(self):
        # Scans pairs in index order: (3,5), (3,10), (3,15) hits first.
        assert first_noncoprime_pair([3, 5, 10, 15]) == (3, 15)
        assert first_noncoprime_pair([7, 5, 10, 3]) == (5, 10)


class TestCrt:
    def test_paper_unprotected(self):
        r, m = crt([0, 2, 0], [4, 7, 11])
        assert (r, m) == (44, 308)

    def test_paper_protected(self):
        r, m = crt([0, 2, 0, 0], [4, 7, 11, 5])
        assert (r, m) == (660, 1540)

    def test_residues_recovered(self):
        residues, moduli = [1, 3, 5, 0], [4, 7, 11, 9]
        r, m = crt(residues, moduli)
        assert [r % s for s in moduli] == residues
        assert 0 <= r < m

    def test_single_congruence(self):
        assert crt([3], [7]) == (3, 7)

    def test_order_independent(self):
        # The paper's key commutativity observation (Section 2.2).
        r1, _ = crt([0, 2, 0, 0], [4, 7, 11, 5])
        r2, _ = crt([0, 0, 2, 0], [5, 4, 7, 11])
        assert r1 == r2

    def test_length_mismatch(self):
        with pytest.raises(CrtError, match="mismatch"):
            crt([1, 2], [7])

    def test_empty_system(self):
        with pytest.raises(CrtError, match="empty"):
            crt([], [])

    def test_residue_out_of_range(self):
        with pytest.raises(CrtError, match="out of range"):
            crt([7], [7])
        with pytest.raises(CrtError, match="out of range"):
            crt([-1], [7])

    def test_non_coprime_moduli(self):
        with pytest.raises(NotCoprimeError):
            crt([1, 1], [6, 4])

    def test_modulus_one_rejected(self):
        with pytest.raises(CrtError):
            crt([0, 0], [1, 5])
