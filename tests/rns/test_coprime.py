"""Unit tests for switch-ID pool generation and validation."""

import math

import pytest

from repro.rns import (
    greedy_coprime_pool,
    is_prime,
    min_id_for_ports,
    pairwise_coprime,
    prime_pool,
    validate_pool,
)


class TestIsPrime:
    def test_small_values(self):
        assert [n for n in range(-2, 14) if is_prime(n)] == [2, 3, 5, 7, 11, 13]

    def test_square(self):
        assert not is_prime(49)
        assert not is_prime(121)

    def test_larger_prime(self):
        assert is_prime(7919)


class TestPrimePool:
    def test_first_primes(self):
        assert prime_pool(5) == [2, 3, 5, 7, 11]

    def test_min_value(self):
        assert prime_pool(4, min_value=10) == [11, 13, 17, 19]

    def test_empty(self):
        assert prime_pool(0) == []

    def test_negative_count(self):
        with pytest.raises(ValueError):
            prime_pool(-1)

    def test_pairwise_coprime(self):
        assert pairwise_coprime(prime_pool(30))


class TestGreedyPool:
    def test_small_pool_values(self):
        # From 2 up, prime powers clash with their base primes, so the
        # greedy pool degenerates to the primes themselves.
        pool = greedy_coprime_pool(8)
        assert pool == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_includes_prime_powers_when_bases_excluded(self):
        # Starting at 4 skips the bases 2 and 3, so 4 = 2² and 9 = 3²
        # become usable — the paper's own {4, 9, ...} style IDs.
        assert greedy_coprime_pool(5, min_value=4) == [4, 5, 7, 9, 11]

    def test_is_pairwise_coprime(self):
        assert pairwise_coprime(greedy_coprime_pool(40))

    def test_min_value_four(self):
        # Reproduces the flavour of the paper's {4, 5, 7, 9, 11, ...} IDs.
        pool = greedy_coprime_pool(5, min_value=4)
        assert pool[0] == 4
        assert pairwise_coprime(pool)

    def test_smaller_product_than_primes(self):
        # The whole point of the greedy pool: smaller M for the same size.
        n = 12
        greedy = math.prod(greedy_coprime_pool(n, min_value=4))
        primes = math.prod(prime_pool(n, min_value=4))
        assert greedy < primes


class TestValidatePool:
    def test_valid(self):
        validate_pool([4, 5, 7, 11])

    def test_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_pool([5, 7, 5])

    def test_not_coprime(self):
        with pytest.raises(ValueError, match="coprime"):
            validate_pool([4, 6])

    def test_too_small_id(self):
        with pytest.raises(ValueError, match="> 1"):
            validate_pool([1, 5])

    def test_port_capacity(self):
        validate_pool([5, 7], port_counts=[4, 6])
        with pytest.raises(ValueError, match="cannot address"):
            validate_pool([5, 7], port_counts=[6, 6])

    def test_port_count_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            validate_pool([5, 7], port_counts=[4])


class TestMinId:
    def test_floor_of_two(self):
        assert min_id_for_ports(0) == 2
        assert min_id_for_ports(1) == 2

    def test_matches_port_count(self):
        assert min_id_for_ports(5) == 5
