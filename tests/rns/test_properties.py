"""Property-based tests (hypothesis) for the RNS encoding core.

These pin the invariants the whole KAR system rests on:
* CRT round-trip: encode-then-decode recovers every port,
* order independence (commutativity of the CRT summation),
* incremental update equivalence,
* uniqueness of the route ID inside [0, M).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rns import (
    Hop,
    RouteEncoder,
    crt,
    greedy_coprime_pool,
    modular_inverse,
    pairwise_coprime,
    route_id_bit_length,
)

# A pool of 24 pairwise-coprime IDs >= 4 to draw route subsets from.
_POOL = greedy_coprime_pool(24, min_value=4)


@st.composite
def route_systems(draw, min_size=1, max_size=8):
    """Random (switch_ids, ports) with valid residues."""
    size = draw(st.integers(min_size, max_size))
    ids = draw(
        st.lists(st.sampled_from(_POOL), min_size=size, max_size=size, unique=True)
    )
    ports = [draw(st.integers(0, sid - 1)) for sid in ids]
    return ids, ports


@given(route_systems())
def test_crt_roundtrip(system):
    ids, ports = system
    r, m = crt(ports, ids)
    assert 0 <= r < m
    assert [r % s for s in ids] == ports


@given(route_systems(min_size=2), st.randoms(use_true_random=False))
def test_crt_order_independence(system, rnd):
    ids, ports = system
    r1, m1 = crt(ports, ids)
    paired = list(zip(ids, ports))
    rnd.shuffle(paired)
    ids2, ports2 = zip(*paired)
    r2, m2 = crt(list(ports2), list(ids2))
    assert (r1, m1) == (r2, m2)


@given(route_systems())
def test_route_id_unique_in_range(system):
    # No other value in [0, M) has the same residues: CRT uniqueness.
    ids, ports = system
    r, m = crt(ports, ids)
    # Check a handful of other candidates rather than the full range.
    for delta in (1, 2, 3, m // 2, m - 1):
        other = (r + delta) % m
        if other == r:
            continue
        assert [other % s for s in ids] != ports


@given(route_systems(min_size=2))
def test_incremental_equals_batch(system):
    ids, ports = system
    enc = RouteEncoder()
    batch = enc.encode_path(ids, ports)
    grown = enc.encode_path(ids[:1], ports[:1])
    for sid, port in zip(ids[1:], ports[1:]):
        grown = enc.with_hop(grown, Hop(sid, port))
    assert grown.route_id == batch.route_id
    assert grown.modulus == batch.modulus


@given(route_systems(min_size=2))
def test_removal_inverts_addition(system):
    ids, ports = system
    enc = RouteEncoder()
    full = enc.encode_path(ids, ports)
    reduced = enc.without_switch(full, ids[-1])
    assert reduced.route_id == enc.encode_path(ids[:-1], ports[:-1]).route_id


@given(st.lists(st.sampled_from(_POOL), min_size=1, max_size=10, unique=True))
def test_bit_length_matches_product(ids):
    m = math.prod(ids)
    bits = route_id_bit_length(m)
    # Definitionally: 2^(bits-1) < M - 1 <= 2^bits  (for M > 2).
    if m > 2:
        assert 2 ** (bits - 1) < m - 1 <= 2**bits


@given(
    st.integers(2, 10**6),
    st.integers(2, 10**6),
)
def test_modular_inverse_property(a, mod):
    if math.gcd(a, mod) == 1:
        inv = modular_inverse(a, mod)
        assert 0 <= inv < mod
        assert (inv * a) % mod == 1


@settings(max_examples=30)
@given(st.integers(4, 60), st.integers(2, 40))
def test_greedy_pool_always_coprime(min_value, count):
    assert pairwise_coprime(greedy_coprime_pool(count, min_value=min_value))
