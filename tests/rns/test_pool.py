"""Tests for pooled CRT contexts and incremental re-encoding.

The property tests here are the bit-identity contract of PR 5: every
amortized path (PoolContext.encode, PooledEncoder, ReencodeDelta —
single mutations, multi-hop chains, identity mutations) must land on
exactly what a fresh reference crt() solve of the same residue system
produces.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rns import (
    CrtError,
    DuplicateSwitchError,
    Hop,
    NotCoprimeError,
    PoolContext,
    PooledEncoder,
    ReencodeDelta,
    RouteEncoder,
    crt,
    greedy_coprime_pool,
    product_tree,
)
from repro.topology.topologies import six_node

# One pool (and its context) for the whole module: contexts are
# long-lived by design, and sharing one across examples also exercises
# the subset cache under Hypothesis's adversarial subset draws.
_POOL = greedy_coprime_pool(24, min_value=4)
_CTX = PoolContext(_POOL)


@st.composite
def pool_systems(draw, min_size=1, max_size=8):
    """Random (switch_ids, ports) over the module pool."""
    size = draw(st.integers(min_size, max_size))
    ids = draw(
        st.lists(st.sampled_from(_POOL), min_size=size, max_size=size,
                 unique=True)
    )
    ports = [draw(st.integers(0, sid - 1)) for sid in ids]
    return ids, ports


@st.composite
def mutation_chains(draw, min_len=1, max_len=6):
    """A system plus a chain of (switch_id, new_port) mutations.

    Chains deliberately include identity mutations (new port equal to
    the current port) and repeated mutations of the same switch.
    """
    ids, ports = draw(pool_systems(min_size=2))
    length = draw(st.integers(min_len, max_len))
    chain = []
    for _ in range(length):
        sid = draw(st.sampled_from(ids))
        chain.append((sid, draw(st.integers(0, sid - 1))))
    return ids, ports, chain


class TestProductTree:
    def test_empty(self):
        assert product_tree([]) == 1

    def test_single(self):
        assert product_tree([7]) == 7

    @given(st.lists(st.integers(1, 10**6), max_size=30))
    def test_matches_math_prod(self, values):
        assert product_tree(values) == math.prod(values)


class TestPoolContext:
    def test_rejects_empty_pool(self):
        with pytest.raises(CrtError, match="empty pool"):
            PoolContext([])

    def test_rejects_unit_modulus(self):
        with pytest.raises(CrtError, match="must be > 1"):
            PoolContext([5, 1])

    def test_rejects_duplicates_even_when_validated(self):
        with pytest.raises(NotCoprimeError):
            PoolContext([5, 7, 5], validated=True)

    def test_rejects_noncoprime_pool(self):
        with pytest.raises(NotCoprimeError) as exc:
            PoolContext([4, 6, 7])
        assert exc.value.pair == (4, 6)

    def test_validated_gives_identical_context(self):
        checked = PoolContext(_POOL)
        trusted = PoolContext(_POOL, validated=True)
        assert trusted.modulus == checked.modulus
        assert all(trusted.weight(s) == checked.weight(s) for s in _POOL)

    def test_noncoprime_pool_fails_even_when_validated(self):
        # validated=True skips the O(n²) sweep, but weight derivation
        # still needs every inverse to exist — a bad pool cannot
        # silently produce a working context.
        with pytest.raises(NotCoprimeError):
            PoolContext([4, 6], validated=True)

    def test_from_graph_covers_topology(self):
        graph = six_node().graph
        ctx = PoolContext.from_graph(graph)
        assert sorted(ctx.pool) == sorted(graph.switch_ids().values())
        assert ctx.covers(graph.switch_ids().values())

    def test_weights_satisfy_crt_basis(self):
        # w_i == 1 (mod s_i) and w_i == 0 (mod s_j) for j != i: exactly
        # the Eq. 4 basis property.
        for s in _POOL:
            w = _CTX.weight(s)
            assert w % s == 1
            for other in _POOL:
                if other != s:
                    assert w % other == 0

    def test_weight_off_pool_raises(self):
        with pytest.raises(CrtError, match="not in this pool"):
            _CTX.weight(9999991)

    def test_subset_cache_is_order_independent(self):
        ctx = PoolContext(_POOL)
        a = ctx.subset([_POOL[0], _POOL[1]])
        b = ctx.subset([_POOL[1], _POOL[0]])
        assert a is b
        assert ctx.subset_hits == 1
        assert ctx.subsets_built == 1

    def test_subset_cache_eviction(self):
        ctx = PoolContext(_POOL, max_subsets=2)
        ctx.subset(_POOL[:1])
        ctx.subset(_POOL[:2])
        ctx.subset(_POOL[:3])  # evicts wholesale
        assert ctx.subsets_built == 3
        # The evicted subsets rebuild rather than error.
        ctx.subset(_POOL[:1])
        assert ctx.subsets_built == 4

    def test_encode_length_mismatch(self):
        with pytest.raises(CrtError, match="length mismatch"):
            _CTX.encode([0, 1], [_POOL[0]])

    def test_encode_duplicate_modulus_matches_reference(self):
        s = _POOL[0]
        with pytest.raises(NotCoprimeError) as pool_exc:
            _CTX.encode([0, 0], [s, s])
        with pytest.raises(NotCoprimeError) as ref_exc:
            crt([0, 0], [s, s])
        assert str(pool_exc.value) == str(ref_exc.value)

    def test_encode_out_of_range_matches_reference(self):
        s = _POOL[0]
        with pytest.raises(CrtError) as pool_exc:
            _CTX.encode([s], [s])
        with pytest.raises(CrtError) as ref_exc:
            crt([s], [s])
        assert str(pool_exc.value) == str(ref_exc.value)

    def test_encode_off_pool_modulus_raises(self):
        with pytest.raises(CrtError, match="not in this pool"):
            _CTX.encode([0], [9999991])

    @given(pool_systems())
    def test_encode_bit_identical_to_crt(self, system):
        ids, ports = system
        assert _CTX.encode(ports, ids) == crt(ports, ids)

    @given(pool_systems())
    def test_encode_hops_matches_route_encoder(self, system):
        ids, ports = system
        hops = [Hop(s, p) for s, p in zip(ids, ports)]
        pooled = _CTX.encode_hops(hops)
        ref = RouteEncoder().encode(hops)
        assert pooled == ref
        assert pooled.residue_map() == ref.residue_map()


class TestPooledEncoder:
    def test_pool_covered_encode_counts(self):
        enc = PooledEncoder(PoolContext(_POOL))
        hops = [Hop(_POOL[0], 1), Hop(_POOL[1], 2)]
        assert enc.encode(hops) == RouteEncoder().encode(hops)
        assert (enc.pooled_encodes, enc.fallback_encodes) == (1, 0)

    def test_off_pool_falls_back(self):
        enc = PooledEncoder(PoolContext([5, 7, 9]))
        hops = [Hop(5, 2), Hop(11, 3)]  # 11 not in pool
        assert enc.encode(hops) == RouteEncoder().encode(hops)
        assert (enc.pooled_encodes, enc.fallback_encodes) == (0, 1)

    def test_duplicate_switch_matches_reference(self):
        enc = PooledEncoder(PoolContext(_POOL))
        hops = [Hop(_POOL[0], 1), Hop(_POOL[0], 2)]
        with pytest.raises(DuplicateSwitchError):
            RouteEncoder().encode(hops)
        with pytest.raises(DuplicateSwitchError):
            enc.encode(hops)

    def test_inherited_with_hop_still_works(self):
        enc = PooledEncoder(PoolContext(_POOL))
        base = enc.encode([Hop(_POOL[0], 1)])
        grown = enc.with_hop(base, Hop(_POOL[1], 2))
        ref = RouteEncoder().encode([Hop(_POOL[0], 1), Hop(_POOL[1], 2)])
        assert grown.route_id == ref.route_id


class TestReencodeDelta:
    def test_identity_is_same_object(self):
        delta = ReencodeDelta(_CTX)
        route = _CTX.encode_hops([Hop(_POOL[0], 1), Hop(_POOL[1], 2)])
        assert delta.apply(route, _POOL[0], 1) is route
        assert delta.apply_id(route, _POOL[0], 1) == route.route_id
        assert delta.identity_skips == 2
        assert delta.deltas_applied == 0

    def test_unknown_switch_raises(self):
        delta = ReencodeDelta(_CTX)
        route = _CTX.encode_hops([Hop(_POOL[0], 1)])
        with pytest.raises(CrtError, match="not encoded in this route"):
            delta.apply(route, _POOL[5], 0)

    def test_out_of_range_port_raises(self):
        delta = ReencodeDelta(_CTX)
        route = _CTX.encode_hops([Hop(_POOL[0], 1)])
        # The pool path rejects with "out of range"; the full-solve
        # fallback rejects via Hop validation — either way a CrtError.
        with pytest.raises(CrtError, match="out of range|not addressable"):
            delta.apply(route, _POOL[0], _POOL[0])

    def test_off_pool_route_full_solves(self):
        # A route over non-pool switches still re-encodes correctly,
        # through the reference fallback.
        delta = ReencodeDelta(PoolContext([5, 7, 9]))
        route = RouteEncoder().encode([Hop(11, 3), Hop(13, 4)])
        updated = delta.apply(route, 11, 5)
        ref = RouteEncoder().encode([Hop(11, 5), Hop(13, 4)])
        assert updated == ref
        assert delta.full_solves == 1
        assert delta.deltas_applied == 0

    def test_inconsistent_modulus_rejected(self):
        import dataclasses
        delta = ReencodeDelta(PoolContext(_POOL))
        route = _CTX.encode_hops([Hop(_POOL[0], 1), Hop(_POOL[1], 2)])
        broken = dataclasses.replace(route, modulus=route.modulus * _POOL[2])
        with pytest.raises(CrtError, match="does not match"):
            delta.pool.reencode(broken, _POOL[0], 0)

    @given(mutation_chains())
    @settings(max_examples=200)
    def test_chain_equals_fresh_solve(self, case):
        """The satellite property: a chain of incremental re-encodes —
        identity steps and repeat mutations included — is bit-identical
        to a fresh crt() solve of the final residue system, at every
        step along the way."""
        ids, ports, chain = case
        delta = ReencodeDelta(_CTX)
        route = _CTX.encode_hops([Hop(s, p) for s, p in zip(ids, ports)])
        residues = dict(route.residue_map())
        for sid, new_port in chain:
            if residues[sid] == new_port:
                assert delta.apply(route, sid, new_port) is route
            new_id = delta.apply_id(route, sid, new_port)
            route = delta.apply(route, sid, new_port)
            residues[sid] = new_port
            want = crt([residues[s] for s in ids], ids)
            assert (new_id, route.modulus) == want
            assert (route.route_id, route.modulus) == want
            assert route.residue_map() == residues
            # The route object stays self-consistent for the next step.
            assert [h.port for h in route.hops] == [
                residues[h.switch_id] for h in route.hops
            ]
        assert delta.full_solves == 0

    @given(mutation_chains())
    def test_apply_many_equals_stepwise(self, case):
        ids, ports, chain = case
        delta = ReencodeDelta(_CTX)
        base = _CTX.encode_hops([Hop(s, p) for s, p in zip(ids, ports)])
        folded = delta.apply_many(base, chain)
        stepped = base
        for sid, new_port in chain:
            stepped = delta.apply(stepped, sid, new_port)
        assert folded == stepped

    @given(pool_systems(min_size=2))
    def test_reencode_matches_route_encoder(self, system):
        ids, ports = system
        delta = ReencodeDelta(_CTX)
        route = _CTX.encode_hops([Hop(s, p) for s, p in zip(ids, ports)])
        sid = ids[0]
        new_port = (ports[0] + 1) % sid
        updated = delta.apply(route, sid, new_port)
        ref = RouteEncoder().encode(
            [Hop(s, new_port if s == sid else p)
             for s, p in zip(ids, ports)]
        )
        assert updated == ref
        assert updated.residue_map() == ref.residue_map()
