"""Tests for the pluggable encoding backends."""

import pytest

from repro.rns import (
    BACKEND_NAMES,
    CrtError,
    Hop,
    RouteEncoder,
    XsrEncodedRoute,
    backend_by_name,
)
from repro.rns.gf2 import dual_coprime_pool, gf2_degree

DUAL_POOL = dual_coprime_pool(8)


def _pool_for(name):
    return DUAL_POOL if name == "xsr" else [23, 29, 31, 37, 41, 43]


class TestRegistry:
    def test_names_are_sorted_and_complete(self):
        assert BACKEND_NAMES == ("crt", "pooled", "xsr")
        for name in BACKEND_NAMES:
            assert backend_by_name(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown encoding backend"):
            backend_by_name("base64")


class TestEncodeDecode:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_round_trip(self, name):
        backend = backend_by_name(name)
        pool = _pool_for(name)
        backend.prepare(pool)
        ports = [i % backend.residue_space(s) for i, s in enumerate(pool)]
        hops = [Hop(s, p) for s, p in zip(pool, ports)]
        route = backend.encode(hops)
        assert backend.decode(route.route_id, pool) == ports
        assert [route.port_at(s) for s in pool] == ports
        assert backend.header_bits(route.modulus) == route.bit_length

    @pytest.mark.parametrize("name", ("crt", "pooled"))
    def test_integer_backends_bit_identical_to_reference(self, name):
        backend = backend_by_name(name)
        pool = _pool_for(name)
        hops = [Hop(s, s % 5) for s in pool]
        ref = RouteEncoder().encode(hops)
        route = backend.encode(hops)
        assert route == ref
        assert route.residue_map() == ref.residue_map()

    def test_xsr_bits_are_exact_degree_sum(self):
        backend = backend_by_name("xsr")
        hops = [Hop(s, 0) for s in DUAL_POOL[:4]]
        route = backend.encode(hops)
        assert isinstance(route, XsrEncodedRoute)
        assert route.bit_length == sum(
            gf2_degree(s) for s in DUAL_POOL[:4]
        )

    def test_xsr_incremental_ops_match_fresh_encode(self):
        enc = backend_by_name("xsr").encoder()
        hops = [Hop(s, i % 2) for i, s in enumerate(DUAL_POOL[:5])]
        route = enc.encode(hops[:-1])
        grown = enc.with_hop(route, hops[-1])
        fresh = enc.encode(hops)
        assert (grown.route_id, grown.modulus) == (
            fresh.route_id, fresh.modulus
        )
        shrunk = enc.without_switch(grown, hops[-1].switch_id)
        assert (shrunk.route_id, shrunk.modulus) == (
            route.route_id, route.modulus
        )


class TestFeasibility:
    def test_residue_space(self):
        assert backend_by_name("crt").residue_space(19) == 19
        # deg(19) = 4: GF(2) remainders span [0, 16).
        assert backend_by_name("xsr").residue_space(19) == 16

    def test_min_switch_id_covers_ports(self):
        for name in BACKEND_NAMES:
            backend = backend_by_name(name)
            for ports in range(1, 20):
                assert backend.residue_space(
                    backend.min_switch_id(ports)
                ) >= ports

    def test_xsr_rejects_gf2_noncoprime_pool(self):
        # 3 = x+1 divides 5 = x^2+1 over GF(2), integers coprime.
        with pytest.raises(ValueError, match="binary polynomials"):
            backend_by_name("xsr").validate_switch_ids([3, 5, 7])

    def test_integer_backend_accepts_that_pool(self):
        backend_by_name("crt").validate_switch_ids([3, 5, 7])

    def test_pooled_encoder_requires_prepare(self):
        backend = backend_by_name("pooled")
        with pytest.raises(CrtError, match="empty pool"):
            backend.encoder()
        backend.prepare([5, 7, 9])
        assert backend.encoder() is backend.encoder()
