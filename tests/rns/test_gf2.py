"""Tests for the GF(2)[X] arithmetic behind the XSR backend."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rns.gf2 import (
    Gf2NotCoprimeError,
    dual_coprime_pool,
    gf2_crt,
    gf2_crt_extend,
    gf2_degree,
    gf2_divmod,
    gf2_egcd,
    gf2_first_noncoprime_pair,
    gf2_gcd,
    gf2_inverse,
    gf2_mod,
    gf2_mul,
    gf2_pairwise_coprime,
    gf2_product,
    min_gf2_id_for_ports,
)

polys = st.integers(min_value=1, max_value=(1 << 24) - 1)


class TestPrimitives:
    def test_degree(self):
        assert gf2_degree(1) == 0
        assert gf2_degree(0b1000) == 3

    def test_mul_is_carryless(self):
        # (x+1)(x+1) = x^2 + 1 over GF(2): the cross terms cancel.
        assert gf2_mul(0b11, 0b11) == 0b101

    @given(a=polys, b=polys)
    def test_mul_commutes_and_adds_degrees(self, a, b):
        assert gf2_mul(a, b) == gf2_mul(b, a)
        assert gf2_degree(gf2_mul(a, b)) == gf2_degree(a) + gf2_degree(b)

    @given(a=st.integers(min_value=0, max_value=(1 << 24) - 1), b=polys)
    def test_divmod_reconstructs(self, a, b):
        q, r = gf2_divmod(a, b)
        assert gf2_mul(q, b) ^ r == a
        assert r == gf2_mod(a, b)
        assert r == 0 or gf2_degree(r) < gf2_degree(b)

    @given(a=polys, b=polys)
    def test_gcd_divides_both(self, a, b):
        g = gf2_gcd(a, b)
        assert gf2_divmod(a, g)[1] == 0
        assert gf2_divmod(b, g)[1] == 0

    @given(a=polys, b=polys)
    def test_egcd_bezout(self, a, b):
        g, x, y = gf2_egcd(a, b)
        assert gf2_mul(a, x) ^ gf2_mul(b, y) == g

    def test_inverse(self):
        # x is invertible mod x^2+x+1 (irreducible).
        inv = gf2_inverse(0b10, 0b111)
        assert gf2_mod(gf2_mul(0b10, inv), 0b111) == 1

    def test_inverse_of_noncoprime_raises(self):
        with pytest.raises(Gf2NotCoprimeError):
            gf2_inverse(0b10, 0b100)


class TestCrt:
    def test_solution_hits_every_residue(self):
        moduli = [0b111, 0b1011, 0b10]  # pairwise GF(2)-coprime
        residues = [0b10, 0b101, 0b1]
        rid, mod = gf2_crt(residues, moduli)
        assert mod == gf2_product(moduli)
        for p, s in zip(residues, moduli):
            assert gf2_mod(rid, s) == p

    def test_residue_must_fit_the_degree(self):
        # 2 < 3 as integers but deg(3) = 1 only admits residues {0, 1}.
        with pytest.raises(Exception):
            gf2_crt([2], [3])

    def test_noncoprime_rejected(self):
        with pytest.raises(Gf2NotCoprimeError):
            gf2_crt([0, 0], [0b10, 0b110])

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25)
    def test_extend_matches_fresh_solve(self, seed):
        import random

        rng = random.Random(seed)
        pool = dual_coprime_pool(8)
        k = rng.randrange(2, 6)
        moduli = rng.sample(pool, k)
        residues = [rng.randrange(1 << gf2_degree(s)) for s in moduli]
        rid, mod = gf2_crt(residues[:-1], moduli[:-1])
        ext_id, ext_mod = gf2_crt_extend(rid, mod, moduli[-1], residues[-1])
        assert (ext_id, ext_mod) == gf2_crt(residues, moduli)


class TestPools:
    def test_dual_pool_is_coprime_in_both_rings(self):
        import math

        pool = dual_coprime_pool(24)
        assert len(pool) == 24
        assert gf2_pairwise_coprime(pool)
        assert gf2_first_noncoprime_pair(pool) is None
        for i, a in enumerate(pool):
            for b in pool[i + 1:]:
                assert math.gcd(a, b) == 1

    def test_min_gf2_id_covers_ports(self):
        for ports in range(1, 40):
            sid = min_gf2_id_for_ports(ports)
            assert (1 << gf2_degree(sid)) >= ports
