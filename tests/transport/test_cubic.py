"""Tests for the CUBIC congestion-control variant."""

import pytest

from repro.sim import Link, Simulator
from repro.transport import CubicTcpSender, TcpReceiver, TcpSender
from repro.transport.host import Host


def _rig(sender_cls, drop_seq=None, rate=10.0):
    from tests.transport.test_tcp import MiddleBox

    sim = Simulator()
    src = Host("hs", sim)
    dst = Host("hd", sim)
    box = MiddleBox("mb", sim)
    Link(sim, src, 0, box, 0, rate_mbps=rate, delay_s=0.001,
         queue_packets=100)
    Link(sim, box, 1, dst, 0, rate_mbps=rate, delay_s=0.001,
         queue_packets=100)
    sender = sender_cls(sim, src, "hd", "f1", mss=1000, min_rto=0.2)
    receiver = TcpReceiver(sim, dst, "hs", "f1")
    if drop_seq is not None:
        box.drop_seqs.add(drop_seq)
    return sim, sender, receiver


class TestCubicBasics:
    def test_bulk_transfer_completes(self):
        sim, snd, rcv = _rig(CubicTcpSender)
        snd.max_data = 100_000
        snd.start()
        sim.run_until(5.0)
        assert rcv.bytes_received == 100_000

    def test_throughput_near_line_rate(self):
        sim, snd, rcv = _rig(CubicTcpSender)
        snd.start()
        sim.run_until(10.0)
        goodput = rcv.bytes_received * 8 / 10.0 / 1e6
        assert goodput > 8.0

    def test_slow_start_matches_reno(self):
        sim, snd, rcv = _rig(CubicTcpSender)
        start = snd.cwnd
        snd.start()
        sim.run_until(0.05)
        assert snd.cwnd > 2 * start

    def test_backoff_is_gentler_than_reno(self):
        # CUBIC's beta is 0.7 vs Reno's 0.5: after the same loss, the
        # CUBIC window floor must be higher.
        def post_loss_ssthresh(cls):
            sim, snd, rcv = _rig(cls, drop_seq=40_000)
            snd.start()
            sim.run_until(3.0)
            return snd.ssthresh

        assert post_loss_ssthresh(CubicTcpSender) > post_loss_ssthresh(
            TcpSender
        )

    def test_loss_recovery_works(self):
        sim, snd, rcv = _rig(CubicTcpSender, drop_seq=20_000)
        snd.max_data = 80_000
        snd.start()
        sim.run_until(5.0)
        assert rcv.bytes_received == 80_000
        assert snd.fast_retransmits >= 1

    def test_concave_then_convex_growth(self):
        # After a backoff, CUBIC approaches W_max quickly, plateaus near
        # it, then probes beyond — growth rate near the plateau must be
        # smaller than right after the loss.
        sim, snd, rcv = _rig(CubicTcpSender, drop_seq=60_000, rate=20.0)
        snd.start()
        samples = []

        def sample():
            samples.append((sim.now, snd.cwnd))
            sim.schedule(0.05, sample)

        sim.schedule(0.05, sample)
        sim.run_until(4.0)
        assert rcv.bytes_received > 0
        # Window recovered above the post-loss floor eventually.
        assert snd.cwnd > snd.ssthresh


class TestCubicWithKar:
    def test_cubic_flow_over_kar_failure(self):
        from repro.runner import KarSimulation
        from repro.topology import PARTIAL, fifteen_node

        ks = KarSimulation(
            fifteen_node(rate_mbps=20.0, delay_s=0.0002),
            deflection="nip", protection=PARTIAL, seed=8,
        )
        ks.schedule_failure("SW7", "SW13", at=1.5, repair_at=3.0)
        flow = ks.add_iperf(sender_cls=CubicTcpSender, max_rto=1.0)
        flow.start(at=0.2, duration_s=4.3)
        ks.run(until=4.5)
        res = flow.result()
        # Survives the failure with useful throughput.
        assert res.mean_mbps > 5.0
