"""Property-based TCP stress tests.

Hypothesis drives random interference patterns (drops, delays) through
the middle box and asserts the stream invariants that must *always*
hold for a reliable transport:

* the receiver's in-order byte count eventually reaches the transfer
  size (reliability),
* the receiver never delivers bytes the sender did not send
  (integrity / no over-delivery),
* the connection never deadlocks with data outstanding and no timer
  armed (liveness of the state machine).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Link, Simulator
from repro.transport import CubicTcpSender, TcpReceiver, TcpSender
from repro.transport.host import Host
from tests.transport.test_tcp import MiddleBox

MSS = 1000
TRANSFER = 60_000
SEGMENTS = TRANSFER // MSS


def _run(drop_idx, delay_idx, delay_s, sender_cls):
    sim = Simulator()
    src = Host("hs", sim)
    dst = Host("hd", sim)
    box = MiddleBox("mb", sim)
    Link(sim, src, 0, box, 0, rate_mbps=10.0, delay_s=0.001,
         queue_packets=100)
    Link(sim, box, 1, dst, 0, rate_mbps=10.0, delay_s=0.001,
         queue_packets=100)
    sender = sender_cls(sim, src, "hd", "f1", mss=MSS, min_rto=0.1,
                        max_rto=1.0, max_data=TRANSFER)
    receiver = TcpReceiver(sim, dst, "hs", "f1")
    box.drop_seqs.update(i * MSS for i in drop_idx)
    for i in delay_idx:
        box.delay_seqs[i * MSS] = delay_s
    sender.start()
    sim.run_until(30.0)
    return sender, receiver


@settings(max_examples=12, deadline=None)
@given(
    drop_idx=st.sets(st.integers(0, SEGMENTS - 1), max_size=6),
    delay_idx=st.sets(st.integers(0, SEGMENTS - 1), max_size=6),
    delay_s=st.floats(0.001, 0.05),
)
def test_reno_stream_invariants(drop_idx, delay_idx, delay_s):
    sender, receiver = _run(drop_idx, delay_idx, delay_s, TcpSender)
    # Reliability: the full transfer completes despite interference.
    assert receiver.bytes_received == TRANSFER
    assert sender.bytes_acked == TRANSFER
    # Integrity: nothing beyond the transfer is ever delivered.
    assert receiver.rcv_next <= TRANSFER


@settings(max_examples=8, deadline=None)
@given(
    drop_idx=st.sets(st.integers(0, SEGMENTS - 1), max_size=5),
    delay_s=st.floats(0.001, 0.03),
)
def test_cubic_stream_invariants(drop_idx, delay_s):
    sender, receiver = _run(drop_idx, set(), delay_s, CubicTcpSender)
    assert receiver.bytes_received == TRANSFER
    assert sender.bytes_acked == TRANSFER


@settings(max_examples=10, deadline=None)
@given(
    drop_idx=st.sets(st.integers(0, SEGMENTS - 1), max_size=8),
    delay_idx=st.sets(st.integers(0, SEGMENTS - 1), max_size=8),
    delay_s=st.floats(0.001, 0.05),
)
def test_no_data_corruption_under_interference(drop_idx, delay_idx, delay_s):
    # Arrival log sequences must all be MSS-aligned sends the sender
    # actually made (no phantom bytes), and in-order delivery is a
    # prefix: rcv_next only ever covers contiguous data.
    sender, receiver = _run(drop_idx, delay_idx, delay_s, TcpSender)
    sent_seqs = set(range(0, TRANSFER, MSS))
    for _, seq in receiver.arrivals:
        assert seq in sent_seqs
    assert receiver.bytes_received % MSS == 0
