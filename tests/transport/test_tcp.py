"""Unit tests for the TCP Reno/NewReno implementation.

The rig wires two hosts through a middle box that can drop, delay or
reorder selected segments — no KAR involved, pure transport behaviour.
"""

import pytest

from repro.sim import Link, Packet, Simulator
from repro.sim.node import Node
from repro.transport import TcpReceiver, TcpSegment, TcpSender
from repro.transport.host import Host


class MiddleBox(Node):
    """Two-port pipe with programmable interference on data segments."""

    def __init__(self, name, sim):
        super().__init__(name, sim, 2)
        self.drop_seqs = set()        # data seqs to drop once
        self.delay_seqs = {}          # data seq -> extra delay (once)

    def receive(self, packet, in_port):
        out = 1 - in_port
        seg = packet.payload
        if isinstance(seg, TcpSegment) and not seg.is_ack:
            if seg.seq in self.drop_seqs:
                self.drop_seqs.discard(seg.seq)
                return
            if seg.seq in self.delay_seqs:
                delay = self.delay_seqs.pop(seg.seq)
                self.sim.schedule(delay, self.send, out, packet)
                return
        self.send(out, packet)


@pytest.fixture
def rig():
    sim = Simulator()
    src = Host("hs", sim)
    dst = Host("hd", sim)
    box = MiddleBox("mb", sim)
    Link(sim, src, 0, box, 0, rate_mbps=10.0, delay_s=0.001, queue_packets=100)
    Link(sim, box, 1, dst, 0, rate_mbps=10.0, delay_s=0.001, queue_packets=100)
    sender = TcpSender(sim, src, "hd", "f1", mss=1000, min_rto=0.2)
    receiver = TcpReceiver(sim, dst, "hs", "f1")
    return sim, sender, receiver, box


class TestBulkTransfer:
    def test_finite_transfer_completes(self, rig):
        sim, snd, rcv, box = rig
        snd.max_data = 50_000
        snd.start()
        sim.run_until(5.0)
        assert rcv.bytes_received == 50_000
        assert snd.bytes_acked == 50_000
        assert snd.retransmits == 0

    def test_throughput_near_line_rate(self, rig):
        sim, snd, rcv, box = rig
        snd.start()
        sim.run_until(10.0)
        goodput = rcv.bytes_received * 8 / 10.0 / 1e6
        assert goodput > 8.0  # >80 % of the 10 Mbit/s line

    def test_sequence_space_in_order_without_loss(self, rig):
        sim, snd, rcv, box = rig
        snd.max_data = 20_000
        snd.start()
        sim.run_until(2.0)
        seqs = [s for _, s in rcv.arrivals]
        assert seqs == sorted(seqs)

    def test_slow_start_doubles(self, rig):
        sim, snd, rcv, box = rig
        start_cwnd = snd.cwnd
        snd.start()
        sim.run_until(0.05)  # a few RTTs (RTT ~ 5 ms)
        assert snd.cwnd > 2 * start_cwnd

    def test_delayed_start(self, rig):
        sim, snd, rcv, box = rig
        snd.start(at=1.0)
        sim.run_until(0.9)
        assert rcv.bytes_received == 0
        sim.run_until(2.0)
        assert rcv.bytes_received > 0


class TestLossRecovery:
    def test_fast_retransmit_recovers_single_loss(self, rig):
        sim, snd, rcv, box = rig
        box.drop_seqs.add(10_000)  # drop one mid-stream segment
        snd.max_data = 60_000
        snd.start()
        sim.run_until(5.0)
        assert rcv.bytes_received == 60_000
        assert snd.fast_retransmits == 1
        assert snd.timeouts == 0

    def test_window_halved_after_loss(self, rig):
        sim, snd, rcv, box = rig
        box.drop_seqs.add(30_000)
        snd.start()
        pre = []
        sim.schedule_at(0.2, lambda: pre.append(snd.cwnd))
        sim.run_until(5.0)
        assert snd.fast_retransmits >= 1
        assert snd.ssthresh < snd.rwnd

    def test_rto_recovers_tail_loss(self, rig):
        sim, snd, rcv, box = rig
        # Lose the very last segment: no dupacks can arrive -> RTO path.
        snd.max_data = 10_000
        box.drop_seqs.add(9_000)
        snd.start()
        sim.run_until(5.0)
        assert rcv.bytes_received == 10_000
        assert snd.timeouts >= 1

    def test_multiple_losses_eventually_recover(self, rig):
        sim, snd, rcv, box = rig
        box.drop_seqs.update({5_000, 6_000, 7_000, 20_000})
        snd.max_data = 40_000
        snd.start()
        sim.run_until(10.0)
        assert rcv.bytes_received == 40_000


class TestReorderingTolerance:
    def test_mild_reordering_without_adaptation_retransmits(self, rig):
        sim, snd, rcv, box = rig
        snd.reorder_adaptation = False
        box.delay_seqs[10_000] = 0.02  # ~ dozens of packets late
        snd.max_data = 80_000
        snd.start()
        sim.run_until(5.0)
        assert rcv.bytes_received == 80_000
        assert snd.fast_retransmits >= 1

    def test_eifel_spurious_recovery_raises_threshold(self):
        # White-box Eifel: three dup-ACKs trigger a fast retransmit at
        # t=0.01; the ACK that fills the hole echoes a timestamp from
        # *before* the retransmission (the original copy arrived), so
        # the recovery is spurious: undo the window cut, raise the
        # dup-ACK threshold past the streak.
        sim = Simulator()
        host = Host("hx", sim)  # port uncabled: outgoing packets vanish
        snd = TcpSender(sim, host, "hd", "fx", mss=1000)
        snd.start()
        cwnd_before = snd.cwnd

        def ack(n, ts_echo=0.0):
            return Packet(
                src_host="hd", dst_host="hx", size_bytes=66,
                payload=TcpSegment(flow_id="fx", ack=n, is_ack=True,
                                   ts_echo=ts_echo),
            )

        def dupacks():
            for _ in range(3):
                snd.on_packet(ack(0, ts_echo=0.005))
            assert snd.in_recovery
            assert snd.fast_retransmits == 1

        def hole_fills():
            # ts_echo 0.005 < retransmit time 0.01 -> original arrived.
            snd.on_packet(ack(snd.recover_point, ts_echo=0.005))

        sim.schedule_at(0.01, dupacks)
        sim.schedule_at(0.012, hole_fills)
        sim.run_until(0.013)
        assert not snd.in_recovery
        assert snd.spurious_recoveries == 1
        assert snd.dupack_threshold > 3
        assert snd.cwnd >= cwnd_before  # window cut undone

    def test_genuine_recovery_does_not_raise_threshold(self):
        # Same dance, but the hole-filling ACK echoes the *retransmit's*
        # timestamp (>= retransmit time): a genuine loss recovery.
        sim = Simulator()
        host = Host("hy", sim)
        snd = TcpSender(sim, host, "hd", "fy", mss=1000)
        snd.start()

        def ack(n, ts_echo=0.0):
            return Packet(
                src_host="hd", dst_host="hy", size_bytes=66,
                payload=TcpSegment(flow_id="fy", ack=n, is_ack=True,
                                   ts_echo=ts_echo),
            )

        def dupacks():
            for _ in range(3):
                snd.on_packet(ack(0, ts_echo=0.005))
            assert snd.in_recovery

        def hole_fills():
            snd.on_packet(ack(snd.recover_point, ts_echo=0.011))

        sim.schedule_at(0.01, dupacks)
        sim.schedule_at(0.05, hole_fills)
        sim.run_until(0.051)  # bounded: the RTO timer re-arms forever
        assert not snd.in_recovery
        assert snd.spurious_recoveries == 0
        assert snd.dupack_threshold == 3
        assert snd.cwnd == snd.ssthresh  # deflated, not restored

    def test_receiver_buffers_out_of_order(self, rig):
        sim, snd, rcv, box = rig
        box.delay_seqs[5_000] = 0.01
        snd.max_data = 20_000
        snd.start()
        sim.run_until(5.0)
        assert rcv.bytes_received == 20_000
        seqs = [s for _, s in rcv.arrivals]
        assert seqs != sorted(seqs)  # arrivals really were out of order


class TestRttEstimation:
    def test_srtt_close_to_path_rtt(self, rig):
        sim, snd, rcv, box = rig
        snd.max_data = 100_000
        snd.start()
        sim.run_until(3.0)
        # Path RTT: 4 ms propagation + serialization + queueing.
        assert snd.srtt is not None
        assert 0.003 < snd.srtt < 0.08

    def test_rto_at_least_minimum(self, rig):
        sim, snd, rcv, box = rig
        snd.start()
        sim.run_until(1.0)
        assert snd.rto >= snd.min_rto


class TestValidation:
    def test_bad_mss(self, rig):
        sim, snd, rcv, box = rig
        with pytest.raises(ValueError):
            TcpSender(sim, Host("hx", sim), "hd", "f2", mss=0)

    def test_double_start(self, rig):
        sim, snd, rcv, box = rig
        snd.start()
        with pytest.raises(RuntimeError):
            snd.start()

    def test_duplicate_flow_registration(self, rig):
        sim, snd, rcv, box = rig
        with pytest.raises(ValueError, match="already registered"):
            TcpSender(sim, snd.host, "hd", "f1")
