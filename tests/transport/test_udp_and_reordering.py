"""Tests for the UDP probe and reordering metrics."""

import pytest

from repro.sim import Link, Simulator
from repro.transport import (
    UdpSink,
    UdpSource,
    analyze_arrivals,
    analyze_sequences,
)
from repro.transport.host import Host


@pytest.fixture
def rig():
    sim = Simulator()
    src = Host("hs", sim)
    dst = Host("hd", sim)
    Link(sim, src, 0, dst, 0, rate_mbps=100.0, delay_s=0.001)
    return sim, src, dst


class TestUdpProbe:
    def test_rate_and_duration(self, rig):
        sim, src, dst = rig
        probe = UdpSource(sim, src, "hd", "u1", rate_pps=100, duration_s=2.0)
        sink = UdpSink(sim, dst, "u1")
        probe.start()
        sim.run_until(3.0)
        assert probe.sent == 200
        assert sink.received == 200
        assert sink.delivery_ratio(probe.sent) == 1.0

    def test_sequences_monotonic_on_clean_path(self, rig):
        sim, src, dst = rig
        probe = UdpSource(sim, src, "hd", "u1", rate_pps=50, duration_s=1.0)
        sink = UdpSink(sim, dst, "u1")
        probe.start()
        sim.run_until(2.0)
        assert sink.sequences() == list(range(50))

    def test_delay_measured(self, rig):
        sim, src, dst = rig
        probe = UdpSource(sim, src, "hd", "u1", rate_pps=10, duration_s=1.0,
                          payload_bytes=950)
        sink = UdpSink(sim, dst, "u1")
        probe.start()
        sim.run_until(2.0)
        # 1000 B at 100 Mbit/s = 80 us serialization + 1 ms propagation.
        assert sink.mean_delay() == pytest.approx(0.00108, abs=1e-4)

    def test_delayed_start(self, rig):
        sim, src, dst = rig
        probe = UdpSource(sim, src, "hd", "u1", rate_pps=10, duration_s=0.5)
        sink = UdpSink(sim, dst, "u1")
        probe.start(at=1.0)
        sim.run_until(0.9)
        assert sink.received == 0
        sim.run_until(2.0)
        assert sink.received == 5

    def test_bad_rate(self, rig):
        sim, src, dst = rig
        with pytest.raises(ValueError):
            UdpSource(sim, src, "hd", "u2", rate_pps=0)

    def test_empty_sink_stats(self, rig):
        sim, src, dst = rig
        sink = UdpSink(sim, dst, "u3")
        assert sink.mean_delay() is None
        assert sink.mean_hops() is None
        assert sink.delivery_ratio(0) == 0.0


class TestReorderingMetrics:
    def test_in_order_is_clean(self):
        rep = analyze_sequences([0, 1, 2, 3, 4])
        assert rep.reordered == 0
        assert rep.reordered_ratio == 0.0
        assert rep.max_displacement == 0

    def test_single_swap(self):
        rep = analyze_sequences([0, 2, 1, 3])
        assert rep.reordered == 1
        assert rep.dupack_events == 1
        assert rep.max_displacement == 1

    def test_deep_displacement(self):
        # Packet 0 arrives after 5 later ones.
        rep = analyze_sequences([1, 2, 3, 4, 5, 0])
        assert rep.reordered == 1
        assert rep.max_displacement == 5

    def test_duplicates_not_reordering(self):
        rep = analyze_sequences([0, 1, 1, 2])
        # The duplicate 1 is < max_seen? No: 1 < 2 is False at its
        # arrival (max_seen == 1), so it is not counted as reordered.
        assert rep.reordered == 0

    def test_ratio(self):
        rep = analyze_sequences([0, 2, 1, 3, 5, 4])
        assert rep.reordered_ratio == pytest.approx(2 / 6)

    def test_empty(self):
        rep = analyze_sequences([])
        assert rep.total == 0
        assert rep.reordered_ratio == 0.0

    def test_analyze_arrivals_signature(self):
        rep = analyze_arrivals([(0.1, 0), (0.2, 2), (0.3, 1)])
        assert rep.reordered == 1

    def test_describe_readable(self):
        text = analyze_sequences([0, 2, 1]).describe()
        assert "reordered" in text and "%" in text
