"""Tests for random-topology generators, incl. hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rns import pairwise_coprime
from repro.topology import (
    NodeKind,
    attach_host_pair,
    clique,
    random_connected,
    ring_lattice,
    torus,
)


class TestRandomConnected:
    def test_deterministic(self):
        a = random_connected(10, extra_links=4, seed=42)
        b = random_connected(10, extra_links=4, seed=42)
        assert [l.key for l in a.links()] == [l.key for l in b.links()]
        assert a.switch_ids() == b.switch_ids()

    def test_different_seeds_differ(self):
        a = random_connected(10, extra_links=4, seed=1)
        b = random_connected(10, extra_links=4, seed=2)
        assert [l.key for l in a.links()] != [l.key for l in b.links()]

    def test_connected_and_coprime(self):
        g = random_connected(20, extra_links=10, seed=0, min_switch_id=31)
        assert g.is_connected()
        assert pairwise_coprime(g.switch_ids().values())

    def test_too_few_switches(self):
        with pytest.raises(ValueError):
            random_connected(1)

    def test_greedy_strategy(self):
        g = random_connected(8, seed=0, id_strategy="greedy", min_switch_id=9)
        assert pairwise_coprime(g.switch_ids().values())

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            random_connected(5, id_strategy="magic")

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 25),
        extra=st.integers(0, 15),
        seed=st.integers(0, 1000),
    )
    def test_property_connected_valid(self, n, extra, seed):
        g = random_connected(n, extra_links=extra, seed=seed, min_switch_id=101)
        assert g.is_connected()
        assert pairwise_coprime(g.switch_ids().values())
        for node in g.nodes(NodeKind.CORE):
            assert node.switch_id > node.degree


class TestRingLattice:
    def test_ring_degrees(self):
        g = ring_lattice(8)
        assert all(g.degree(n.name) == 2 for n in g.nodes())

    def test_chords(self):
        g = ring_lattice(10, chord_step=5)
        degrees = sorted(g.degree(n.name) for n in g.nodes())
        assert degrees[-1] >= 3

    def test_too_small(self):
        with pytest.raises(ValueError):
            ring_lattice(2)


class TestClique:
    def test_complete_and_valid(self):
        g = clique(6)
        g.validate()
        assert g.is_connected()
        for node in g.nodes(NodeKind.CORE):
            assert g.degree(node.name) == 5
        assert len(g.links()) == 15
        assert pairwise_coprime(g.switch_ids().values())

    def test_ids_leave_room_for_host_stacks(self):
        # Degree < ID must survive one attach_host_pair on any switch.
        g = clique(12)
        attach_host_pair(g, "SW0", "SW11")
        g.validate()

    def test_deterministic(self):
        assert clique(5).switch_ids() == clique(5).switch_ids()

    def test_too_small(self):
        with pytest.raises(ValueError, match="at least 3"):
            clique(2)


class TestTorus:
    def test_regular_degree_four(self):
        g = torus(3, 4)
        g.validate()
        assert g.is_connected()
        for node in g.nodes(NodeKind.CORE):
            assert g.degree(node.name) == 4
        # rows*cols nodes, 2 links each (right + down with wrap).
        assert len(g.node_names()) == 12
        assert len(g.links()) == 24
        assert pairwise_coprime(g.switch_ids().values())

    def test_grid_names_and_wraparound(self):
        g = torus(3, 3)
        assert "SW2-2" in g.node_names()
        # Wrap links exist in both dimensions.
        assert g.port_of("SW0-0", "SW0-2") is not None
        assert g.port_of("SW0-0", "SW2-0") is not None

    @pytest.mark.parametrize("rows,cols", [(2, 3), (3, 2), (2, 2)])
    def test_too_small(self, rows, cols):
        with pytest.raises(ValueError, match=">= 3"):
            torus(rows, cols)


class TestAttachHostPair:
    def test_stacks_created(self):
        g = random_connected(6, seed=0, min_switch_id=13)
        names = g.node_names()
        src, dst = attach_host_pair(g, names[0], names[1])
        assert src == "H-SRC" and dst == "H-DST"
        assert g.edge_of_host("H-SRC") == "E-SRC"
        g.validate()
