"""Tests for the CSR topology arrays and the vectorized tree pass."""

import numpy as np
import pytest

from repro.controller.provision import DestinationTree
from repro.topology import NodeKind, fifteen_node, six_node
from repro.topology.csr import CsrTopology, destination_tree_arrays
from repro.topology.generators import attach_edges
from repro.topology.zoo import abilene, fat_tree


@pytest.fixture(scope="module")
def six():
    return six_node().graph


@pytest.fixture(scope="module")
def fifteen():
    return fifteen_node().graph


def _edge_names(graph):
    return sorted(n.name for n in graph.nodes(NodeKind.EDGE))


class TestCsrTopology:
    def test_names_sorted_and_indexed(self, six):
        csr = CsrTopology.from_graph(six)
        assert list(csr.names) == sorted(n.name for n in six.nodes())
        for i, name in enumerate(csr.names):
            assert csr.index[name] == i
            assert csr.node_index(name) == i

    def test_adjacency_matches_graph(self, six):
        csr = CsrTopology.from_graph(six)
        for name in csr.names:
            got = [csr.names[j] for j in csr.neighbors_of(name)]
            assert got == sorted(six.neighbors(name))

    def test_ports_mirror_port_of(self, six):
        csr = CsrTopology.from_graph(six)
        for u, name in enumerate(csr.names):
            sl = csr.edge_slice(u)
            for e in range(sl.start, sl.stop):
                v = csr.names[csr.indices[e]]
                assert csr.ports_out[e] == six.port_of(name, v)
                assert csr.ports_back[e] == six.port_of(v, name)

    def test_core_mask_and_switch_ids(self, six):
        csr = CsrTopology.from_graph(six)
        for i, name in enumerate(csr.names):
            info = six.node(name)
            assert bool(csr.core_mask[i]) == (info.kind == NodeKind.CORE)
            expected = info.switch_id if info.switch_id is not None else -1
            assert csr.switch_ids[i] == expected

    def test_down_links_excluded(self, six):
        down = frozenset({tuple(sorted(("SW4", "SW7")))})
        csr = CsrTopology.from_graph(six, down=down)
        sw4 = csr.node_index("SW4")
        assert csr.node_index("SW7") not in csr.neighbors_of("SW4").tolist()
        full = CsrTopology.from_graph(six)
        assert len(full.neighbors_of("SW4")) == len(csr.neighbors_of("SW4")) + 1
        assert sw4 == full.node_index("SW4")  # indexing is unaffected

    def test_arrays_read_only(self, six):
        csr = CsrTopology.from_graph(six)
        with pytest.raises(ValueError):
            csr.indptr[0] = 1
        with pytest.raises(ValueError):
            csr.switch_ids[0] = 99


class TestDestinationTreeArrays:
    def _assert_matches_reference(self, graph, dst, down=frozenset()):
        csr = CsrTopology.from_graph(graph, down=down)
        tree = destination_tree_arrays(csr, csr.node_index(dst))
        ref = DestinationTree(graph, dst, epoch=0, down=down)
        got_depth = {
            csr.names[i]: int(tree.depth[i])
            for i in range(csr.n)
            if tree.depth[i] >= 0 and bool(csr.core_mask[i])
        }
        ref_depth = {k: v for k, v in ref.depth.items() if k != dst}
        assert got_depth == ref_depth
        for name, parent in ref.parent.items():
            i = csr.node_index(name)
            assert csr.names[int(tree.parent[i])] == parent
            assert int(tree.parent_port[i]) == graph.port_of(name, parent)

    def test_matches_reference_six(self, six):
        for dst in _edge_names(six):
            self._assert_matches_reference(six, dst)

    def test_matches_reference_fifteen(self, fifteen):
        for dst in _edge_names(fifteen):
            self._assert_matches_reference(fifteen, dst)

    def test_matches_reference_abilene_and_fat_tree(self):
        for graph in (abilene(), fat_tree(4)):
            attach_edges(graph)
            for dst in _edge_names(graph):
                self._assert_matches_reference(graph, dst)

    def test_matches_reference_under_link_failure(self, six):
        down = frozenset({tuple(sorted(("SW7", "SW11")))})
        self._assert_matches_reference(six, "E-D", down=down)

    def test_order_is_breadth_first(self, six):
        csr = CsrTopology.from_graph(six)
        tree = destination_tree_arrays(csr, csr.node_index("E-D"))
        depths = tree.depth[tree.order]
        assert (np.diff(depths) >= 0).all()
        assert set(tree.order.tolist()) == {
            i for i in range(csr.n) if tree.depth[i] >= 1
        }

    def test_isolated_root_yields_empty_tree(self, six):
        # Cut E-D off from its only switch: nothing is reachable.
        down = frozenset({tuple(sorted(("E-D", "SW11")))})
        csr = CsrTopology.from_graph(six, down=down)
        tree = destination_tree_arrays(csr, csr.node_index("E-D"))
        assert tree.order.size == 0
        assert (tree.depth[csr.core_mask] < 0).all()
