"""Tests for scenario JSON (de)serialization."""

import json

import pytest

from repro.runner import KarSimulation
from repro.topology import fifteen_node, redundant_path, rnp28, six_node
from repro.topology.serialize import (
    FORMAT_NAME,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)


@pytest.mark.parametrize("build", [six_node, fifteen_node, rnp28,
                                   redundant_path])
class TestRoundTrip:
    def test_full_round_trip(self, build):
        original = build()
        restored = scenario_from_dict(scenario_to_dict(original))
        assert restored.name == original.name
        assert restored.primary_route == original.primary_route
        assert restored.src_host == original.src_host
        assert restored.failure_links == original.failure_links
        assert restored.reverse_route == original.reverse_route
        # Protection preserved level by level.
        assert set(restored.protection) == set(original.protection)
        for level in original.protection:
            assert restored.segments(level) == original.segments(level)
            assert restored.reverse_segments(level) == \
                original.reverse_segments(level)

    def test_port_numbering_preserved(self, build):
        original = build()
        restored = scenario_from_dict(scenario_to_dict(original))
        for node in original.graph.nodes():
            assert restored.graph.neighbors(node.name) == \
                original.graph.neighbors(node.name)

    def test_link_parameters_preserved(self, build):
        original = build()
        restored = scenario_from_dict(scenario_to_dict(original))
        for link in original.graph.links():
            twin = restored.graph.link(link.a, link.b)
            assert twin.rate_mbps == link.rate_mbps
            assert twin.delay_s == link.delay_s
            assert twin.queue_packets == link.queue_packets


class TestFiles:
    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "scenario.json")
        save_scenario(fifteen_node(), path)
        restored = load_scenario(path)
        assert restored.name == "fifteen_node"
        # The saved file is valid, self-describing JSON.
        data = json.load(open(path))
        assert data["format"] == FORMAT_NAME

    def test_restored_scenario_runs(self, tmp_path):
        path = str(tmp_path / "scenario.json")
        save_scenario(six_node(), path)
        ks = KarSimulation(load_scenario(path), deflection="nip",
                           protection="full", seed=1)
        assert ks.primary_forward.route_id == 660  # ports survived

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a kar-scenario"):
            scenario_from_dict({"format": "pcap"})

    def test_wrong_version_rejected(self):
        data = scenario_to_dict(six_node())
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            scenario_from_dict(data)
