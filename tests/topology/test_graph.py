"""Unit tests for the port-indexed graph substrate."""

import pytest

from repro.topology import NodeKind, PortGraph, TopologyError


@pytest.fixture
def small_graph():
    g = PortGraph()
    g.add_node("A", kind=NodeKind.CORE, switch_id=7)
    g.add_node("B", kind=NodeKind.CORE, switch_id=11)
    g.add_node("C", kind=NodeKind.CORE, switch_id=13)
    g.add_link("A", "B")
    g.add_link("B", "C")
    return g


class TestNodes:
    def test_duplicate_name(self, small_graph):
        with pytest.raises(TopologyError, match="duplicate"):
            small_graph.add_node("A")

    def test_unknown_kind(self):
        g = PortGraph()
        with pytest.raises(TopologyError, match="kind"):
            g.add_node("X", kind="router")

    def test_switch_id_only_on_core(self):
        g = PortGraph()
        with pytest.raises(TopologyError):
            g.add_node("E", kind=NodeKind.EDGE, switch_id=7)

    def test_bad_switch_id(self):
        g = PortGraph()
        with pytest.raises(TopologyError):
            g.add_node("X", switch_id=1)

    def test_unknown_node_lookup(self, small_graph):
        with pytest.raises(TopologyError, match="unknown"):
            small_graph.node("Z")

    def test_kind_filter(self, small_graph):
        small_graph.add_node("E", kind=NodeKind.EDGE)
        assert small_graph.node_names(NodeKind.EDGE) == ["E"]
        assert len(small_graph.nodes(NodeKind.CORE)) == 3


class TestLinks:
    def test_port_assignment_order(self, small_graph):
        # A: port0->B.  B: port0->A, port1->C.  C: port0->B.
        assert small_graph.port_of("A", "B") == 0
        assert small_graph.port_of("B", "A") == 0
        assert small_graph.port_of("B", "C") == 1
        assert small_graph.neighbor_on_port("B", 1) == "C"

    def test_no_self_link(self, small_graph):
        with pytest.raises(TopologyError, match="self-link"):
            small_graph.add_link("A", "A")

    def test_no_parallel_links(self, small_graph):
        with pytest.raises(TopologyError, match="already exists"):
            small_graph.add_link("B", "A")

    def test_unknown_endpoint(self, small_graph):
        with pytest.raises(TopologyError):
            small_graph.add_link("A", "Z")

    def test_link_lookup_symmetric(self, small_graph):
        assert small_graph.link("A", "B") is small_graph.link("B", "A")
        assert small_graph.has_link("C", "B")
        assert not small_graph.has_link("A", "C")

    def test_link_key_and_other(self, small_graph):
        link = small_graph.link("B", "A")
        assert link.key == ("A", "B")
        assert link.other("A") == "B"
        with pytest.raises(TopologyError):
            link.other("Z")

    def test_bad_parameters(self, small_graph):
        with pytest.raises(TopologyError, match="rate"):
            small_graph.add_link("A", "C", rate_mbps=0)
        with pytest.raises(TopologyError, match="delay"):
            small_graph.add_link("A", "C", delay_s=-1)
        with pytest.raises(TopologyError, match="queue"):
            small_graph.add_link("A", "C", queue_packets=0)

    def test_port_of_missing_neighbor(self, small_graph):
        with pytest.raises(TopologyError, match="no port"):
            small_graph.port_of("A", "C")

    def test_neighbor_on_bad_port(self, small_graph):
        with pytest.raises(TopologyError, match="no port"):
            small_graph.neighbor_on_port("A", 5)


class TestValidation:
    def test_valid_graph_passes(self, small_graph):
        small_graph.validate()

    def test_id_must_cover_ports(self):
        g = PortGraph()
        g.add_node("X", switch_id=2)
        g.add_node("A", switch_id=7)
        g.add_node("B", switch_id=11)
        g.add_node("C", switch_id=13)
        g.add_link("X", "A")
        g.add_link("X", "B")
        g.add_link("A", "C")
        # ID 2 addresses ports 0 and 1: still legal.
        g.validate()
        # A third port pushes the largest index to 2 >= ID: illegal.
        g.add_link("X", "C")
        with pytest.raises(TopologyError, match="must exceed"):
            g.validate()

    def test_missing_switch_id(self):
        g = PortGraph()
        g.add_node("A")
        with pytest.raises(TopologyError, match="no switch ID"):
            g.validate()

    def test_non_coprime_ids(self):
        g = PortGraph()
        g.add_node("A", switch_id=4)
        g.add_node("B", switch_id=6)
        g.add_link("A", "B")
        with pytest.raises(TopologyError, match="coprime"):
            g.validate()

    def test_disconnected(self):
        g = PortGraph()
        g.add_node("A", switch_id=5)
        g.add_node("B", switch_id=7)
        with pytest.raises(TopologyError, match="connected"):
            g.validate()

    def test_host_must_attach_to_edge(self):
        g = PortGraph()
        g.add_node("A", switch_id=5)
        g.add_node("H", kind=NodeKind.HOST)
        g.add_link("A", "H")
        with pytest.raises(TopologyError, match="non-edge"):
            g.validate()


class TestHostEdgeHelpers:
    def test_edge_of_host(self):
        g = PortGraph()
        g.add_node("A", switch_id=5)
        g.add_node("E", kind=NodeKind.EDGE)
        g.add_node("H", kind=NodeKind.HOST)
        g.add_link("A", "E")
        g.add_link("E", "H")
        assert g.edge_of_host("H") == "E"
        assert g.hosts_of_edge("E") == ["H"]

    def test_edge_of_non_host(self, small_graph):
        with pytest.raises(TopologyError, match="not a host"):
            small_graph.edge_of_host("A")


class TestExport:
    def test_dot_contains_nodes_and_links(self, small_graph):
        dot = small_graph.to_dot()
        assert '"A"' in dot and '"B" -- "C"' in dot or '"C" -- "B"' in dot
        assert "id=7" in dot

    def test_len_iter_contains(self, small_graph):
        assert len(small_graph) == 3
        assert "A" in small_graph
        assert {n.name for n in small_graph} == {"A", "B", "C"}
