"""Assert every textual constraint the paper pins on the reconstructed
topologies (DESIGN.md §5).  If any of these fail, the reconstruction has
drifted from the paper and the experiment results are meaningless.
"""

import math

import pytest

from repro.rns import bit_length_for_switches, pairwise_coprime
from repro.topology import (
    FULL,
    PARTIAL,
    UNPROTECTED,
    NodeKind,
    articulation_links,
    fifteen_node,
    redundant_path,
    rnp28,
    shortest_path,
    six_node,
)


# ---------------------------------------------------------------------------
# Fig. 1 — six-node example
# ---------------------------------------------------------------------------

class TestSixNode:
    @pytest.fixture(scope="class")
    def scn(self):
        return six_node()

    def test_switch_ids(self, scn):
        assert sorted(scn.graph.switch_ids().values()) == [4, 5, 7, 11]

    def test_paper_port_numbering(self, scn):
        g = scn.graph
        assert g.port_of("SW4", "SW7") == 0
        assert g.port_of("SW7", "SW4") == 0
        assert g.port_of("SW7", "SW5") == 1
        assert g.port_of("SW7", "SW11") == 2
        assert g.port_of("SW11", "E-D") == 0
        assert g.port_of("SW5", "SW11") == 0

    def test_route_and_failure(self, scn):
        assert scn.primary_route == ("SW4", "SW7", "SW11")
        assert scn.failure_links == (("SW7", "SW11"),)

    def test_protection_segment(self, scn):
        (seg,) = scn.segments(FULL)
        assert (seg.at, seg.to) == ("SW5", "SW11")

    def test_validates(self, scn):
        scn.graph.validate()


# ---------------------------------------------------------------------------
# Fig. 2 — 15-node network (Section 3.1, Table 1)
# ---------------------------------------------------------------------------

class TestFifteenNode:
    @pytest.fixture(scope="class")
    def scn(self):
        return fifteen_node()

    def test_fifteen_core_switches(self, scn):
        assert len(scn.graph.nodes(NodeKind.CORE)) == 15

    def test_ids_pairwise_coprime(self, scn):
        assert pairwise_coprime(scn.graph.switch_ids().values())

    def test_primary_route(self, scn):
        assert scn.primary_route == ("SW10", "SW7", "SW13", "SW29")

    def test_primary_route_is_a_path(self, scn):
        for a, b in zip(scn.primary_route, scn.primary_route[1:]):
            assert scn.graph.has_link(a, b)

    def test_primary_route_is_shortest(self, scn):
        # The controller picked a shortest path (3 core hops SW10->SW29).
        sp = shortest_path(scn.graph, "SW10", "SW29")
        assert len(sp) == len(scn.primary_route)

    def test_table1_unprotected_bits(self, scn):
        ids = scn.route_switch_ids()
        assert len(ids) == 4
        assert bit_length_for_switches(ids) == 15

    def test_table1_partial_bits(self, scn):
        ids = scn.route_switch_ids() + [
            scn.graph.switch_id(seg.at) for seg in scn.segments(PARTIAL)
        ]
        assert len(ids) == 7
        assert bit_length_for_switches(ids) == 28

    def test_table1_full_bits(self, scn):
        ids = scn.route_switch_ids() + [
            scn.graph.switch_id(seg.at) for seg in scn.segments(FULL)
        ]
        assert len(ids) == 10
        assert bit_length_for_switches(ids) == 43

    def test_protection_segments_are_links(self, scn):
        for level in (PARTIAL, FULL):
            for seg in scn.segments(level):
                assert scn.graph.has_link(seg.at, seg.to), (level, seg)

    def test_sw10_deflection_candidates(self, scn):
        # On SW10-SW7 failure, NIP excludes the (edge) input port and the
        # failed port: candidates must be exactly {SW11, SW17, SW37}.
        g = scn.graph
        neighbors = set(g.neighbors("SW10"))
        core = {n for n in neighbors if g.node(n).kind == NodeKind.CORE}
        assert core == {"SW7", "SW11", "SW17", "SW37"}
        candidates = core - {"SW7"}
        partial_at = {seg.at for seg in scn.segments(PARTIAL)}
        full_at = {seg.at for seg in scn.segments(FULL)}
        # Paper: exactly 1 of 3 covered by partial ("2/3 of packets ...
        # sent to switches SW17 or SW37"), all 3 by full.
        assert candidates & partial_at == {"SW11"}
        assert candidates <= full_at | {"SW11"}

    def test_partial_protection_forms_tree_to_destination(self, scn):
        # Following the segments from any protected switch must reach the
        # egress switch SW29 without repeating a node.
        seg_map = {s.at: s.to for s in scn.segments(PARTIAL)}
        for start in seg_map:
            seen, cur = {start}, start
            while cur in seg_map:
                cur = seg_map[cur]
                assert cur not in seen, f"protection loop at {cur}"
                seen.add(cur)
            assert cur == "SW29" or cur in scn.primary_route

    def test_full_protection_forms_tree_to_destination(self, scn):
        seg_map = {s.at: s.to for s in scn.segments(FULL)}
        for start in seg_map:
            seen, cur = {start}, start
            while cur in seg_map:
                cur = seg_map[cur]
                assert cur not in seen
                seen.add(cur)
            assert cur == "SW29" or cur in scn.primary_route

    def test_failure_links_not_bridges(self, scn):
        bridges = set(articulation_links(scn.graph))
        for a, b in scn.failure_links:
            key = (a, b) if a <= b else (b, a)
            assert key not in bridges

    def test_validates(self, scn):
        scn.graph.validate()

    def test_hosts(self, scn):
        assert scn.src_host == "H-AS1"
        assert scn.graph.edge_of_host("H-AS1") == "E-AS1"
        assert scn.graph.edge_of_host("H-AS3") == "E-AS3"


# ---------------------------------------------------------------------------
# Fig. 6 — RNP backbone (Section 3.2)
# ---------------------------------------------------------------------------

class TestRnp28:
    @pytest.fixture(scope="class")
    def scn(self):
        return rnp28()

    def test_28_pops_40_links(self, scn):
        assert len(scn.graph.nodes(NodeKind.CORE)) == 28
        core_links = [
            l for l in scn.graph.links()
            if scn.graph.node(l.a).kind == NodeKind.CORE
            and scn.graph.node(l.b).kind == NodeKind.CORE
        ]
        assert len(core_links) == 40

    def test_ids_pairwise_coprime(self, scn):
        ids = list(scn.graph.switch_ids().values())
        assert len(ids) == 28
        assert pairwise_coprime(ids)

    def test_route_boa_vista_to_sao_paulo(self, scn):
        assert scn.primary_route == ("SW7", "SW13", "SW41", "SW73")
        for a, b in zip(scn.primary_route, scn.primary_route[1:]):
            assert scn.graph.has_link(a, b)

    def test_protection_segments_exact(self, scn):
        segs = {(s.at, s.to) for s in scn.segments(PARTIAL)}
        assert segs == {
            ("SW17", "SW71"),
            ("SW61", "SW67"),
            ("SW67", "SW71"),
            ("SW71", "SW73"),
        }
        for s in scn.segments(PARTIAL):
            assert scn.graph.has_link(s.at, s.to)

    def test_sw7_single_alternative(self, scn):
        # "the only alternative path is to SW11 and, then, to SW17"
        g = scn.graph
        core = set(g.core_subgraph_neighbors("SW7"))
        assert core == {"SW13", "SW11"}
        assert set(g.core_subgraph_neighbors("SW11")) == {"SW7", "SW17"}

    def test_sw13_five_candidates(self, scn):
        # SW13-SW41 failure: candidates exactly {SW29,SW17,SW47,SW37,SW71}.
        core = set(scn.graph.core_subgraph_neighbors("SW13"))
        assert core == {"SW7", "SW41", "SW29", "SW17", "SW47", "SW37", "SW71"}
        candidates = core - {"SW7", "SW41"}  # input and failed
        assert candidates == {"SW29", "SW17", "SW47", "SW37", "SW71"}

    def test_sw41_two_candidates(self, scn):
        core = set(scn.graph.core_subgraph_neighbors("SW41"))
        assert core == {"SW13", "SW73", "SW17", "SW61"}
        assert core - {"SW13", "SW73"} == {"SW17", "SW61"}

    def test_heterogeneous_rates(self, scn):
        thin = scn.graph.link("SW7", "SW13").rate_mbps
        fat = scn.graph.link("SW41", "SW73").rate_mbps
        assert thin == pytest.approx(fat / 2)

    def test_uniform_rate_option(self):
        scn = rnp28(heterogeneous_rates=False)
        rates = {l.rate_mbps for l in scn.graph.links()}
        assert len(rates) == 1

    def test_failure_links_not_bridges(self, scn):
        bridges = set(articulation_links(scn.graph))
        for a, b in scn.failure_links:
            key = (a, b) if a <= b else (b, a)
            assert key not in bridges

    def test_validates(self, scn):
        scn.graph.validate()


# ---------------------------------------------------------------------------
# Fig. 8 — redundant-path worst case
# ---------------------------------------------------------------------------

class TestRedundantPath:
    @pytest.fixture(scope="class")
    def scn(self):
        return redundant_path()

    def test_route(self, scn):
        assert scn.primary_route == ("SW41", "SW73", "SW107", "SW113")

    def test_coin_flip_candidates_at_sw73(self, scn):
        core = set(scn.graph.core_subgraph_neighbors("SW73"))
        assert core == {"SW41", "SW107", "SW109", "SW71"}
        # failure SW73-SW107, input SW41 -> candidates {SW109, SW71}.
        assert core - {"SW41", "SW107"} == {"SW109", "SW71"}

    def test_protection_loop(self, scn):
        segs = {(s.at, s.to) for s in scn.segments(PARTIAL)}
        assert segs == {("SW71", "SW17"), ("SW17", "SW41")}
        # The loop closes through the primary route's SW41->SW73 hop.
        assert scn.graph.has_link("SW41", "SW73")

    def test_redundant_branch_delivers(self, scn):
        # SW109's only non-SW73 neighbor is the destination switch.
        assert set(scn.graph.core_subgraph_neighbors("SW109")) == {
            "SW73", "SW113",
        }

    def test_validates(self, scn):
        scn.graph.validate()
