"""Tests for the fat-tree and Abilene reference topologies."""

import pytest

from repro.rns import pairwise_coprime
from repro.runner import KarSimulation
from repro.topology import Scenario, attach_host_pair, shortest_path
from repro.topology.zoo import ABILENE_LINKS, abilene, fat_tree


class TestFatTree:
    def test_k4_structure(self):
        g = fat_tree(4)
        names = g.node_names()
        assert sum(n.startswith("core-") for n in names) == 4
        assert sum(n.startswith("agg-") for n in names) == 8
        assert sum(n.startswith("edgesw-") for n in names) == 8
        # Core and aggregation switches have full degree k; edge
        # switches keep k/2 ports for hosts.
        assert g.degree("core-0") == 4
        assert g.degree("agg-0-0") == 4
        assert g.degree("edgesw-0-0") == 2

    def test_ids_valid(self):
        g = fat_tree(4)
        ids = list(g.switch_ids().values())
        assert pairwise_coprime(ids)
        assert all(v > 4 for v in ids)

    def test_k6(self):
        g = fat_tree(6)
        assert sum(n.startswith("core-") for n in g.node_names()) == 9
        assert g.is_connected()

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_any_pod_pair_reachable_in_four_core_hops(self):
        g = fat_tree(4)
        path = shortest_path(g, "edgesw-0-0", "edgesw-3-1")
        assert len(path) == 5  # edge-agg-core-agg-edge

    def test_kar_runs_on_fat_tree(self):
        g = fat_tree(4, rate_mbps=50.0)
        src, dst = attach_host_pair(g, "edgesw-0-0", "edgesw-3-0",
                                    rate_mbps=50.0, delay_s=0.0001)
        g.validate()
        route = shortest_path(g, "edgesw-0-0", "edgesw-3-0")
        scn = Scenario(
            name="fat-tree", graph=g, primary_route=tuple(route),
            src_host=src, dst_host=dst, protection={"none": ()},
        )
        ks = KarSimulation(scn, deflection="nip", protection="none", seed=1)
        probe, sink = ks.add_udp_probe(rate_pps=200, duration_s=0.5)
        probe.start()
        ks.run(until=2.0)
        assert sink.received == probe.sent

    def test_fat_tree_failure_survivable(self):
        # Fat trees are rich in path diversity: even unprotected NIP
        # deflection routes around an agg-core failure.
        g = fat_tree(4, rate_mbps=50.0)
        src, dst = attach_host_pair(g, "edgesw-0-0", "edgesw-3-0",
                                    rate_mbps=50.0, delay_s=0.0001)
        g.validate()
        route = shortest_path(g, "edgesw-0-0", "edgesw-3-0")
        scn = Scenario(
            name="fat-tree", graph=g, primary_route=tuple(route),
            src_host=src, dst_host=dst, protection={"none": ()},
        )
        ks = KarSimulation(scn, deflection="nip", protection="none", seed=2)
        ks.schedule_failure(route[1], route[2], at=0.3)
        probe, sink = ks.add_udp_probe(rate_pps=200, duration_s=1.0)
        probe.start(at=0.5)
        ks.run(until=4.0)
        accounted = sink.received + sum(ks.tracer.drop_reasons.values())
        assert accounted == probe.sent
        assert sink.received >= 0.9 * probe.sent


class TestAbilene:
    def test_eleven_pops_fourteen_links(self):
        g = abilene()
        assert len(g) == 11
        assert len(g.links()) == 14

    def test_matches_published_adjacency(self):
        g = abilene()
        for a, b in ABILENE_LINKS:
            assert g.has_link(a, b)

    def test_ids_valid(self):
        g = abilene()
        ids = list(g.switch_ids().values())
        assert pairwise_coprime(ids)
        for n in g.nodes():
            assert n.switch_id > n.degree

    def test_coast_to_coast_kar_flow(self):
        g = abilene(rate_mbps=50.0, delay_s=0.0005)
        src, dst = attach_host_pair(g, "Seattle", "NewYork",
                                    rate_mbps=50.0, delay_s=0.0005)
        g.validate()
        route = shortest_path(g, "Seattle", "NewYork")
        scn = Scenario(
            name="abilene", graph=g, primary_route=tuple(route),
            src_host=src, dst_host=dst, protection={"none": ()},
        )
        ks = KarSimulation(scn, deflection="nip", protection="none", seed=1)
        probe, sink = ks.add_udp_probe(rate_pps=100, duration_s=0.5)
        probe.start()
        ks.run(until=2.0)
        assert sink.received == probe.sent
