"""Tests for the fat-tree and Abilene reference topologies."""

import pytest

from repro.rns import pairwise_coprime
from repro.runner import KarSimulation
from repro.topology import Scenario, attach_host_pair, shortest_path
from repro.topology.zoo import ABILENE_LINKS, abilene, fat_tree


class TestFatTree:
    def test_k4_structure(self):
        g = fat_tree(4)
        names = g.node_names()
        assert sum(n.startswith("core-") for n in names) == 4
        assert sum(n.startswith("agg-") for n in names) == 8
        assert sum(n.startswith("edgesw-") for n in names) == 8
        # Core and aggregation switches have full degree k; edge
        # switches keep k/2 ports for hosts.
        assert g.degree("core-0") == 4
        assert g.degree("agg-0-0") == 4
        assert g.degree("edgesw-0-0") == 2

    def test_ids_valid(self):
        g = fat_tree(4)
        ids = list(g.switch_ids().values())
        assert pairwise_coprime(ids)
        assert all(v > 4 for v in ids)

    def test_k6(self):
        g = fat_tree(6)
        assert sum(n.startswith("core-") for n in g.node_names()) == 9
        assert g.is_connected()

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_any_pod_pair_reachable_in_four_core_hops(self):
        g = fat_tree(4)
        path = shortest_path(g, "edgesw-0-0", "edgesw-3-1")
        assert len(path) == 5  # edge-agg-core-agg-edge

    def test_kar_runs_on_fat_tree(self):
        g = fat_tree(4, rate_mbps=50.0)
        src, dst = attach_host_pair(g, "edgesw-0-0", "edgesw-3-0",
                                    rate_mbps=50.0, delay_s=0.0001)
        g.validate()
        route = shortest_path(g, "edgesw-0-0", "edgesw-3-0")
        scn = Scenario(
            name="fat-tree", graph=g, primary_route=tuple(route),
            src_host=src, dst_host=dst, protection={"none": ()},
        )
        ks = KarSimulation(scn, deflection="nip", protection="none", seed=1)
        probe, sink = ks.add_udp_probe(rate_pps=200, duration_s=0.5)
        probe.start()
        ks.run(until=2.0)
        assert sink.received == probe.sent

    def test_fat_tree_failure_survivable(self):
        # Fat trees are rich in path diversity: even unprotected NIP
        # deflection routes around an agg-core failure.
        g = fat_tree(4, rate_mbps=50.0)
        src, dst = attach_host_pair(g, "edgesw-0-0", "edgesw-3-0",
                                    rate_mbps=50.0, delay_s=0.0001)
        g.validate()
        route = shortest_path(g, "edgesw-0-0", "edgesw-3-0")
        scn = Scenario(
            name="fat-tree", graph=g, primary_route=tuple(route),
            src_host=src, dst_host=dst, protection={"none": ()},
        )
        ks = KarSimulation(scn, deflection="nip", protection="none", seed=2)
        ks.schedule_failure(route[1], route[2], at=0.3)
        probe, sink = ks.add_udp_probe(rate_pps=200, duration_s=1.0)
        probe.start(at=0.5)
        ks.run(until=4.0)
        accounted = sink.received + sum(ks.tracer.drop_reasons.values())
        assert accounted == probe.sent
        assert sink.received >= 0.9 * probe.sent


class TestAbilene:
    def test_eleven_pops_fourteen_links(self):
        g = abilene()
        assert len(g) == 11
        assert len(g.links()) == 14

    def test_matches_published_adjacency(self):
        g = abilene()
        for a, b in ABILENE_LINKS:
            assert g.has_link(a, b)

    def test_ids_valid(self):
        g = abilene()
        ids = list(g.switch_ids().values())
        assert pairwise_coprime(ids)
        for n in g.nodes():
            assert n.switch_id > n.degree

    def test_coast_to_coast_kar_flow(self):
        g = abilene(rate_mbps=50.0, delay_s=0.0005)
        src, dst = attach_host_pair(g, "Seattle", "NewYork",
                                    rate_mbps=50.0, delay_s=0.0005)
        g.validate()
        route = shortest_path(g, "Seattle", "NewYork")
        scn = Scenario(
            name="abilene", graph=g, primary_route=tuple(route),
            src_host=src, dst_host=dst, protection={"none": ()},
        )
        ks = KarSimulation(scn, deflection="nip", protection="none", seed=1)
        probe, sink = ks.add_udp_probe(rate_pps=100, duration_s=0.5)
        probe.start()
        ks.run(until=2.0)
        assert sink.received == probe.sent


class TestGmlParser:
    def test_round_trip(self):
        from repro.topology.zoo import dump_gml, parse_gml

        doc = [("graph", [
            ("directed", 0),
            ("label", "tiny"),
            ("node", [("id", 0), ("label", "A")]),
            ("node", [("id", 1), ("label", "B")]),
            ("edge", [("source", 0), ("target", 1), ("weight", 1.5)]),
        ])]
        text = dump_gml(doc)
        assert parse_gml(text) == doc
        assert parse_gml(dump_gml(parse_gml(text))) == doc

    def test_comments_and_bare_words(self):
        from repro.topology.zoo import parse_gml

        doc = parse_gml('graph [\n  # a comment\n  directed 0\n'
                        '  flag yes\n]')
        assert doc == [("graph", [("directed", 0), ("flag", "yes")])]

    @pytest.mark.parametrize("bad", [
        'graph [ node [ id 0 ]',          # unclosed section
        'graph [ label "oops ]',          # unterminated string
        'graph [ node [ id 0 ] ] ]',      # unbalanced close
        'graph [ directed ',              # dangling key
        'graph [ [ 1 ] ]',                # bracket without key
    ])
    def test_malformed_rejected(self, bad):
        from repro.topology.zoo import GmlError, parse_gml

        with pytest.raises(GmlError):
            parse_gml(bad)


class TestGraphFromGml:
    def test_no_graph_section_rejected(self):
        from repro.topology.zoo import GmlError, graph_from_gml

        with pytest.raises(GmlError, match="no 'graph' section"):
            graph_from_gml('notagraph [ x 1 ]')

    def test_node_without_id_rejected(self):
        from repro.topology.zoo import GmlError, graph_from_gml

        with pytest.raises(GmlError, match="without an 'id'"):
            graph_from_gml('graph [ node [ label "A" ] ]')

    def test_edge_to_unknown_node_rejected(self):
        from repro.topology.zoo import GmlError, graph_from_gml

        with pytest.raises(GmlError, match="unknown node id"):
            graph_from_gml(
                'graph [ node [ id 0 label "A" ] '
                'edge [ source 0 target 9 ] ]'
            )

    def test_duplicate_labels_deduped(self):
        from repro.topology.zoo import graph_from_gml

        g = graph_from_gml(
            'graph [ node [ id 0 label "X" ] node [ id 1 label "X" ] '
            'edge [ source 0 target 1 ] ]'
        )
        assert sorted(g.node_names()) == ["X", "X_1"]

    def test_self_loops_and_parallel_edges_dropped(self):
        from repro.topology.zoo import graph_from_gml

        g = graph_from_gml(
            'graph [ node [ id 0 label "A" ] node [ id 1 label "B" ] '
            'edge [ source 0 target 0 ] '
            'edge [ source 0 target 1 ] '
            'edge [ source 1 target 0 ] ]'
        )
        assert len(g.links()) == 1

    def test_largest_component_kept(self):
        from repro.topology.zoo import graph_from_gml

        text = (
            'graph [ '
            'node [ id 0 label "A" ] node [ id 1 label "B" ] '
            'node [ id 2 label "C" ] node [ id 3 label "Z" ] '
            'edge [ source 0 target 1 ] edge [ source 1 target 2 ] ]'
        )
        g = graph_from_gml(text)
        assert sorted(g.node_names()) == ["A", "B", "C"]
        g_all = graph_from_gml(text, largest_component=False)
        assert sorted(g_all.node_names()) == ["A", "B", "C", "Z"]

    def test_ids_coprime_and_exceed_degree(self):
        from repro.topology.zoo import load_zoo_graph

        g = load_zoo_graph("abilene")
        assert pairwise_coprime(list(g.switch_ids().values()))
        for n in g.nodes():
            assert n.switch_id > n.degree


class TestZooFixtures:
    def test_abilene_fixture_matches_builder(self):
        from repro.topology.zoo import load_zoo_graph

        fixture = load_zoo_graph("abilene")
        built = abilene()
        assert sorted(fixture.node_names()) == sorted(built.node_names())
        assert sorted(l.key for l in fixture.links()) == sorted(
            l.key for l in built.links()
        )

    def test_abilene_fixture_bytes_pinned_to_recipe(self):
        from repro.topology.zoo import gml_from_links, zoo_fixture_path

        with open(zoo_fixture_path("abilene"), encoding="utf-8") as fh:
            committed = fh.read()
        assert committed == gml_from_links(
            "Abilene (Internet2 research backbone, 11 PoPs)",
            list(ABILENE_LINKS),
        )

    def test_synthwan_fixture_bytes_pinned_to_generator(self):
        from repro.topology.zoo import synth_wan_gml, zoo_fixture_path

        with open(zoo_fixture_path("synthwan754"), encoding="utf-8") as fh:
            committed = fh.read()
        assert committed == synth_wan_gml()

    def test_synthwan_scale_and_validity(self):
        from repro.topology.zoo import load_zoo_graph

        g = load_zoo_graph("synthwan754")
        assert len(g) == 754
        assert len(g.links()) == 894
        assert g.is_connected()
        for n in g.nodes():
            assert n.switch_id > n.degree

    def test_unknown_fixture_rejected(self):
        from repro.topology.zoo import GmlError, zoo_fixture_path

        with pytest.raises(GmlError, match="unknown zoo fixture"):
            zoo_fixture_path("nope")
