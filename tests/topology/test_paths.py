"""Unit tests for path algorithms, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.topology import (
    NoPathError,
    PortGraph,
    all_shortest_paths,
    articulation_links,
    is_reachable_without,
    k_shortest_paths,
    path_links,
    random_connected,
    shortest_path,
)


@pytest.fixture
def diamond():
    #   A - B - D
    #    \- C -/   plus a pendant E off D
    g = PortGraph()
    for name, sid in (("A", 5), ("B", 7), ("C", 11), ("D", 13), ("E", 17)):
        g.add_node(name, switch_id=sid)
    g.add_link("A", "B")
    g.add_link("A", "C")
    g.add_link("B", "D")
    g.add_link("C", "D")
    g.add_link("D", "E")
    return g


def _to_nx(g: PortGraph) -> nx.Graph:
    nxg = nx.Graph()
    for link in g.links():
        nxg.add_edge(link.a, link.b)
    return nxg


class TestShortestPath:
    def test_trivial(self, diamond):
        assert shortest_path(diamond, "A", "A") == ["A"]

    def test_basic(self, diamond):
        path = shortest_path(diamond, "A", "D")
        assert path in (["A", "B", "D"], ["A", "C", "D"])

    def test_forbidden_link(self, diamond):
        path = shortest_path(diamond, "A", "D", forbidden_links=[("A", "B")])
        assert path == ["A", "C", "D"]

    def test_forbidden_node(self, diamond):
        path = shortest_path(diamond, "A", "D", forbidden_nodes=["B"])
        assert path == ["A", "C", "D"]

    def test_unreachable(self, diamond):
        with pytest.raises(NoPathError):
            shortest_path(
                diamond, "A", "E",
                forbidden_links=[("B", "D"), ("C", "D")],
            )

    def test_weighted(self, diamond):
        def weight(a, b):
            return 10.0 if {a, b} == {"A", "B"} else 1.0

        assert shortest_path(diamond, "A", "D", weight=weight) == ["A", "C", "D"]

    def test_negative_weight_rejected(self, diamond):
        with pytest.raises(Exception, match="negative"):
            shortest_path(diamond, "A", "D", weight=lambda a, b: -1.0)

    def test_matches_networkx_on_random_graphs(self):
        for seed in range(5):
            g = random_connected(12, extra_links=6, seed=seed, min_switch_id=29)
            nxg = _to_nx(g)
            names = g.node_names()
            src, dst = names[0], names[-1]
            ours = shortest_path(g, src, dst)
            assert len(ours) - 1 == nx.shortest_path_length(nxg, src, dst)


class TestAllShortestPaths:
    def test_diamond_has_two(self, diamond):
        paths = all_shortest_paths(diamond, "A", "D")
        assert paths == [["A", "B", "D"], ["A", "C", "D"]]

    def test_matches_networkx(self):
        g = random_connected(10, extra_links=8, seed=3, min_switch_id=29)
        nxg = _to_nx(g)
        names = g.node_names()
        ours = all_shortest_paths(g, names[0], names[-1])
        theirs = sorted(nx.all_shortest_paths(nxg, names[0], names[-1]))
        assert ours == theirs


class TestKShortest:
    def test_returns_k_distinct_loopfree(self, diamond):
        paths = k_shortest_paths(diamond, "A", "D", k=3)
        assert len(paths) == 2  # only two loop-free paths exist
        for p in paths:
            assert len(set(p)) == len(p)

    def test_sorted_by_length(self):
        g = random_connected(14, extra_links=10, seed=1, min_switch_id=31)
        names = g.node_names()
        paths = k_shortest_paths(g, names[0], names[-1], k=5)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)
        assert len({tuple(p) for p in paths}) == len(paths)

    def test_bad_k(self, diamond):
        with pytest.raises(ValueError):
            k_shortest_paths(diamond, "A", "D", k=0)

    def test_no_path_returns_empty(self):
        g = PortGraph()
        g.add_node("A", switch_id=5)
        g.add_node("B", switch_id=7)
        assert k_shortest_paths(g, "A", "B", k=2) == []


class TestReachabilityAndBridges:
    def test_path_links(self):
        assert path_links(["A", "B", "C"]) == [("A", "B"), ("B", "C")]

    def test_reachable_without(self, diamond):
        assert is_reachable_without(diamond, "A", "D", [("A", "B")])
        assert not is_reachable_without(
            diamond, "A", "E", [("D", "E")]
        )

    def test_bridges(self, diamond):
        assert articulation_links(diamond) == [("D", "E")]

    def test_bridges_match_networkx(self):
        g = random_connected(15, extra_links=5, seed=7, min_switch_id=31)
        nxg = _to_nx(g)
        theirs = sorted(tuple(sorted(e)) for e in nx.bridges(nxg))
        assert articulation_links(g) == theirs


class TestTieBreaking:
    """The canonical equal-cost rule: among predecessors achieving a
    node's final distance, keep the one minimal by (distance, name).
    Locked here because the vectorized bulk provisioner reproduces it
    from the other end of the path (see repro.topology.csr)."""

    def _square(self, link_order):
        # S - B - T and S - C - T: two equal-cost paths to T.
        g = PortGraph()
        for name, sid in (("S", 5), ("B", 7), ("C", 11), ("T", 13)):
            g.add_node(name, switch_id=sid)
        for a, b in link_order:
            g.add_link(a, b)
        return g

    def test_equal_cost_prefers_smallest_named_predecessor(self):
        g = self._square([("S", "B"), ("S", "C"), ("B", "T"), ("C", "T")])
        assert shortest_path(g, "S", "T") == ["S", "B", "T"]

    def test_choice_is_insertion_order_independent(self):
        # Same graph, links wired in the opposite order: the canonical
        # rule must still pick B, not whichever was relaxed first.
        g = self._square([("C", "T"), ("B", "T"), ("S", "C"), ("S", "B")])
        assert shortest_path(g, "S", "T") == ["S", "B", "T"]

    def test_weighted_tie_prefers_smaller_distance_predecessor(self):
        #  S -2- A -1- T   and   S -1- B -2- T: both cost 3, but the
        #  canonical rule compares (dist[pred], name): B at dist 1
        #  beats A at dist 2 regardless of name order.
        g = PortGraph()
        for name, sid in (("S", 5), ("A", 7), ("B", 11), ("T", 13)):
            g.add_node(name, switch_id=sid)
        g.add_link("S", "A")
        g.add_link("A", "T")
        g.add_link("S", "B")
        g.add_link("B", "T")
        costs = {("S", "A"): 2.0, ("A", "T"): 1.0,
                 ("S", "B"): 1.0, ("B", "T"): 2.0}

        def weight(a, b):
            return costs.get((a, b), costs.get((b, a)))

        assert shortest_path(g, "S", "T", weight=weight) == ["S", "B", "T"]

    def test_every_equal_cost_hop_uses_smallest_parent(self):
        # On random unit-weight graphs the rule degenerates to: each
        # path node's predecessor is the smallest-named neighbor one
        # hop closer to the source.
        for seed in range(6):
            g = random_connected(9, extra_links=5, seed=seed,
                                 min_switch_id=53)
            names = sorted(g.node_names())
            src, dst = names[0], names[-1]
            path = shortest_path(g, src, dst)
            dist = {src: 0}
            frontier = [src]
            while frontier:
                nxt = []
                for cur in frontier:
                    for nb in g.neighbors(cur):
                        if nb not in dist:
                            dist[nb] = dist[cur] + 1
                            nxt.append(nb)
                frontier = nxt
            for prev_node, node in zip(path, path[1:]):
                candidates = [nb for nb in g.neighbors(node)
                              if dist[nb] == dist[node] - 1]
                assert prev_node == min(candidates)
